//! Offline stand-in for `serde_json`: a real JSON parser and printer
//! over the stub `serde::Value` tree, plus the `json!` macro.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_stub_value())
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_stub_value(&value).map_err(Error)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_stub_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_stub_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_stub_value(&v).map_err(Error)
}

// --- printer ---------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: whole floats print with a trailing ".0".
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, el) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, el, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, el)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, el, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

// --- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut a = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    a.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = std::collections::BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            let cp = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_lit("\\u") {
                                    return Err(Error("lone surrogate".into()));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error("bad surrogate".into()))?;
                                self.pos += 4;
                                let lo = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error("bad surrogate".into()))?,
                                    16,
                                )
                                .map_err(|_| Error("bad surrogate".into()))?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                s.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error("bad surrogate".into()))?,
                                );
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error("bad codepoint".into()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

// --- json! macro -----------------------------------------------------

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal!(@object {} $($tt)*) };
    ($other:expr) => {
        <_ as $crate::__SerializeExt>::__to_json_value(&$other)
    };
}

/// Helper so `json!(expr)` works for anything `Serialize`.
pub trait __SerializeExt {
    fn __to_json_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> __SerializeExt for T {
    fn __to_json_value(&self) -> Value {
        self.to_stub_value()
    }
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate parsed elements in [..] ----
    (@array [$($done:expr),*]) => {
        $crate::Value::Array(vec![$($done),*])
    };
    (@array [$($done:expr),*] ,) => {
        $crate::Value::Array(vec![$($done),*])
    };
    (@array [$($done:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($done:expr),*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!([ $($inner)* ])] $($($rest)*)?)
    };
    (@array [$($done:expr),*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!({ $($inner)* })] $($($rest)*)?)
    };
    (@array [$($done:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!($next)] $($($rest)*)?)
    };

    // ---- objects: insert entries into a map expression ----
    (@object {$($done:tt)*}) => {{
        #[allow(unused_mut)]
        let mut __m = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_internal!(@insert __m {$($done)*});
        $crate::Value::Object(__m)
    }};
    (@object {$($done:tt)*} $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object {$($done)* ($key, $crate::Value::Null)} $($($rest)*)?)
    };
    (@object {$($done:tt)*} $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object {$($done)* ($key, $crate::json!([ $($inner)* ]))} $($($rest)*)?)
    };
    (@object {$($done:tt)*} $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object {$($done)* ($key, $crate::json!({ $($inner)* }))} $($($rest)*)?)
    };
    (@object {$($done:tt)*} $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object {$($done)* ($key, $crate::json!($val))} $($($rest)*)?)
    };

    (@insert $map:ident {$(($key:literal, $val:expr))*}) => {
        $(
            $map.insert(::std::string::String::from($key), $val);
        )*
    };
}
