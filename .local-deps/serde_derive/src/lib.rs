//! Offline stand-in for `serde_derive`: parses the item token stream by
//! hand (no `syn`/`quote` available offline) and generates field-wise
//! conversions to and from the stub `serde::Value` tree. Supports the
//! shapes this workspace derives on: named structs, tuple/newtype
//! structs, and enums with unit/tuple/struct variants, plus the
//! `#[serde(default)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, body: Body },
    Enum { name: String, variants: Vec<Variant> },
}

fn is_serde_default_attr(group: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(i), TokenTree::Group(inner)] if i.to_string() == "serde" => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes; returns whether any was
/// `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if is_serde_default_attr(g) {
                    default = true;
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field-list token stream at top-level commas (angle-bracket
/// depth aware; groups are atomic token trees already).
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    angle -= 1;
                } else if c == '-' {
                    // `->` in a type: skip the '>' so depth stays true.
                    if let Some(TokenTree::Punct(q)) = toks.get(k + 1) {
                        if q.as_char() == '>' {
                            cur.push(toks[k].clone());
                            k += 1;
                        }
                    }
                } else if c == ',' && angle == 0 {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    k += 1;
                    continue;
                }
            }
            _ => {}
        }
        cur.push(toks[k].clone());
        k += 1;
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&toks)
        .into_iter()
        .filter_map(|field_toks| {
            let (i, default) = skip_attrs(&field_toks, 0);
            let i = skip_vis(&field_toks, i);
            match field_toks.get(i) {
                Some(TokenTree::Ident(id)) => Some(Field { name: id.to_string(), default }),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&toks).len()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("stub serde_derive: generic type {name} unsupported"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(parse_tuple_arity(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, body })
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            let vtoks: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            for var in split_top_level(&vtoks) {
                let (j, _) = skip_attrs(&var, 0);
                let vname = match var.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => continue,
                };
                let vbody = match var.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Body::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Body::Tuple(parse_tuple_arity(g))
                    }
                    _ => Body::Unit,
                };
                variants.push(Variant { name: vname, body: vbody });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for {other}")),
    }
}

fn named_ser_expr(fields: &[Field], access_prefix: &str) -> String {
    let mut s = String::from("{ let mut __m = ::serde::map_new();\n");
    for f in fields {
        s.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_stub_value({p}{n}));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    s.push_str("::serde::Value::Object(__m) }");
    s
}

fn named_de_fields(fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let helper = if f.default { "de_field_default" } else { "de_field" };
            format!("{n}: ::serde::{helper}({map_var}, \"{n}\")?,", n = f.name)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn derive_ser(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_expr = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Tuple(1) => {
                    "::serde::Serialize::to_stub_value(&self.0)".to_string()
                }
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_stub_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Body::Named(fields) => named_ser_expr(fields, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_stub_value(&self) -> ::serde::Value {{ {body_expr} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Body::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::single_object(\"{vn}\", \
                         ::serde::Serialize::to_stub_value(__f0)),\n"
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_stub_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::single_object(\"{vn}\", \
                             ::serde::Value::Array(vec![{elems}])),\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_ser_expr(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => \
                             ::serde::single_object(\"{vn}\", {inner}),\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_stub_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn derive_de(item: &Item) -> String {
    let sig = "fn from_stub_value(__v: &::serde::Value) -> \
               ::std::result::Result<Self, ::std::string::String>";
    match item {
        Item::Struct { name, body } => {
            let body_expr = match body {
                Body::Unit => format!("::std::result::Result::Ok({name})"),
                Body::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_stub_value(__v)?))"
                ),
                Body::Tuple(n) => {
                    let elems: Vec<String> =
                        (0..*n).map(|i| format!("::serde::de_index(__a, {i})?")).collect();
                    format!(
                        "{{ let __a = ::serde::expect_array(__v)?;\n\
                         ::std::result::Result::Ok({name}({})) }}",
                        elems.join(", ")
                    )
                }
                Body::Named(fields) => format!(
                    "{{ let __m = ::serde::expect_object(__v)?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}}) }}",
                    named_de_fields(fields, "__m")
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n{sig} {{ {body_expr} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Body::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_stub_value(__inner)?)),\n"
                    )),
                    Body::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de_index(__a, {i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __a = ::serde::expect_array(__inner)?;\n\
                             ::std::result::Result::Ok({name}::{vn}({})) }}\n",
                            elems.join(", ")
                        ));
                    }
                    Body::Named(fields) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => {{ let __o = ::serde::expect_object(__inner)?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{}\n}}) }}\n",
                        named_de_fields(fields, "__o")
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n{sig} {{\n\
                 match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 format!(\"unknown variant `{{}}`\", __other)),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = __m.iter().next().unwrap();\n\
                 let _ = __inner;\n\
                 match __k.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(\
                 format!(\"unknown variant `{{}}`\", __other)),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(\
                 ::std::string::String::from(\"invalid enum value\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}

fn expand(input: TokenStream, which: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => which(&item)
            .parse()
            .unwrap_or_else(|e| panic!("stub serde_derive produced invalid code: {e:?}")),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, derive_ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, derive_de)
}
