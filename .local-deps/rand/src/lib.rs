//! Offline stand-in for `rand`: a splitmix64-backed `StdRng` covering
//! the seed-and-sample surface this workspace uses.

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self.next_u64(), range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub trait Sample {
    fn sample(raw: u64) -> Self;
}

impl Sample for bool {
    fn sample(raw: u64) -> bool {
        raw & 1 == 1
    }
}

impl Sample for u8 {
    fn sample(raw: u64) -> u8 {
        raw as u8
    }
}

impl Sample for u32 {
    fn sample(raw: u64) -> u32 {
        raw as u32
    }
}

impl Sample for u64 {
    fn sample(raw: u64) -> u64 {
        raw
    }
}

impl Sample for f64 {
    fn sample(raw: u64) -> f64 {
        raw as f64 / u64::MAX as f64
    }
}

pub trait SampleRange: Sized {
    fn sample_range(raw: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(raw: u64, range: std::ops::Range<Self>) -> Self {
                let span = (range.end - range.start) as u128;
                assert!(span > 0, "empty range");
                range.start + (raw as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

pub mod rngs {
    /// splitmix64: deterministic, full-period 64-bit generator.
    pub struct StdRng {
        state: u64,
    }

    pub type SmallRng = StdRng;

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}
