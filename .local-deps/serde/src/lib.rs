//! Offline stand-in for `serde`: a concrete value-tree data model with
//! derivable `Serialize`/`Deserialize` traits. The derive macros come
//! from the sibling `serde_derive` stub and generate field-wise
//! conversions to and from [`value::Value`], which the `serde_json`
//! stub parses and prints. Round-trips are self-consistent; the wire
//! format matches serde's externally-tagged defaults closely enough
//! for this workspace.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    use std::collections::BTreeMap;

    /// The JSON-shaped data model everything serializes through.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        pub fn is_number(&self) -> bool {
            matches!(self, Value::U64(_) | Value::I64(_) | Value::F64(_))
        }

        pub fn is_string(&self) -> bool {
            matches!(self, Value::String(_))
        }

        pub fn is_array(&self) -> bool {
            matches!(self, Value::Array(_))
        }

        pub fn is_object(&self) -> bool {
            matches!(self, Value::Object(_))
        }

        pub fn is_boolean(&self) -> bool {
            matches!(self, Value::Bool(_))
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(n) => Some(*n),
                Value::I64(n) => u64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::I64(n) => Some(*n),
                Value::U64(n) => i64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::F64(n) => Some(*n),
                Value::U64(n) => Some(*n as f64),
                Value::I64(n) => Some(*n as f64),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(m) => m.get(key),
                _ => None,
            }
        }
    }

    const NULL: Value = Value::Null;

    impl std::ops::Index<&str> for Value {
        type Output = Value;

        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;

        fn index(&self, i: usize) -> &Value {
            match self {
                Value::Array(a) => a.get(i).unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }

    impl PartialEq<Value> for &str {
        fn eq(&self, other: &Value) -> bool {
            other.as_str() == Some(*self)
        }
    }

    impl PartialEq<str> for Value {
        fn eq(&self, other: &str) -> bool {
            self.as_str() == Some(other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            self.as_bool() == Some(*other)
        }
    }

    impl PartialEq<u64> for Value {
        fn eq(&self, other: &u64) -> bool {
            self.as_u64() == Some(*other)
        }
    }
}

pub use value::Value;

/// Conversion into the stub data model (what `#[derive(Serialize)]`
/// implements).
pub trait Serialize {
    fn to_stub_value(&self) -> Value;
}

/// Conversion out of the stub data model (what `#[derive(Deserialize)]`
/// implements).
pub trait Deserialize: Sized {
    fn from_stub_value(v: &Value) -> Result<Self, String>;
}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_stub_value(&self) -> Value {
        (**self).to_stub_value()
    }
}

impl Serialize for Value {
    fn to_stub_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_stub_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| "expected bool".to_string())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_stub_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_stub_value(v: &Value) -> Result<Self, String> {
                let n = v.as_u64().ok_or_else(|| "expected unsigned integer".to_string())?;
                <$t>::try_from(n).map_err(|_| "integer out of range".to_string())
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_stub_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_stub_value(v: &Value) -> Result<Self, String> {
                let n = v.as_i64().ok_or_else(|| "expected integer".to_string())?;
                <$t>::try_from(n).map_err(|_| "integer out of range".to_string())
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_stub_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| "expected number".to_string())
    }
}

impl Serialize for f32 {
    fn to_stub_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| "expected number".to_string())
    }
}

impl Serialize for String {
    fn to_stub_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| "expected string".to_string())
    }
}

impl Serialize for str {
    fn to_stub_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| "expected array".to_string())?
            .iter()
            .map(T::from_stub_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_stub_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_stub_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_stub_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_stub_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_stub_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_stub_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_stub_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_stub_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| "expected object".to_string())?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_stub_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_stub_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_stub_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_stub_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_stub_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_stub_value(v: &Value) -> Result<Self, String> {
                let a = v.as_array().ok_or_else(|| "expected array".to_string())?;
                Ok(($($name::from_stub_value(
                    a.get($idx).ok_or_else(|| "tuple too short".to_string())?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// --- helpers the derive macro expands to -----------------------------

pub type StubMap = std::collections::BTreeMap<String, Value>;

pub fn map_new() -> StubMap {
    StubMap::new()
}

pub fn single_object(tag: &str, inner: Value) -> Value {
    let mut m = StubMap::new();
    m.insert(tag.to_string(), inner);
    Value::Object(m)
}

pub fn expect_object(v: &Value) -> Result<&StubMap, String> {
    v.as_object().ok_or_else(|| "expected object".to_string())
}

pub fn expect_array(v: &Value) -> Result<&Vec<Value>, String> {
    v.as_array().ok_or_else(|| "expected array".to_string())
}

pub fn de_field<T: Deserialize>(m: &StubMap, key: &str) -> Result<T, String> {
    match m.get(key) {
        Some(v) => T::from_stub_value(v).map_err(|e| format!("field `{key}`: {e}")),
        None => Err(format!("missing field `{key}`")),
    }
}

pub fn de_field_default<T: Deserialize + Default>(m: &StubMap, key: &str) -> Result<T, String> {
    match m.get(key) {
        Some(v) => T::from_stub_value(v).map_err(|e| format!("field `{key}`: {e}")),
        None => Ok(T::default()),
    }
}

pub fn de_index<T: Deserialize>(a: &[Value], idx: usize) -> Result<T, String> {
    match a.get(idx) {
        Some(v) => T::from_stub_value(v),
        None => Err(format!("missing tuple element {idx}")),
    }
}
