//! Offline stand-in for `crossbeam`: an MPMC channel on std primitives.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { shared: Arc::clone(&shared) },
            Receiver { shared },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // A zero-capacity rendezvous is approximated by one slot.
        channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), T> {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if inner.receivers == 0 || inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                return Err(value);
            }
            inner.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}
