//! Offline stand-in for `proptest`: strategy combinators carry only
//! their value types so strategy definitions typecheck, while the
//! `proptest!` macro swallows its body (the property tests themselves
//! run in environments with the real crate).

#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let __first = $first;
        $(let _ = $rest;)*
        $crate::strategy::stub_of(&__first)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => {};
}

pub mod strategy {
    use std::marker::PhantomData;

    /// Placeholder strategy: carries only its value type.
    pub struct Stub<T>(PhantomData<T>);

    impl<T> Stub<T> {
        pub fn new() -> Self {
            Stub(PhantomData)
        }
    }

    impl<T> Default for Stub<T> {
        fn default() -> Self {
            Stub::new()
        }
    }

    pub fn stub_of<S: Strategy>(_s: &S) -> Stub<S::Value> {
        Stub::new()
    }

    pub trait Strategy {
        type Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> Stub<O>
        where
            Self: Sized,
        {
            Stub::new()
        }

        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, _f: F) -> Stub<O::Value>
        where
            Self: Sized,
        {
            Stub::new()
        }

        fn boxed(self) -> Stub<Self::Value>
        where
            Self: Sized,
        {
            Stub::new()
        }
    }

    impl<T> Strategy for Stub<T> {
        type Value = T;
    }

    impl<T> Strategy for std::ops::Range<T> {
        type Value = T;
    }

    impl<T> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
    }

    impl Strategy for &str {
        type Value = String;
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
    }

    /// Always-this-value strategy.
    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::{Strategy, Stub};

    pub fn vec<S: Strategy, R>(_element: S, _size: R) -> Stub<Vec<S::Value>> {
        Stub::new()
    }
}

pub struct ProptestConfig;

impl ProptestConfig {
    pub fn with_cases(_cases: u32) -> Self {
        ProptestConfig
    }
}

pub fn any<T>() -> strategy::Stub<T> {
    strategy::Stub::new()
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}
