//! Offline stand-in for `parking_lot`, backed by `std::sync` with
//! poison-recovery so semantics match (no poisoning on panic).

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
