//! Offline stand-in for `criterion`: runs every benchmark body exactly
//! once (the behavior real criterion has under `cargo test`), with no
//! measurement or reporting.

use std::fmt::Display;

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let _ = body();
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(_name: impl Into<String>, _param: impl Display) -> Self {
        BenchmarkId
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
