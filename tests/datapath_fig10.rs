//! Fig. 10 on the real data plane: measured verb completions over the
//! simulated fabric must express the calibrated datapath properties at
//! every message size — not just in the cost model, but through the
//! actual QueuePair code path with real bytes.

use std::sync::Arc;

use portus_mem::{Buffer, MemorySegment};
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Access, Fabric, NodeId, QueuePair, RegionTarget};
use portus_sim::{MemoryKind, SimContext};

struct Bench {
    qp_storage: QueuePair,
    mr_gpu: Arc<portus_rdma::MemoryRegion>,
    mr_dram: Arc<portus_rdma::MemoryRegion>,
    pmem_dst: RegionTarget,
}

fn setup(max: u64) -> Bench {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    let storage = fabric.add_nic(NodeId(1));
    let gpu = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(max, 1));
    let dram = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(max));
    let mr_gpu = compute.register(RegionTarget::Buffer(gpu), Access::READ_WRITE);
    let mr_dram = compute.register(RegionTarget::Buffer(dram), Access::READ_WRITE);
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 2 * max);
    let pmem_dst = RegionTarget::Pmem {
        dev: pmem,
        base: 0,
        len: max,
    };
    let (_qp_compute, qp_storage) = QueuePair::connect(compute, storage);
    Bench {
        qp_storage,
        mr_gpu,
        mr_dram,
        pmem_dst,
    }
}

fn measured_bw(b: &Bench, rkey: u64, len: u64) -> f64 {
    let c = b.qp_storage.read(rkey, 0, &b.pmem_dst, 0, len).unwrap();
    len as f64 / (c.end - c.start).as_secs_f64()
}

#[test]
fn bandwidth_saturates_past_512kb() {
    let b = setup(64 << 20);
    let peak = measured_bw(&b, b.mr_dram.rkey(), 64 << 20);
    let at_512k = measured_bw(&b, b.mr_dram.rkey(), 512 << 10);
    let at_4k = measured_bw(&b, b.mr_dram.rkey(), 4 << 10);
    assert!(
        at_512k > 0.85 * peak,
        "512KB must be near peak: {at_512k:.3e} vs {peak:.3e}"
    );
    assert!(at_4k < 0.2 * peak, "4KB must be latency-bound: {at_4k:.3e}");
}

#[test]
fn gpu_read_cap_is_30_percent_below_dram() {
    let b = setup(64 << 20);
    let dram = measured_bw(&b, b.mr_dram.rkey(), 64 << 20);
    let gpu = measured_bw(&b, b.mr_gpu.rkey(), 64 << 20);
    let deficit = 1.0 - gpu / dram;
    // §V-B: "30% less than DRAM".
    assert!((0.25..0.35).contains(&deficit), "BAR deficit {deficit:.3}");
    assert!(
        (5.5e9..6.1e9).contains(&gpu),
        "GPU read peak {gpu:.3e} (paper 5.8 GB/s)"
    );
}

#[test]
fn writes_to_gpu_are_not_bar_capped() {
    let b = setup(64 << 20);
    let len = 64u64 << 20;
    // A writable GPU target for the restore direction (the read-path
    // buffer is synthetic/read-only).
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx);
    let compute = fabric.add_nic(NodeId(0));
    let storage = fabric.add_nic(NodeId(1));
    let gpu_writable = Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(len));
    let mr_w = compute.register(RegionTarget::Buffer(gpu_writable), Access::WRITE);
    let (_qc, qs) = QueuePair::connect(compute, storage);
    let src = RegionTarget::Buffer(Buffer::new(
        MemoryKind::HostDram,
        MemorySegment::zeroed(len),
    ));
    let c_write = qs.write(mr_w.rkey(), 0, &src, 0, len).unwrap();
    let write_bw = len as f64 / (c_write.end - c_write.start).as_secs_f64();
    let read_bw = measured_bw(&b, b.mr_gpu.rkey(), len);
    assert!(
        write_bw > 1.3 * read_bw,
        "restore direction must beat checkpoint direction: {write_bw:.3e} vs {read_bw:.3e}"
    );
}

#[test]
fn average_model_layer_runs_near_peak() {
    // §V-B: the ~2.5 MiB average layer implies per-tensor transfers run
    // near the saturated rate — the property that makes per-tensor MRs
    // viable.
    let b = setup(64 << 20);
    let layer = (25 << 20) / 10; // 2.5 MiB
    let bw = measured_bw(&b, b.mr_gpu.rkey(), layer);
    let peak = measured_bw(&b, b.mr_gpu.rkey(), 64 << 20);
    assert!(bw > 0.9 * peak, "2.5MiB at {bw:.3e} vs peak {peak:.3e}");
}

#[test]
fn server_side_dram_and_pmem_targets_are_equivalent() {
    // Fig. 10's observation: DRAM or PMem as the storage target does
    // not change checkpoint bandwidth — the network dominates.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    let storage = fabric.add_nic(NodeId(1));
    let len = 16u64 << 20;
    let gpu = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(len, 2));
    let mr = compute.register(RegionTarget::Buffer(gpu), Access::READ);
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 2 * len);
    let to_pmem = RegionTarget::Pmem {
        dev: pmem,
        base: 0,
        len,
    };
    let to_dram = RegionTarget::Buffer(Buffer::new(
        MemoryKind::HostDram,
        MemorySegment::zeroed(len),
    ));
    let (_qc, qs) = QueuePair::connect(compute, storage);
    let c1 = qs.read(mr.rkey(), 0, &to_pmem, 0, len).unwrap();
    let c2 = qs.read(mr.rkey(), 0, &to_dram, 0, len).unwrap();
    assert_eq!(
        (c1.end - c1.start),
        (c2.end - c2.start),
        "target memory must not matter on the read path"
    );
}
