//! Structural datapath assertions — the paper's core claim, checked on
//! counters rather than clocks.
//!
//! Portus checkpointing must perform exactly **one data movement per
//! tensor** (the one-sided RDMA read), **zero serializer invocations**,
//! and **zero kernel crossings**; the traditional datapath performs at
//! least three copies and three crossings per checkpoint (Fig. 3/5).

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::{GpuDevice, HostMemory};
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;
use portus_storage::{Beegfs, Ext4Nvme, TorchCheckpointer};

const LAYERS: usize = 10;

#[test]
fn portus_checkpoint_is_zero_copy_and_kernel_free() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("zc", LAYERS, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();

    let before = ctx.stats.snapshot();
    client.checkpoint("zc").unwrap();
    let d = ctx.stats.snapshot().since(&before);

    assert_eq!(
        d.data_copies, LAYERS as u64,
        "exactly one data movement per tensor"
    );
    assert_eq!(
        d.rdma_one_sided_ops, LAYERS as u64,
        "one one-sided READ per tensor"
    );
    assert_eq!(d.rdma_two_sided_ops, 0, "no RPC protocol anywhere");
    assert_eq!(d.serializations, 0, "serialization-free");
    assert_eq!(d.deserializations, 0);
    assert_eq!(d.kernel_crossings, 0, "no kernel involvement at all");
    assert_eq!(
        d.bytes_over_network,
        spec.total_bytes(),
        "each byte crosses the fabric exactly once"
    );
    assert!(d.pmem_fences > 0, "the daemon must persist the pulled data");
    assert_eq!(
        d.control_messages, 2,
        "DO_CHECKPOINT + completion notification"
    );
}

#[test]
fn portus_restore_is_zero_copy_and_kernel_free() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("zcr", LAYERS, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    client.checkpoint("zcr").unwrap();

    let before = ctx.stats.snapshot();
    client.restore(&model).unwrap();
    let d = ctx.stats.snapshot().since(&before);

    assert_eq!(d.data_copies, LAYERS as u64);
    assert_eq!(
        d.rdma_one_sided_ops, LAYERS as u64,
        "one one-sided WRITE per tensor"
    );
    assert_eq!(
        d.serializations + d.deserializations,
        0,
        "no (de)serialization"
    );
    assert_eq!(d.kernel_crossings, 0);
}

#[test]
fn traditional_beegfs_path_pays_three_copies_and_crossings() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let fs = Beegfs::mount(&fabric, NodeId(0), NodeId(1), 256 << 20);
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let host = HostMemory::new(ctx.clone(), 1 << 30);
    let spec = test_spec("trad", LAYERS, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let saver = TorchCheckpointer::new(ctx.clone(), &fs, gpu, host);

    let before = ctx.stats.snapshot();
    saver.checkpoint(&model, "trad.ckpt").unwrap();
    let d = ctx.stats.snapshot().since(&before);

    // Fig. 3's "at least three redundant data copies": GPU→DRAM (per
    // tensor), serialize staging, RPC payload, server DAX write.
    assert!(
        d.data_copies >= LAYERS as u64 + 3,
        "expected >= {} copies, saw {}",
        LAYERS + 3,
        d.data_copies
    );
    assert_eq!(d.kernel_crossings, 3, "the three crossings of Fig. 3");
    assert_eq!(d.serializations, 1);
    assert!(d.rdma_two_sided_ops > 0, "two-sided RPC protocol");
    assert_eq!(
        d.rdma_one_sided_ops, 0,
        "baseline never uses one-sided verbs"
    );
    // The serialized file is strictly larger than the payload (headers),
    // and every file byte crosses the network.
    assert!(d.bytes_over_network > spec.total_bytes());
}

#[test]
fn local_ext4_path_still_copies_and_crosses() {
    let ctx = SimContext::icdcs24();
    let fs = Ext4Nvme::new(ctx.clone(), 256 << 20);
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let host = HostMemory::new(ctx.clone(), 1 << 30);
    let spec = test_spec("local", LAYERS, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let saver = TorchCheckpointer::new(ctx.clone(), &fs, gpu, host);

    let before = ctx.stats.snapshot();
    saver.checkpoint(&model, "local.ckpt").unwrap();
    let d = ctx.stats.snapshot().since(&before);

    assert!(d.data_copies >= LAYERS as u64 + 2);
    assert_eq!(d.kernel_crossings, 3, "open + write + fsync");
    assert_eq!(d.serializations, 1);
    assert_eq!(d.bytes_over_network, 0, "local path stays off the fabric");
}

#[test]
fn portus_moves_fewer_bytes_total_than_the_baseline() {
    // Same model through both paths: Portus's total moved bytes are
    // exactly the payload; the baseline multiplies them.
    let spec = test_spec("bytes", LAYERS, 256 * 1024);

    let portus_bytes = {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).unwrap();
        let before = ctx.stats.snapshot();
        client.checkpoint("bytes").unwrap();
        ctx.stats.snapshot().since(&before).bytes_copied
    };

    let baseline_bytes = {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx.clone(), 256 << 20);
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        let host = HostMemory::new(ctx.clone(), 1 << 30);
        let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let saver = TorchCheckpointer::new(ctx.clone(), &fs, gpu, host);
        let before = ctx.stats.snapshot();
        saver.checkpoint(&model, "b.ckpt").unwrap();
        ctx.stats.snapshot().since(&before).bytes_copied
    };

    assert_eq!(portus_bytes, spec.total_bytes());
    assert!(
        baseline_bytes >= 3 * spec.total_bytes(),
        "baseline must move every byte at least 3x (saw {}x)",
        baseline_bytes / spec.total_bytes()
    );
}
