//! Edge cases across the stack: degenerate models, capacity limits,
//! and contended same-model operations.

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, DType, Materialization, ModelInstance, ModelSpec, TensorMeta};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

struct World {
    fabric: Fabric,
    daemon: Arc<PortusDaemon>,
    gpu: Arc<GpuDevice>,
}

fn world(cfg: DaemonConfig, pmem_bytes: u64) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, pmem_bytes);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    World {
        fabric,
        daemon,
        gpu,
    }
}

#[test]
fn single_scalar_tensor_model() {
    let w = world(DaemonConfig::default(), 32 << 20);
    let spec = ModelSpec::new("scalar", vec![TensorMeta::new("step", DType::I64, vec![])]);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();
    model.train_step();
    let want = model.model_checksum();
    let r = client.checkpoint("scalar").unwrap();
    assert_eq!(r.bytes, 8);
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), want);
}

#[test]
fn mixed_dtype_model_round_trips() {
    let w = world(DaemonConfig::default(), 32 << 20);
    let spec = ModelSpec::new(
        "mixed",
        vec![
            TensorMeta::new("w.f16", DType::F16, vec![33, 7]),
            TensorMeta::new("w.f64", DType::F64, vec![5]),
            TensorMeta::new("w.u8", DType::U8, vec![1023]),
            TensorMeta::new("w.i32", DType::I32, vec![2, 2, 2, 2]),
        ],
    );
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 2, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();
    model.train_step();
    let want = model.tensor_checksums();
    client.checkpoint("mixed").unwrap();
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.tensor_checksums(), want);
}

#[test]
fn pmem_exhaustion_is_a_clean_daemon_error() {
    // Device too small for two slots of this model.
    let w = world(DaemonConfig::default(), 8 << 20);
    let spec = test_spec("hog", 2, 4 << 20); // 8 MiB payload, 16 MiB needed
    let model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let err = client.register_model(&model).unwrap_err();
    assert!(
        err.to_string().contains("out of persistent space"),
        "got: {err}"
    );
    // The daemon is still healthy for smaller models.
    let small = test_spec("small", 2, 64 * 1024);
    let small_model =
        ModelInstance::materialize(&small, &w.gpu, 4, Materialization::Owned).unwrap();
    client.register_model(&small_model).unwrap();
    client.checkpoint("small").unwrap();
}

#[test]
fn model_table_capacity_is_enforced() {
    let cfg = DaemonConfig {
        table_capacity: 2,
        ..DaemonConfig::default()
    };
    let w = world(cfg, 64 << 20);
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    for i in 0..2 {
        let spec = test_spec(&format!("m{i}"), 2, 4096);
        let m = ModelInstance::materialize(&spec, &w.gpu, i, Materialization::Owned).unwrap();
        client.register_model(&m).unwrap();
    }
    let spec = test_spec("overflow", 2, 4096);
    let m = ModelInstance::materialize(&spec, &w.gpu, 9, Materialization::Owned).unwrap();
    let err = client.register_model(&m).unwrap_err();
    assert!(
        matches!(err, PortusError::CatalogFull { capacity: 2 }),
        "got: {err}"
    );
    // Dropping frees a table slot.
    client.drop_model("m0").unwrap();
    client.register_model(&m).unwrap();
}

#[test]
fn concurrent_checkpoints_of_the_same_model_serialize_safely() {
    // Two clients race checkpoints of one model; the per-model lock
    // must keep versions sequential and both slots valid.
    let w = world(DaemonConfig::default(), 128 << 20);
    let spec = test_spec("contested", 6, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &w.gpu, 5, Materialization::Owned).unwrap();
    let c1 = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let c2 = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    c1.register_model(&model).unwrap();
    c2.register_model(&model).unwrap(); // same structure: accepted

    std::thread::scope(|s| {
        let h1 = s.spawn(|| {
            (0..4)
                .map(|_| c1.checkpoint("contested").unwrap().version)
                .collect::<Vec<_>>()
        });
        let h2 = s.spawn(|| {
            (0..4)
                .map(|_| c2.checkpoint("contested").unwrap().version)
                .collect::<Vec<_>>()
        });
        let mut versions: Vec<u64> = h1.join().unwrap();
        versions.extend(h2.join().unwrap());
        versions.sort_unstable();
        assert_eq!(
            versions,
            (1..=8).collect::<Vec<u64>>(),
            "versions must be unique and dense"
        );
    });

    let summary = &c1.list_models().unwrap()[0];
    assert_eq!(summary.latest_version, Some(8));
    assert_eq!(summary.valid_versions, 2);
    // Restore still verifies (checksum) under all that churn.
    c1.restore(&model).unwrap();
}

#[test]
fn checkpoint_restore_checkpoint_interleaving() {
    // Restoring between checkpoints must not disturb the slot rotation.
    let w = world(DaemonConfig::default(), 64 << 20);
    let spec = test_spec("interleave", 3, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 6, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();

    for v in 1..=4u64 {
        model.train_step();
        let r = client.checkpoint("interleave").unwrap();
        assert_eq!(r.version, v);
        let rr = client.restore(&model).unwrap();
        assert_eq!(rr.version, v);
    }
}
