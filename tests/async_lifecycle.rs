//! Async-checkpoint lifecycle regressions (§III-E/Fig. 8 mechanism).
//!
//! A failed asynchronous checkpoint must surface its error exactly once
//! at the Fig. 8 barrier and leave the client fully usable; a second
//! `checkpoint_async` of a model already in flight must be rejected
//! instead of silently orphaning the first reply; and checkpoints of
//! *different* models on one connection must actually overlap on the
//! daemon's dispatch pool.

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

struct World {
    ctx: SimContext,
    daemon: std::sync::Arc<PortusDaemon>,
    client: PortusClient,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world(pmem_bytes: u64) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, pmem_bytes);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let client = PortusClient::connect(&daemon, compute);
    World {
        ctx,
        daemon,
        client,
        gpu,
    }
}

#[test]
fn failed_async_checkpoint_surfaces_once_and_never_wedges_the_barrier() {
    let w = world(128 << 20);

    // Fire-and-forget a checkpoint of a model that was never registered:
    // the daemon will answer with an error reply, not a report.
    let _pending = w.client.checkpoint_async("ghost").unwrap();
    assert!(w.client.has_inflight("ghost"));

    // The Fig. 8 barrier must return the failure (not hang, not panic)...
    let err = w.client.guard_update("ghost").unwrap_err();
    assert!(
        matches!(&err, PortusError::Daemon(m) if m.contains("ghost")),
        "expected the daemon's not-found error, got: {err}"
    );

    // ...and must consume the in-flight entry on that error path: the
    // barrier is clean afterwards instead of re-waiting a dead req_id.
    assert!(!w.client.has_inflight("ghost"));
    assert!(w.client.guard_update("ghost").unwrap().is_none());

    // The connection is fully usable after the failure.
    let spec = test_spec("alive", 4, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &w.gpu, 7, Materialization::Owned).unwrap();
    w.client.register_model(&model).unwrap();
    let report = w.client.checkpoint("alive").unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(report.bytes, spec.total_bytes());
    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn second_async_checkpoint_of_same_model_is_rejected() {
    let w = world(128 << 20);
    let spec = test_spec("dup", 8, 256 * 1024);
    let model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    w.client.register_model(&model).unwrap();

    let pending = w.client.checkpoint_async("dup").unwrap();
    // Whatever the daemon is doing, the client must refuse to orphan
    // the first handle.
    let err = w.client.checkpoint_async("dup").unwrap_err();
    assert!(matches!(&err, PortusError::AlreadyInFlight(m) if m == "dup"));

    // The original handle is untouched and completes normally.
    let report = w.client.wait_checkpoint("dup", pending).unwrap();
    assert_eq!(report.version, 1);

    // Once waited, a new async checkpoint is allowed again.
    let p2 = w.client.checkpoint_async("dup").unwrap();
    assert_eq!(w.client.wait_checkpoint("dup", p2).unwrap().version, 2);
    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn checkpoints_of_two_models_overlap_on_the_dispatch_pool() {
    let w = world(512 << 20);
    // Big enough that the pull's real memcpy work gives the second
    // request ample wall-clock time to land on another pool worker.
    let spec_a = test_spec("overlap-a", 32, 512 * 1024);
    let spec_b = test_spec("overlap-b", 32, 512 * 1024);
    let a = ModelInstance::materialize(&spec_a, &w.gpu, 1, Materialization::Owned).unwrap();
    let b = ModelInstance::materialize(&spec_b, &w.gpu, 2, Materialization::Owned).unwrap();
    w.client.register_model(&a).unwrap();
    w.client.register_model(&b).unwrap();

    // peak_in_flight is a high-water mark; a few rounds make the
    // overlap robust against scheduler noise.
    for _ in 0..3 {
        let pa = w.client.checkpoint_async("overlap-a").unwrap();
        let pb = w.client.checkpoint_async("overlap-b").unwrap();
        // Replies may arrive out of order; the client demultiplexes.
        w.client.wait_checkpoint("overlap-b", pb).unwrap();
        w.client.wait_checkpoint("overlap-a", pa).unwrap();
        if w.daemon.peak_in_flight() >= 2 {
            break;
        }
    }
    assert!(
        w.daemon.peak_in_flight() >= 2,
        "requests of different models must overlap on the worker pool \
         (peak was {})",
        w.daemon.peak_in_flight()
    );

    // Both models kept making independent progress.
    let models = w.client.list_models().unwrap();
    for name in ["overlap-a", "overlap-b"] {
        let m = models.iter().find(|m| m.name == name).unwrap();
        assert!(m.latest_version.unwrap() >= 1);
    }
    let _ = &w.ctx;
    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn dropping_a_model_releases_its_daemon_side_lock_entry() {
    // Register → checkpoint → drop → re-register under the same name
    // must behave like a fresh model (the lock-table entry from the
    // first life must not leak or wedge the second).
    let w = world(128 << 20);
    for round in 0..3u64 {
        let spec = test_spec("phoenix", 4, 256 * 1024);
        let model =
            ModelInstance::materialize(&spec, &w.gpu, round, Materialization::Owned).unwrap();
        w.client.register_model(&model).unwrap();
        let report = w.client.checkpoint("phoenix").unwrap();
        assert_eq!(report.version, 1, "round {round} must start from scratch");
        w.client.mark_complete("phoenix").unwrap();
        w.client.drop_model("phoenix").unwrap();
    }
    assert_eq!(w.daemon.model_count(), 0);
    drop(w.client);
    w.daemon.shutdown();
}
