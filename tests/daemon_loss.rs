//! Daemon-loss recovery, end to end: a replicated fleet survives a
//! daemon killed mid-checkpoint (validated work stays restorable from
//! the surviving replicas), the recovery epoch only ever fences the
//! dead daemon's in-flight writes — never a live replica's — and a
//! seeded run with a kill schedule replays bit-for-bit. A final test
//! exercises the real datapath: a `ReplicatedClient` fails over a
//! restore when its primary replica's fabric dies.

use portus::{DaemonConfig, PortusDaemon, PortusError, ReplicatedClient};
use portus_cluster::{
    daemon_loss_report, replica_set, run_fleet, FleetConfig, JobShape, PlacementConfig, Policy,
};
use portus_dnn::{test_spec, IterationProfile, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::{CostModel, SimContext, SimDuration, SimTime, Stage, TraceOp};

fn fleet(daemons: usize, clients: usize, k: usize) -> FleetConfig {
    let mut cfg = FleetConfig::uniform(
        daemons,
        clients,
        JobShape::single(1_000_000_000, 300),
        IterationProfile::from_total(SimDuration::from_millis(350)),
        Policy::PortusSync { every: 10 },
        50,
    );
    cfg.seed = 0xC0FFEE;
    cfg.with_placement(PlacementConfig::mirrored(k))
}

/// The midpoint of client-0's second checkpoint pull on a kill-free
/// dry run: a deterministic, genuinely mid-checkpoint kill instant.
fn mid_checkpoint_instant(m: &CostModel, cfg: &FleetConfig) -> SimDuration {
    let dry = run_fleet(m, cfg);
    let span = dry
        .spans
        .iter()
        .filter(|s| s.model == "client-0" && s.op == TraceOp::Checkpoint && s.stage == Stage::Total)
        .nth(1)
        .expect("client-0 checkpoints at least twice");
    (span.start + span.end.saturating_since(span.start) / 2).saturating_since(SimTime::ZERO)
}

#[test]
fn replicas_keep_every_validated_checkpoint_through_a_mid_checkpoint_kill() {
    let m = CostModel::icdcs24();
    let at = mid_checkpoint_instant(&m, &fleet(4, 4, 2));
    let primary = replica_set("client-0", &[true; 4], 1)[0];
    let cfg = fleet(4, 4, 2).with_kill(primary, at);
    let out = run_fleet(&m, &cfg);

    // k=2: every client still restores its newest validated version.
    assert_eq!(out.epoch, 1, "one daemon loss bumps the epoch once");
    for (client, restore) in cfg.clients.iter().zip(&out.restores) {
        assert_eq!(restore.client, client.name);
        assert!(
            restore.version.is_some(),
            "{} must stay restorable behind two replicas",
            client.name
        );
    }
    // The dead primary serves nothing: checkpoints after the kill are
    // re-placed, so the final version lives entirely on survivors.
    let client0 = &out.restores[0];
    assert!(!client0.served_by.contains(&primary));
    assert!(!client0.served_by.is_empty());

    let report = daemon_loss_report(&cfg, &out);
    assert_eq!(report.killed, vec![primary]);
    assert!(
        report.zero_loss,
        "no validated checkpoint may be lost at k=2"
    );
    assert_eq!(report.lost_iterations, 0);
    assert_eq!(report.failed_checkpoints, 0);
    assert!(
        report.repairs > 0,
        "the rebalance re-replicates the dead daemon's stripes"
    );

    // The same kill without replication loses client-0's work.
    let lossy_cfg = fleet(4, 4, 1).with_kill(primary, at);
    let lossy = daemon_loss_report(&lossy_cfg, &run_fleet(&m, &lossy_cfg));
    assert!(
        lossy.failed_checkpoints > 0,
        "k=1 loses the checkpoint in flight on the dead primary"
    );
}

#[test]
fn restore_falls_through_a_primary_that_dies_after_the_last_checkpoint() {
    // Kill the primary after every checkpoint has validated: the final
    // version's replicas *include* the dead daemon, so the post-run
    // restore must walk past it (failover) to a surviving holder.
    let m = CostModel::icdcs24();
    let dry = run_fleet(&m, &fleet(4, 4, 2));
    let last_end = dry
        .spans
        .iter()
        .filter(|s| s.model == "client-0" && s.op == TraceOp::Checkpoint && s.stage == Stage::Total)
        .map(|s| s.end)
        .max()
        .expect("client-0 checkpointed");
    let at = last_end.saturating_since(SimTime::ZERO) + SimDuration::from_secs(1);
    let primary = replica_set("client-0", &[true; 4], 1)[0];
    let cfg = fleet(4, 4, 2).with_kill(primary, at);
    let out = run_fleet(&m, &cfg);

    let client0 = &out.restores[0];
    assert!(
        client0.version.is_some(),
        "the surviving replica still serves"
    );
    assert!(
        client0.failovers >= 1,
        "rendezvous walks past the dead primary"
    );
    assert!(!client0.served_by.contains(&primary));

    let report = daemon_loss_report(&cfg, &out);
    assert!(report.zero_loss);
    assert!(report.restore_failovers >= 1);
}

#[test]
fn recovery_epoch_fences_only_the_dead_daemon() {
    let m = CostModel::icdcs24();
    let at = mid_checkpoint_instant(&m, &fleet(4, 4, 2));
    let primary = replica_set("client-0", &[true; 4], 1)[0];
    let cfg = fleet(4, 4, 2).with_kill(primary, at);
    let out = run_fleet(&m, &cfg);

    assert_eq!(out.metrics.recovery_epoch, 1);
    for d in &out.metrics.fleet {
        if d.daemon == primary as u64 {
            assert!(d.killed);
            assert!(d.fenced_active > 0, "the in-flight pull is fenced");
        } else {
            // A live replica's writes are never fenced or discarded:
            // the survivors keep serving and absorb the repairs.
            assert!(!d.killed);
            assert_eq!(
                d.fenced_active, 0,
                "daemon {} is alive — nothing to fence",
                d.daemon
            );
        }
    }
    let repaired: u64 = out
        .metrics
        .fleet
        .iter()
        .filter(|d| d.daemon != primary as u64)
        .map(|d| d.repairs_in)
        .sum();
    assert!(repaired > 0, "repairs land on survivors only");
    assert_eq!(
        out.metrics.fleet[primary].repairs_in, 0,
        "nothing is repaired onto a dead daemon"
    );
}

#[test]
fn kill_schedules_replay_bit_for_bit_and_the_instant_matters() {
    let m = CostModel::icdcs24();
    let cfg = fleet(3, 6, 2)
        .with_kill(2, SimDuration::from_secs(5))
        .with_kill(0, SimDuration::from_secs(11));
    let a = run_fleet(&m, &cfg);
    let b = run_fleet(&m, &cfg);
    assert_eq!(a.events, b.events, "event order must replay");
    assert_eq!(a.spans, b.spans, "span stream must replay");
    assert_eq!(
        a.metrics, b.metrics,
        "metrics (incl. fleet counters) must replay"
    );
    assert_eq!(a.restores, b.restores, "restore accounting must replay");
    assert_eq!(a.clients, b.clients);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.epoch, 2);

    // Moving a kill changes the interleaving.
    let shifted = fleet(3, 6, 2)
        .with_kill(2, SimDuration::from_secs(6))
        .with_kill(0, SimDuration::from_secs(11));
    let c = run_fleet(&m, &shifted);
    assert_ne!(a.events, c.events, "the kill instant must matter");
}

#[test]
fn single_daemon_single_replica_matches_the_legacy_path() {
    // Placement with k=1 on one daemon degenerates to the pinned
    // legacy path: same stalls, same completion times.
    let m = CostModel::icdcs24();
    let mut legacy = FleetConfig::uniform(
        1,
        2,
        JobShape::single(1_000_000_000, 300),
        IterationProfile::from_total(SimDuration::from_millis(350)),
        Policy::PortusSync { every: 10 },
        40,
    );
    legacy.seed = 9;
    let placed = legacy.clone().with_placement(PlacementConfig::mirrored(1));

    let a = run_fleet(&m, &legacy);
    let b = run_fleet(&m, &placed);
    assert_eq!(a.makespan, b.makespan);
    for (x, y) in a.clients.iter().zip(&b.clients) {
        assert_eq!(x.checkpoints, y.checkpoints);
        assert_eq!(x.checkpoint_stall, y.checkpoint_stall);
        assert_eq!(x.finished_at, y.finished_at);
    }
}

#[test]
fn replicated_client_fails_over_a_restore_on_the_real_datapath() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    let daemons: Vec<_> = (0..3u32)
        .map(|d| {
            fabric.add_nic(NodeId(1 + d));
            let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
            PortusDaemon::start(&fabric, NodeId(1 + d), pmem, DaemonConfig::default())
                .expect("daemon")
        })
        .collect();
    let refs: Vec<&PortusDaemon> = daemons.iter().map(|d| d.as_ref()).collect();
    let client = ReplicatedClient::connect(&refs, compute);

    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("fleet-model", 8, 64 * 1024);
    let mut model =
        ModelInstance::materialize(&spec, &gpu, 3, Materialization::Owned).expect("model");
    client.register_model(&model).expect("register");
    model.train_step();
    let durable = model.model_checksum();
    let out = client.checkpoint("fleet-model").expect("checkpoint");
    assert_eq!(out.survivors(), 3, "the version lands on every replica");

    // Replica 0 dies; training diverges; the restore must fail over.
    fabric.arm_faults(NodeId(1), FaultSpec::All).expect("arm");
    model.train_step();
    let report = client.restore(&model).expect("failover restore");
    assert_eq!(report.version, 1);
    assert_eq!(
        model.model_checksum(),
        durable,
        "restored bit-for-bit from a survivor"
    );

    // With every replica down the failure is typed, not a panic.
    for d in 1..3u32 {
        fabric
            .arm_faults(NodeId(1 + d), FaultSpec::All)
            .expect("arm");
    }
    match client.restore(&model) {
        Err(PortusError::ReplicasExhausted { op, attempts, .. }) => {
            assert_eq!(op, "restore");
            assert_eq!(attempts.len(), 3);
        }
        other => panic!("expected ReplicasExhausted, got {other:?}"),
    }
}
