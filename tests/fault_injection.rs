//! Deterministic fault injection on the simulated fabric: datapath
//! verbs fail on command, the daemon retries per-WQE with simulated
//! backoff, exhausted WQEs roll the target slot back, and the client
//! receives a typed error attributing every failed tensor.

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError, SlotState};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::{SimContext, Stage};

/// The daemon's NIC: one-sided verbs are initiated there, so that is
/// where fault plans must be armed.
const DAEMON_NODE: NodeId = NodeId(1);

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    client: PortusClient,
}

/// Builds a one-daemon/one-client world with a registered model of
/// `layers` adjacent 4 KiB tensors, already one train step in.
fn world(name: &str, layers: usize, cfg: DaemonConfig) -> (World, ModelInstance) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(DAEMON_NODE);
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon = PortusDaemon::start(&fabric, DAEMON_NODE, pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec(name, layers, 4096);
    let mut model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    (
        World {
            ctx,
            fabric,
            daemon,
            client,
        },
        model,
    )
}

/// [`world`], but with 4-engine NICs on both nodes so a
/// `qps_per_connection = 4` config actually stripes.
fn striped_world(name: &str, layers: usize, cfg: DaemonConfig) -> (World, ModelInstance) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic_with_engines(NodeId(0), 4);
    fabric.add_nic_with_engines(DAEMON_NODE, 4);
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon = PortusDaemon::start(&fabric, DAEMON_NODE, pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec(name, layers, 4096);
    let mut model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    (
        World {
            ctx,
            fabric,
            daemon,
            client,
        },
        model,
    )
}

#[test]
fn transient_fault_is_absorbed_by_the_retry_loop() {
    let (w, mut model) = world("transient", 4, DaemonConfig::default());
    let saved = model.model_checksum();

    let before = w.ctx.stats.snapshot();
    let plan = w.fabric.arm_faults(DAEMON_NODE, FaultSpec::Nth(1)).unwrap();
    // Only the first verb fails; the retry round re-posts it cleanly.
    let report = w.client.checkpoint("transient").unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(plan.injected(), 1);

    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.failed_verbs, 1);
    assert_eq!(d.retried_verbs, 1);
    assert_eq!(
        d.rolled_back_slots, 0,
        "a recovered checkpoint must not roll back"
    );

    // The retry backoff was charged to the virtual clock: an identical
    // world with no fault finishes the same checkpoint strictly sooner.
    let (w2, _model2) = world("transient", 4, DaemonConfig::default());
    let clean = w2.client.checkpoint("transient").unwrap();
    assert!(
        report.elapsed > clean.elapsed,
        "retry must cost simulated time: {:?} !> {:?}",
        report.elapsed,
        clean.elapsed
    );

    // The recovered checkpoint is fully usable.
    w.fabric.clear_faults(DAEMON_NODE).unwrap();
    model.train_step(); // diverge
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);

    drop(w.client);
    w.daemon.shutdown();
    drop(w2.client);
    w2.daemon.shutdown();
}

#[test]
fn hard_outage_returns_typed_error_and_rolls_back() {
    let (w, mut model) = world("outage", 4, DaemonConfig::default());
    let saved = model.model_checksum();
    w.client.checkpoint("outage").unwrap(); // v1 lands cleanly

    let before = w.ctx.stats.snapshot();
    w.fabric.arm_faults(DAEMON_NODE, FaultSpec::All).unwrap();
    model.train_step();
    let err = w.client.checkpoint("outage").unwrap_err();
    match &err {
        PortusError::DatapathFailed {
            model: m,
            op,
            failures,
        } => {
            assert_eq!(m, "outage");
            assert_eq!(op, "checkpoint");
            assert_eq!(failures.len(), 1, "4 adjacent tensors ride one gather WQE");
            assert_eq!(failures[0].retries, DaemonConfig::default().verb_retries);
            assert_eq!(failures[0].tensors.len(), 4);
            assert!(failures[0].error.contains("injected fault"));
        }
        other => panic!("expected DatapathFailed, got: {other}"),
    }

    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.failed_verbs, 4, "initial post plus three retry rounds");
    assert_eq!(d.retried_verbs, 3);
    assert_eq!(d.rolled_back_slots, 1);

    // Both slots are in their pre-call flag state: v1 Done, target Empty.
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (done_slot, hdr) = mi.latest_done().unwrap();
    assert_eq!(hdr.version, 1);
    assert_eq!(mi.slots[1 - done_slot].state, SlotState::Empty);

    // Once the fabric heals, restore serves the last Done version.
    w.fabric.clear_faults(DAEMON_NODE).unwrap();
    model.train_step();
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);

    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn failed_restore_push_leaves_the_done_slot_intact() {
    let cfg = DaemonConfig {
        verb_retries: 0,
        ..DaemonConfig::default()
    };
    let (w, mut model) = world("push", 4, cfg);
    let saved = model.model_checksum();
    w.client.checkpoint("push").unwrap();

    let before = w.ctx.stats.snapshot();
    w.fabric.arm_faults(DAEMON_NODE, FaultSpec::All).unwrap();
    model.train_step(); // diverge
    let err = w.client.restore(&model).unwrap_err();
    assert!(
        matches!(&err, PortusError::DatapathFailed { op, .. } if op == "restore"),
        "expected a typed datapath error, got: {err}"
    );

    // A failed push touches no persistent state: nothing to roll back,
    // the stored version stays Done and checksum-valid.
    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.rolled_back_slots, 0);
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.valid_versions(), 1);
    assert_eq!(mi.latest_done().unwrap().1.version, 1);

    w.fabric.clear_faults(DAEMON_NODE).unwrap();
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);

    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn every_failed_run_is_attributed_not_just_the_first() {
    let cfg = DaemonConfig {
        verb_retries: 0,
        ..DaemonConfig::default()
    };
    let (w, mut model) = world("multi", 4, cfg);
    w.client.checkpoint("multi").unwrap(); // v1
    model.train_step();

    w.fabric.arm_faults(DAEMON_NODE, FaultSpec::All).unwrap();
    // Dirty tensors 0 and 2: the clean gap at 1 splits the pull into
    // two single-tensor WQEs — the error must report both, each with
    // its own tensor attribution.
    let err = w
        .client
        .checkpoint_delta("multi", &[true, false, true, false])
        .unwrap_err();
    match &err {
        PortusError::DatapathFailed { op, failures, .. } => {
            assert_eq!(op, "delta-checkpoint");
            assert_eq!(failures.len(), 2);
            assert_eq!(failures[0].tensors, ["multi.layer0.weight"]);
            assert_eq!(failures[1].tensors, ["multi.layer2.weight"]);
        }
        other => panic!("expected DatapathFailed, got: {other}"),
    }

    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn striped_retry_stays_on_the_failing_lane() {
    let cfg = DaemonConfig {
        qps_per_connection: 4,
        ..DaemonConfig::default()
    };
    let (w, mut model) = striped_world("lane", 8, cfg);
    w.client.checkpoint("lane").unwrap(); // v1, clean
    let _ = model.take_dirty(); // v1 covered everything up to here

    // Dirty every other tensor: the gaps split the pull into four
    // single-tensor WQEs, one per lane.
    let evens: Vec<usize> = (0..8).step_by(2).collect();
    model.train_step_sparse(&evens);
    let dirty = model.take_dirty();

    let before = w.ctx.stats.snapshot();
    w.ctx.tracer.enable();
    w.fabric.arm_faults(DAEMON_NODE, FaultSpec::Nth(1)).unwrap();
    let report = w.client.checkpoint_delta("lane", &dirty).unwrap();
    assert_eq!(report.version, 2);

    // One WQE failed, one retry absorbed it, nothing rolled back —
    // the other lanes' completed runs were never re-posted.
    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.failed_verbs, 1);
    assert_eq!(d.retried_verbs, 1);
    assert_eq!(d.rolled_back_slots, 0);

    // Round 0 fanned out across lanes; the retry round posted on
    // exactly the lane that failed.
    let spans = w.ctx.tracer.spans();
    let lanes_in = |round: u32| -> std::collections::BTreeSet<u32> {
        spans
            .iter()
            .filter(|s| s.round == round && matches!(s.stage, Stage::DoorbellPost | Stage::CqDrain))
            .map(|s| s.lane)
            .collect()
    };
    let round0 = lanes_in(0);
    let round1 = lanes_in(1);
    assert!(
        round0.len() >= 2,
        "expected a striped first round, got {round0:?}"
    );
    assert_eq!(
        round1.len(),
        1,
        "retry must stay on its lane, got {round1:?}"
    );
    assert!(
        round0.contains(round1.iter().next().unwrap()),
        "retry lane must be one of the original stripes"
    );

    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn striped_exhaustion_rolls_back_once_and_keeps_latest_done() {
    let cfg = DaemonConfig {
        qps_per_connection: 4,
        verb_retries: 0,
        ..DaemonConfig::default()
    };
    let (w, mut model) = striped_world("stripe-roll", 8, cfg);
    let saved = model.model_checksum();
    w.client.checkpoint("stripe-roll").unwrap(); // v1, clean
    let _ = model.take_dirty(); // v1 covered everything up to here

    let evens: Vec<usize> = (0..8).step_by(2).collect();
    model.train_step_sparse(&evens);
    let dirty = model.take_dirty();

    let before = w.ctx.stats.snapshot();
    w.fabric.arm_faults(DAEMON_NODE, FaultSpec::Nth(1)).unwrap();
    let err = w
        .client
        .checkpoint_delta("stripe-roll", &dirty)
        .unwrap_err();
    match &err {
        PortusError::DatapathFailed { op, failures, .. } => {
            assert_eq!(op, "delta-checkpoint");
            // Exactly one lane's WQE died; the other three lanes
            // completed and are not attributed as failures.
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].retries, 0);
            assert_eq!(failures[0].tensors.len(), 1);
        }
        other => panic!("expected DatapathFailed, got: {other}"),
    }

    // The slot collapsed exactly once even though three lanes
    // succeeded, and the surviving version is untouched.
    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.failed_verbs, 1);
    assert_eq!(d.retried_verbs, 0);
    assert_eq!(d.rolled_back_slots, 1);
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (done_slot, hdr) = mi.latest_done().unwrap();
    assert_eq!(hdr.version, 1);
    assert_eq!(mi.slots[1 - done_slot].state, SlotState::Empty);

    // The fabric heals; v1 restores and verifies (digest-sealed by the
    // striped write path).
    w.fabric.clear_faults(DAEMON_NODE).unwrap();
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);

    drop(w.client);
    w.daemon.shutdown();
}

#[test]
fn ratio_faults_replay_identically_for_the_same_seed() {
    // Ratio decisions hash (seed, seq) — no wall clock, no global RNG —
    // so two identical worlds armed with the same seed observe exactly
    // the same failures, retries, and outcome.
    let run = |seed: u64| {
        let (w, _model) = world("ratio", 32, DaemonConfig::default());
        let before = w.ctx.stats.snapshot();
        w.fabric
            .arm_faults(
                DAEMON_NODE,
                FaultSpec::Ratio {
                    permille: 400,
                    seed,
                },
            )
            .unwrap();
        let outcome = w
            .client
            .checkpoint("ratio")
            .map(|r| r.version)
            .map_err(|e| e.to_string());
        let d = w.ctx.stats.snapshot().since(&before);
        drop(w.client);
        w.daemon.shutdown();
        (
            outcome,
            d.failed_verbs,
            d.retried_verbs,
            d.rolled_back_slots,
        )
    };
    assert_eq!(run(3), run(3), "same seed must replay bit-for-bit");
}

#[test]
fn rearming_a_fault_plan_restarts_its_counters() {
    let (w, _model) = world("rearm", 4, DaemonConfig::default());
    let first = w.fabric.arm_faults(DAEMON_NODE, FaultSpec::Nth(1)).unwrap();
    let _ = w.client.checkpoint("rearm").unwrap();
    assert_eq!(first.injected(), 1);

    // Arming a new plan replaces the old one; its counters start fresh
    // and the old plan stops injecting.
    let second = w.fabric.arm_faults(DAEMON_NODE, FaultSpec::Nth(1)).unwrap();
    assert_eq!(second.seen(), 0);
    let _ = w.client.checkpoint("rearm").unwrap();
    assert_eq!(second.injected(), 1);
    assert_eq!(first.injected(), 1, "retired plan must stop counting");

    assert!(w.fabric.clear_faults(DAEMON_NODE).unwrap().is_some());
    assert!(w.fabric.clear_faults(DAEMON_NODE).unwrap().is_none());

    drop(w.client);
    w.daemon.shutdown();
}
