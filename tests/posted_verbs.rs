//! The posted-verb path: a batched checkpoint pull issued as posted
//! reads and settled through the completion queue — the shape a
//! production daemon's worker would use — plus device-image round-trip
//! properties for the portusctl path.

// Under the offline `proptest` stub the `proptest!` bodies are
// swallowed, leaving imports and strategy helpers "unused"; with the
// real crate they are all live.
#![allow(unused_imports, dead_code)]

use proptest::collection::vec;
use proptest::prelude::*;

use portus_mem::{Buffer, MemorySegment};
use portus_pmem::{load_image, save_image, PmemDevice, PmemMode};
use portus_rdma::{
    Access, CompletionQueue, Fabric, NodeId, PostedQueuePair, QueuePair, RegionTarget,
};
use portus_sim::{MemoryKind, SimContext};

#[test]
fn batched_pull_via_completion_queue() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    let storage = fabric.add_nic(NodeId(1));

    // Eight "tensors" on the GPU.
    let tensors: Vec<_> = (0..8u64)
        .map(|i| Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(64 * 1024, i)))
        .collect();
    let mrs: Vec<_> = tensors
        .iter()
        .map(|t| compute.register(RegionTarget::Buffer(t.clone()), Access::READ))
        .collect();

    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 1 << 20);
    let (_qc, qs) = QueuePair::connect(compute, storage);
    let cq = CompletionQueue::new();
    let qp = PostedQueuePair::new(qs, cq.clone());

    // Post the whole batch, then settle.
    for (i, mr) in mrs.iter().enumerate() {
        let dst = RegionTarget::Pmem {
            dev: pmem.clone(),
            base: i as u64 * 64 * 1024,
            len: 64 * 1024,
        };
        qp.post_read(mr.rkey(), 0, &dst, 0, 64 * 1024);
    }
    let done = cq.poll(64);
    assert_eq!(done.len(), 8);
    assert!(done.iter().all(|w| w.is_ok()));

    // Bytes landed exactly where posted.
    for (i, t) in tensors.iter().enumerate() {
        let window = RegionTarget::Pmem {
            dev: pmem.clone(),
            base: i as u64 * 64 * 1024,
            len: 64 * 1024,
        };
        assert_eq!(window.checksum().unwrap(), t.checksum(), "tensor {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// save_image → load_image reproduces exactly the durable content
    /// for arbitrary persisted writes (and never the volatile ones).
    #[test]
    fn device_image_round_trips_arbitrary_durable_content(
        writes in vec((0u64..(1 << 16), vec(any::<u8>(), 1..256)), 1..12),
        volatile_at in 0u64..(1 << 16),
    ) {
        let dir = std::env::temp_dir().join(format!("portus-img-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("d{volatile_at}.img"));

        let ctx = SimContext::icdcs24();
        let dev = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 17);
        for (off, data) in &writes {
            dev.write(*off, data).unwrap();
            dev.persist(*off, data.len() as u64).unwrap();
        }
        dev.write(volatile_at, b"never-fenced").unwrap();

        save_image(&dev, &path).unwrap();
        let loaded = load_image(ctx, &path).unwrap();
        // Durable content reproduced byte-for-byte: compare the full
        // durable view of both devices (original post-crash vs loaded).
        dev.crash(portus_pmem::CrashSpec::LoseAll);
        let mut a = vec![0u8; 1 << 17];
        let mut b = vec![0u8; 1 << 17];
        dev.read(0, &mut a).unwrap();
        loaded.read(0, &mut b).unwrap();
        prop_assert_eq!(a, b);

        std::fs::remove_file(&path).ok();
    }
}
