//! The content-addressed dedup tier (ROADMAP item 5) and the
//! tag-collision reclaim fix that unblocks it.
//!
//! Invariants under test:
//!
//! * dropping one of two models whose names **collide under FNV-1a**
//!   never reclaims the survivor's storage;
//! * fine-tunes of one base model **share physical extents**, and every
//!   sharer restores bit-for-bit;
//! * after any torn-refcount crash, recovery **never frees an extent a
//!   live map references and never leaks one nothing references**;
//! * the repacker sweeps refcount-zero extents, and compressed extents
//!   (ingest-time or cold) decompress back to the exact bytes.

use portus::{name_hash, repack, DaemonConfig, DedupConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance, ModelSpec};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

/// Two distinct names with the same FNV-1a 64 hash (found by a
/// collision search against [`portus::name_hash`]; asserted below so a
/// hash-function change fails loudly instead of silently weakening the
/// regression).
const COLLIDE_A: &str = "m038e33cdf0f85576";
const COLLIDE_B: &str = "mc1aa6d07ed751e15";

struct World {
    ctx: SimContext,
    fabric: Fabric,
    pmem: std::sync::Arc<PmemDevice>,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world_cfg(cfg: DaemonConfig) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        pmem,
        daemon,
        gpu,
    }
}

fn dedup_cfg() -> DaemonConfig {
    DaemonConfig {
        dedup: Some(DedupConfig::default()),
        ..DaemonConfig::default()
    }
}

fn client(w: &World) -> PortusClient {
    PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap())
}

/// Materializes `spec` from `seed` and registers it.
fn register(w: &World, c: &PortusClient, spec: &ModelSpec, seed: u64) -> ModelInstance {
    let model = ModelInstance::materialize(spec, &w.gpu, seed, Materialization::Owned).unwrap();
    c.register_model(&model).unwrap();
    model
}

/// Overwrites every tensor with zeros so RLE compression has something
/// to win on (the deterministic fill is incompressible by design).
fn zero_tensors(model: &ModelInstance) {
    let zeros = vec![0u8; 4096];
    for t in model.tensors() {
        let mut pos = 0u64;
        while pos < t.buffer.len() {
            let n = ((t.buffer.len() - pos) as usize).min(zeros.len());
            t.buffer.write_at(pos, &zeros[..n]).unwrap();
            pos += n as u64;
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 1: tag-collision reclaim regression.
// ---------------------------------------------------------------------

#[test]
fn colliding_names_actually_collide() {
    assert_ne!(COLLIDE_A, COLLIDE_B);
    assert_eq!(
        name_hash(COLLIDE_A),
        name_hash(COLLIDE_B),
        "the regression pair must collide under name_hash; \
         re-search if the hash function changed"
    );
}

#[test]
fn dropping_a_colliding_name_spares_the_other_model() {
    // Two live models whose names share one FNV-1a tag. Before the
    // ownership fix, remove_model freed every allocation carrying the
    // tag — including the survivor's MIndex and TensorData.
    let w = world_cfg(DaemonConfig::default());
    let c = client(&w);
    let spec_a = test_spec(COLLIDE_A, 3, 64 * 1024);
    let spec_b = test_spec(COLLIDE_B, 3, 64 * 1024);
    let mut a = register(&w, &c, &spec_a, 1);
    let mut b = register(&w, &c, &spec_b, 2);

    a.train_step();
    c.checkpoint(COLLIDE_A).unwrap();
    b.train_step();
    let b_state = b.model_checksum();
    c.checkpoint(COLLIDE_B).unwrap();

    c.drop_model(COLLIDE_A).unwrap();
    assert_eq!(w.daemon.model_count(), 1);

    // The survivor restores bit-for-bit on the live daemon...
    b.train_step();
    let r = c.restore(&b).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(b.model_checksum(), b_state);

    // ...and keeps doing so across a crash + recovery (recovery's
    // reachability GC must agree nothing of B was freed).
    drop(c);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::LoseAll);
    let daemon2 = PortusDaemon::recover(
        &w.fabric,
        NodeId(1),
        w.pmem.clone(),
        DaemonConfig::default(),
    )
    .unwrap();
    assert_eq!(daemon2.model_count(), 1);
    let c2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    c2.register_model(&b).unwrap();
    b.train_step();
    c2.restore(&b).unwrap();
    assert_eq!(b.model_checksum(), b_state);

    // A repack pass over the survivor sees no index/allocator
    // divergence — the drop freed exactly its own regions.
    let report = repack(&daemon2, true).unwrap();
    assert_eq!(report.scanned_models, 1);
    let _ = w.ctx;
}

// ---------------------------------------------------------------------
// Tentpole: fine-tunes sharing extents.
// ---------------------------------------------------------------------

#[test]
fn fine_tunes_share_physical_extents() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    // Base model and three fine-tunes materialized from the same seed:
    // identical initial weights, then each fine-tune diverges in one
    // tensor (a sparse update touching at most two 64 KiB chunks).
    let mut models = Vec::new();
    for i in 0..4usize {
        let name = format!("ft{i}");
        let spec = test_spec(&name, 4, 256 * 1024);
        let mut m = register(&w, &c, &spec, 7);
        if i > 0 {
            m.train_step_sparse(&[i - 1]);
        }
        c.checkpoint(&name).unwrap();
        models.push((name, m));
    }

    let store = w.daemon.index().extent_store().expect("dedup enabled");
    let stats = store.stats().unwrap();
    assert!(stats.shared > 0, "identical chunks must deduplicate");
    assert!(
        stats.stored_bytes < stats.referenced_logical / 2,
        "4 near-identical 1 MiB models must store well under half \
         their referenced bytes ({} vs {})",
        stats.stored_bytes,
        stats.referenced_logical
    );

    // Every sharer restores bit-for-bit despite the shared storage.
    for (name, m) in &mut models {
        let saved = m.model_checksum();
        m.train_step();
        c.restore(m).unwrap();
        assert_eq!(m.model_checksum(), saved, "{name} restore diverged");
    }
    let _ = w.ctx;
}

#[test]
fn dedup_survives_crash_and_recovery() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    let spec = test_spec("base", 4, 128 * 1024);
    let mut base = register(&w, &c, &spec, 3);
    let spec2 = test_spec("tune", 4, 128 * 1024);
    let mut tune = register(&w, &c, &spec2, 3);
    tune.train_step_sparse(&[2]);
    let base_state = base.model_checksum();
    let tune_state = tune.model_checksum();
    c.checkpoint("base").unwrap();
    c.checkpoint("tune").unwrap();

    drop(c);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::Random { seed: 0xD5D5 });

    let daemon2 = PortusDaemon::recover(&w.fabric, NodeId(1), w.pmem.clone(), dedup_cfg()).unwrap();
    let store = daemon2.index().extent_store().unwrap();
    let stats = store.stats().unwrap();
    assert!(stats.live > 0);
    assert!(stats.shared > 0, "sharing survives recovery");
    let c2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    c2.register_model(&base).unwrap();
    c2.register_model(&tune).unwrap();
    base.train_step();
    c2.restore(&base).unwrap();
    assert_eq!(base.model_checksum(), base_state);
    tune.train_step();
    c2.restore(&tune).unwrap();
    assert_eq!(tune.model_checksum(), tune_state);
}

// ---------------------------------------------------------------------
// Satellite 4: torn-refcount crash consistency.
// ---------------------------------------------------------------------

/// Crash after extents were inserted and refcounted but before any slot
/// header published a map over them (the ingest window between steps 1
/// and 3 of the crash ordering): recovery must sweep the orphans and
/// leak nothing.
#[test]
fn crash_before_publish_leaks_no_extents() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    let spec = test_spec("w", 2, 128 * 1024);
    let mut model = register(&w, &c, &spec, 5);
    model.train_step();
    let saved = model.model_checksum();
    c.checkpoint("w").unwrap(); // v1, extent-mapped

    // Forge the torn ingest: orphan extents inserted (payload persisted,
    // refcount 1) that no extent map will ever reference.
    let index = w.daemon.index();
    let store = index.extent_store().unwrap();
    let mut orphan_hashes = Vec::new();
    for i in 0..3u8 {
        let payload = vec![0xA0 ^ i; 8192];
        let r = store
            .insert_or_ref(&payload, index.allocator(), false)
            .unwrap();
        assert!(!r.shared, "orphan payloads are unique");
        orphan_hashes.push(store.record(r.slot).unwrap().chash);
    }
    let live_before = store.stats().unwrap().live;

    drop(c);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&w.fabric, NodeId(1), w.pmem.clone(), dedup_cfg()).unwrap();
    let store2 = daemon2.index().extent_store().unwrap();
    let live: Vec<_> = store2.live_extents().unwrap();
    // The orphans are gone (recount found no referencing map → swept)...
    for (_, rec) in &live {
        assert!(
            !orphan_hashes.contains(&rec.chash),
            "unreferenced extent survived recovery"
        );
    }
    assert_eq!(live.len() as u64, live_before - orphan_hashes.len() as u64);
    // ...and every surviving extent is referenced, with an exact count.
    for (_, rec) in &live {
        assert!(rec.refcount > 0, "live extent with zero refs leaked");
    }
    // The checkpoint the orphans were torn out of still restores.
    let c2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    c2.register_model(&model).unwrap();
    model.train_step();
    c2.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), saved);
}

/// Torn refcount words in both directions (an update persisted without
/// its peers, or lost entirely): recovery recounts from the live maps,
/// so no referenced extent is freed and no unreferenced one survives.
#[test]
fn recovery_recounts_torn_refcounts_exactly() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    let spec_a = test_spec("rc-a", 3, 128 * 1024);
    let spec_b = test_spec("rc-b", 3, 128 * 1024);
    let mut a = register(&w, &c, &spec_a, 9);
    let mut b = register(&w, &c, &spec_b, 9); // same content → shared
    let a_state = a.model_checksum();
    let b_state = b.model_checksum();
    c.checkpoint("rc-a").unwrap();
    c.checkpoint("rc-b").unwrap();

    // Tamper with every persistent refcount: zero half (an under-count
    // would free referenced extents), inflate the rest (an over-count
    // would leak them once the models drop).
    let store = w.daemon.index().extent_store().unwrap();
    for (i, (slot, _)) in store.live_extents().unwrap().into_iter().enumerate() {
        let torn = if i % 2 == 0 { 0 } else { 99 };
        store.set_refcount(slot, torn).unwrap();
    }

    drop(c);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&w.fabric, NodeId(1), w.pmem.clone(), dedup_cfg()).unwrap();
    let store2 = daemon2.index().extent_store().unwrap();
    // Exact recount: both models' maps reference every shared extent.
    for (_, rec) in store2.live_extents().unwrap() {
        assert_eq!(rec.refcount, 2, "recount must be exact, not torn");
    }
    // Referenced extents were not freed: both models restore.
    let c2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    c2.register_model(&a).unwrap();
    c2.register_model(&b).unwrap();
    a.train_step();
    c2.restore(&a).unwrap();
    assert_eq!(a.model_checksum(), a_state);
    b.train_step();
    c2.restore(&b).unwrap();
    assert_eq!(b.model_checksum(), b_state);

    // And nothing is leaked once the references really go away: drop
    // both models; the repacker's sweep empties the store.
    c2.drop_model("rc-a").unwrap();
    c2.drop_model("rc-b").unwrap();
    let report = repack(&daemon2, false).unwrap();
    assert!(report.swept_extents > 0, "dropped extents must be swept");
    assert_eq!(store2.stats().unwrap().live, 0, "no extent may leak");
}

/// Crash after the release path's header flip but before its decrefs
/// (the release window): the extents look over-referenced, and recovery
/// must correct that rather than trust the stale counts.
#[test]
fn crash_mid_release_never_frees_the_survivors_extents() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    let spec_a = test_spec("rel-a", 2, 128 * 1024);
    let spec_b = test_spec("rel-b", 2, 128 * 1024);
    let a = register(&w, &c, &spec_a, 11);
    let mut b = register(&w, &c, &spec_b, 11);
    let b_state = b.model_checksum();
    c.checkpoint("rel-a").unwrap();
    c.checkpoint("rel-b").unwrap();

    // Emulate a release of rel-a torn after the decrefs were skipped:
    // drop the model (decrefs ran), then re-inflate the counts as if
    // the decref lines never reached media.
    c.drop_model("rel-a").unwrap();
    let store = w.daemon.index().extent_store().unwrap();
    for (slot, rec) in store.live_extents().unwrap() {
        store.set_refcount(slot, rec.refcount + 1).unwrap();
    }

    drop(c);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&w.fabric, NodeId(1), w.pmem.clone(), dedup_cfg()).unwrap();
    let store2 = daemon2.index().extent_store().unwrap();
    // rel-b's map is the only reference left; the over-counts are gone.
    for (_, rec) in store2.live_extents().unwrap() {
        assert_eq!(rec.refcount, 1, "stale over-count must be corrected");
    }
    let c2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    c2.register_model(&b).unwrap();
    b.train_step();
    c2.restore(&b).unwrap();
    assert_eq!(b.model_checksum(), b_state);
    let _ = a;
}

// ---------------------------------------------------------------------
// Repacker integration: sweep + cold compression.
// ---------------------------------------------------------------------

#[test]
fn repack_sweeps_extents_of_dropped_models() {
    let w = world_cfg(dedup_cfg());
    let c = client(&w);
    let spec = test_spec("sweepme", 4, 256 * 1024);
    let mut model = register(&w, &c, &spec, 13);
    model.train_step();
    c.checkpoint("sweepme").unwrap();
    model.train_step();
    c.checkpoint("sweepme").unwrap(); // both slots extent-mapped

    let store = w.daemon.index().extent_store().unwrap();
    assert!(store.stats().unwrap().live > 0);
    let free_before = w.daemon.index().allocator().free_bytes();

    c.drop_model("sweepme").unwrap();
    let report = repack(&w.daemon, false).unwrap();
    assert!(report.swept_extents > 0);
    assert!(report.swept_extent_bytes > 0);
    assert_eq!(store.stats().unwrap().live, 0);
    assert!(
        w.daemon.index().allocator().free_bytes() > free_before,
        "sweeping must return the payload bytes"
    );
    let _ = w.ctx;
}

#[test]
fn ingest_compression_restores_exact_bytes() {
    let cfg = DaemonConfig {
        dedup: Some(DedupConfig {
            compress_on_ingest: true,
            ..DedupConfig::default()
        }),
        ..DaemonConfig::default()
    };
    let w = world_cfg(cfg);
    let c = client(&w);
    let spec = test_spec("zipped", 3, 128 * 1024);
    let model = register(&w, &c, &spec, 17);
    zero_tensors(&model);
    let saved = model.model_checksum();
    c.checkpoint("zipped").unwrap();

    let store = w.daemon.index().extent_store().unwrap();
    let stats = store.stats().unwrap();
    assert!(stats.compressed > 0, "zero runs must compress");
    assert!(
        stats.stored_bytes < stats.logical_bytes,
        "compression must shrink the physical footprint"
    );

    // Dirty the weights, restore, and the zeros come back exactly.
    let mut model = model;
    model.train_step();
    assert_ne!(model.model_checksum(), saved);
    c.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), saved);
    let _ = w.ctx;
}

#[test]
fn cold_extents_compress_during_repack_and_still_restore() {
    let cfg = DaemonConfig {
        dedup: Some(DedupConfig {
            cold_compress_idle: Some(0), // everything is cold
            ..DedupConfig::default()
        }),
        ..DaemonConfig::default()
    };
    let w = world_cfg(cfg);
    let c = client(&w);
    let spec = test_spec("coldstore", 3, 128 * 1024);
    let model = register(&w, &c, &spec, 19);
    zero_tensors(&model);
    let saved = model.model_checksum();
    c.checkpoint("coldstore").unwrap();

    let store = w.daemon.index().extent_store().unwrap();
    assert_eq!(store.stats().unwrap().compressed, 0, "ingest stays plain");

    let report = repack(&w.daemon, false).unwrap();
    assert!(report.compressed_extents > 0, "cold pass must compress");
    assert!(report.compressed_saved_bytes > 0);
    assert!(store.stats().unwrap().compressed > 0);

    let mut model = model;
    model.train_step();
    c.restore(&model).unwrap();
    assert_eq!(
        model.model_checksum(),
        saved,
        "restore pays decompression, returns exact bytes"
    );
    let _ = w.ctx;
}
