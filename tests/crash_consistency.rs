//! Crash-consistency of the double-mapping scheme (§III-D2), tested
//! against the honest PMem failure model: unflushed lines may or may
//! not reach media, decided adversarially at random.
//!
//! Invariant under test: **after any crash, recovery finds at least one
//! complete, checksum-valid checkpoint version, and it is the most
//! recent version whose completion was acknowledged.**

// Under the offline `proptest` stub the `proptest!` bodies are
// swallowed, leaving imports and strategy helpers "unused"; with the
// real crate they are all live.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError, SlotState};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::SimContext;

/// Runs `completed` checkpoints, then a torn in-flight one (garbage in
/// the target slot, marked Active, nothing fenced), then crashes with
/// `seed` and recovers. Returns (latest recovered version, restored
/// state checksum, expected checksum).
fn torn_checkpoint_scenario(completed: u64, seed: u64) -> (u64, u64, u64) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("victim", 4, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();

    let mut last_state = 0u64;
    for _ in 0..completed {
        model.train_step();
        last_state = model.model_checksum();
        client.checkpoint("victim").unwrap();
    }

    // A checkpoint is in flight when the power fails: the daemon has
    // marked the target slot Active and pulled part of the data, none
    // of it fenced. Emulate the partial pull directly on the device.
    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let target = mi.target_slot();
    index.mark_slot_active(&mi, target, completed + 1).unwrap();
    let hdr = mi.slots[target];
    // Partial garbage, deliberately unfenced.
    let garbage = vec![0xEE; (hdr.data_len / 2).max(64) as usize];
    pmem.write(hdr.data_off, &garbage).unwrap();

    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::Random { seed });

    // Recovery.
    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default())
        .expect("recovery must always succeed");
    let summaries = daemon2.summaries().unwrap();
    assert_eq!(summaries.len(), 1);
    let latest = summaries[0].latest_version.unwrap_or(0);

    // The recovered latest-done slot must be checksum-valid.
    let index2 = daemon2.index();
    let (_, off2) = index2.live_entries().unwrap()[0];
    let mi2 = index2.load_mindex(off2).unwrap();
    if let Some((slot, hdr)) = mi2.latest_done() {
        assert_eq!(
            index2.slot_checksum(&mi2, slot).unwrap(),
            hdr.checksum,
            "recovered Done slot failed integrity"
        );
    }

    // Restore through the full client path and compare content.
    let restored_state = if completed > 0 {
        let client2 = PortusClient::connect(&daemon2, compute);
        client2.register_model(&model).unwrap();
        model.train_step(); // diverge
        client2.restore(&model).unwrap();
        model.model_checksum()
    } else {
        0
    };
    (latest, restored_state, last_state)
}

#[test]
fn torn_checkpoint_never_loses_the_last_complete_version() {
    for completed in 1..=3 {
        for seed in [0u64, 1, 0xDEAD, 0xBEEF] {
            let (latest, restored, expected) = torn_checkpoint_scenario(completed, seed);
            assert_eq!(
                latest, completed,
                "latest recovered version (completed={completed}, seed={seed})"
            );
            assert_eq!(
                restored, expected,
                "restored bytes (completed={completed}, seed={seed})"
            );
        }
    }
}

#[test]
fn crash_before_any_checkpoint_recovers_empty_model() {
    let (latest, _, _) = torn_checkpoint_scenario(0, 42);
    assert_eq!(latest, 0, "no complete version may be invented");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for arbitrary completed-checkpoint counts and crash
    /// seeds, recovery serves exactly the last acknowledged version.
    #[test]
    fn recovery_always_serves_last_acknowledged_version(
        completed in 1u64..4,
        seed in any::<u64>(),
    ) {
        let (latest, restored, expected) = torn_checkpoint_scenario(completed, seed);
        prop_assert_eq!(latest, completed);
        prop_assert_eq!(restored, expected);
    }
}

#[test]
fn active_slot_is_never_served_after_recovery() {
    // Direct check on the slot states after a torn-checkpoint crash.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("v", 2, 4096);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("v").unwrap();

    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let target = mi.target_slot();
    index.mark_slot_active(&mi, target, 2).unwrap();

    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let index2 = daemon2.index();
    let (_, off2) = index2.live_entries().unwrap()[0];
    let mi2 = index2.load_mindex(off2).unwrap();
    let (done_slot, hdr) = mi2.latest_done().unwrap();
    assert_eq!(hdr.version, 1, "only v1 completed");
    assert_ne!(done_slot, target);
    assert_eq!(
        mi2.slots[target].state,
        SlotState::Active,
        "torn slot stays marked invalid"
    );
}

#[test]
fn checkpoint_failing_mid_pull_restores_previous_done_version() {
    // A datapath fault (not a power failure) kills the pull halfway:
    // the daemon must roll the target slot back so the previous Done
    // version stays the one restore serves.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    // No retry budget: the first fabric error is terminal.
    let cfg = DaemonConfig {
        verb_retries: 0,
        ..DaemonConfig::default()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    // 20 adjacent tensors coalesce into two gather WQEs (MAX_SGE = 16),
    // so failing the second verb leaves the pull half landed.
    let spec = test_spec("mid", 20, 4096);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();

    model.train_step();
    let saved = model.model_checksum();
    client.checkpoint("mid").unwrap(); // v1 completes cleanly

    // The daemon NIC initiates the one-sided verbs, so arm it there.
    fabric.arm_faults(NodeId(1), FaultSpec::Nth(2)).unwrap();
    model.train_step();
    let err = client.checkpoint("mid").unwrap_err();
    assert!(
        matches!(&err, PortusError::DatapathFailed { op, .. } if op == "checkpoint"),
        "expected a typed datapath error, got: {err}"
    );
    fabric.clear_faults(NodeId(1)).unwrap();

    // The half-pulled slot was rolled back: v1 is still the latest Done
    // version and nothing is left Active.
    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.latest_done().unwrap().1.version, 1);
    assert_eq!(mi.valid_versions(), 1);
    assert!(
        mi.slots.iter().all(|s| s.state != SlotState::Active),
        "no slot may stay Active after a failed pull"
    );

    // And restore serves the acknowledged v1 content.
    model.train_step(); // diverge
    let report = client.restore(&model).unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(model.model_checksum(), saved);
    drop(client);
    daemon.shutdown();
}

#[test]
fn delta_failure_after_carry_over_copies_rolls_the_slot_back() {
    // The delta path copies clean tensors into the target slot before
    // pulling dirty ones. If the pull then fails, the slot already
    // holds carried data — it must still be rolled back and the count
    // of valid versions must not change.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let cfg = DaemonConfig {
        verb_retries: 0,
        ..DaemonConfig::default()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("delta", 4, 4096);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();

    model.train_step();
    let saved = model.model_checksum();
    client.checkpoint("delta").unwrap(); // v1

    let before = ctx.stats.snapshot();
    fabric.arm_faults(NodeId(1), FaultSpec::All).unwrap();
    // Only tensor 2 is dirty: tensors 0, 1, 3 are carried over from v1
    // by device-local copies (unaffected by fabric faults), then the
    // single pull WQE for tensor 2 fails terminally.
    let err = client
        .checkpoint_delta("delta", &[false, false, true, false])
        .unwrap_err();
    assert!(
        matches!(&err, PortusError::DatapathFailed { op, .. } if op == "delta-checkpoint"),
        "expected a typed datapath error, got: {err}"
    );
    fabric.clear_faults(NodeId(1)).unwrap();

    let delta = ctx.stats.snapshot().since(&before);
    assert_eq!(delta.rolled_back_slots, 1);

    // valid_versions unchanged; the target slot is back to Empty.
    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.valid_versions(), 1);
    let (done_slot, hdr) = mi.latest_done().unwrap();
    assert_eq!(hdr.version, 1);
    assert_eq!(mi.slots[1 - done_slot].state, SlotState::Empty);

    // The surviving v1 still restores byte-for-byte.
    model.train_step(); // diverge
    let report = client.restore(&model).unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(model.model_checksum(), saved);
    drop(client);
    daemon.shutdown();
}

#[test]
fn torn_modeltable_publication_is_rolled_back() {
    // Crash between CAS-claim and go-live of a ModelTable entry: the
    // model must not exist after recovery and the slot is reusable.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();

    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("published", 2, 4096);
    let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();

    // Forge a half-published entry (state CLAIMED = 1) in slot 1.
    let entry1 = 64 + 32; // superblock + first entry
    pmem.cas_u64_persist(entry1, 0, 1).unwrap().unwrap();

    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    assert_eq!(
        daemon2.model_count(),
        1,
        "only the fully published model survives"
    );
    // The rolled-back slot is reusable: register another model.
    let spec2 = test_spec("second", 2, 4096);
    let model2 = ModelInstance::materialize(
        &spec2,
        &GpuDevice::new(SimContext::icdcs24(), 1, 1 << 30),
        2,
        Materialization::Owned,
    )
    .unwrap();
    let client2 = PortusClient::connect(&daemon2, compute);
    client2.register_model(&model2).unwrap();
    assert_eq!(daemon2.model_count(), 2);
}
