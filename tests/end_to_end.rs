//! End-to-end integration: register → checkpoint → restore across the
//! full stack (client, control channel, fabric, daemon, persistent
//! index, PMem), with real bytes verified at every step.

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance, TensorMeta};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

struct Deployment {
    ctx: SimContext,
    fabric: Fabric,
    daemon: Arc<PortusDaemon>,
    gpu: Arc<GpuDevice>,
}

fn deploy(pmem_bytes: u64) -> Deployment {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, pmem_bytes);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 4 << 30);
    Deployment {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

impl Deployment {
    fn client(&self) -> PortusClient {
        PortusClient::connect(&self.daemon, self.fabric.nic(NodeId(0)).unwrap())
    }
}

#[test]
fn checkpoint_restore_round_trip() {
    let d = deploy(256 << 20);
    let spec = test_spec("rt", 12, 512 * 1024);
    let mut model = ModelInstance::materialize(&spec, &d.gpu, 3, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();

    model.train_step();
    let want = model.model_checksum();
    let report = client.checkpoint("rt").unwrap();
    assert_eq!(report.version, 1);
    assert_eq!(report.bytes, spec.total_bytes());
    assert!(report.elapsed.as_nanos() > 0);

    model.train_step();
    model.train_step();
    assert_ne!(model.model_checksum(), want);
    let restore = client.restore(&model).unwrap();
    assert_eq!(restore.version, 1);
    assert_eq!(model.model_checksum(), want);
}

#[test]
fn successive_versions_alternate_slots_and_restore_latest() {
    let d = deploy(256 << 20);
    let spec = test_spec("versions", 6, 256 * 1024);
    let mut model = ModelInstance::materialize(&spec, &d.gpu, 9, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();

    let mut states = Vec::new();
    for v in 1..=5u64 {
        model.train_step();
        states.push(model.model_checksum());
        let r = client.checkpoint("versions").unwrap();
        assert_eq!(r.version, v);
    }
    // Always exactly 2 valid versions on PMem after the second one.
    let summary = &client.list_models().unwrap()[0];
    assert_eq!(summary.valid_versions, 2);
    assert_eq!(summary.latest_version, Some(5));

    model.train_step();
    let r = client.restore(&model).unwrap();
    assert_eq!(r.version, 5);
    assert_eq!(model.model_checksum(), states[4]);
}

#[test]
fn restore_without_checkpoint_fails_cleanly() {
    let d = deploy(64 << 20);
    let spec = test_spec("empty", 3, 4096);
    let model = ModelInstance::materialize(&spec, &d.gpu, 0, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();
    let err = client.restore(&model).unwrap_err();
    assert!(
        err.to_string().contains("no complete checkpoint"),
        "got: {err}"
    );
}

#[test]
fn unknown_model_checkpoint_fails() {
    let d = deploy(64 << 20);
    let client = d.client();
    let err = client.checkpoint("never-registered").unwrap_err();
    assert!(matches!(err, PortusError::Daemon(_)));
    assert!(err.to_string().contains("not found"), "got: {err}");
}

#[test]
fn reregistration_with_different_structure_is_rejected() {
    let d = deploy(128 << 20);
    let spec = test_spec("strict", 4, 8192);
    let model = ModelInstance::materialize(&spec, &d.gpu, 1, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();

    // Same name, different layer count.
    let other_spec = test_spec("strict", 5, 8192);
    let other = ModelInstance::materialize(&other_spec, &d.gpu, 1, Materialization::Owned).unwrap();
    let err = client.register_model(&other).unwrap_err();
    assert!(err.to_string().contains("mismatch"), "got: {err}");
}

#[test]
fn drop_model_frees_pmem_space() {
    let d = deploy(128 << 20);
    let free0 = d.daemon.index().allocator().free_bytes();
    let spec = test_spec("temp", 8, 1 << 20);
    let model = ModelInstance::materialize(&spec, &d.gpu, 1, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();
    client.checkpoint("temp").unwrap();
    assert!(d.daemon.index().allocator().free_bytes() < free0);

    client.drop_model("temp").unwrap();
    assert_eq!(d.daemon.index().allocator().free_bytes(), free0);
    assert!(client.list_models().unwrap().is_empty());
    // Checkpointing a dropped model fails.
    assert!(client.checkpoint("temp").is_err());
}

#[test]
fn per_tensor_content_is_exact_on_pmem() {
    // Inspect TensorData directly: each tensor's bytes on PMem equal
    // the GPU bytes, at the recorded per-tensor offsets.
    let d = deploy(128 << 20);
    let spec = test_spec("exact", 5, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &d.gpu, 77, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("exact").unwrap();

    let index = d.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (_, hdr) = mi.latest_done().unwrap();
    for (rec, tensor) in mi.tensors.iter().zip(model.tensors()) {
        let mut pmem_bytes = vec![0u8; rec.meta.size_bytes() as usize];
        index
            .device()
            .read(hdr.data_off + rec.rel_off, &mut pmem_bytes)
            .unwrap();
        assert_eq!(
            pmem_bytes,
            tensor.buffer.to_vec(),
            "tensor {} differs on PMem",
            rec.meta.name
        );
    }
}

#[test]
fn registration_survives_metadata_round_trip() {
    // The daemon's persistent tensor records must reproduce the exact
    // metadata the client registered (names, dtypes, shapes).
    let d = deploy(64 << 20);
    let spec = portus_dnn::ModelSpec::new(
        "meta",
        vec![
            TensorMeta::new("embed.weight", portus_dnn::DType::F32, vec![512, 64]),
            TensorMeta::new("ln.bias", portus_dnn::DType::F16, vec![64]),
            TensorMeta::new("head.weight", portus_dnn::DType::BF16, vec![10, 64]),
        ],
    );
    let model = ModelInstance::materialize(&spec, &d.gpu, 4, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();

    let index = d.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.name, "meta");
    for (rec, meta) in mi.tensors.iter().zip(&spec.tensors) {
        assert_eq!(&rec.meta, meta);
    }
    let _ = d.ctx; // deployment keeps the context alive
}

#[test]
fn checkpoint_of_updated_model_differs_from_previous_version() {
    let d = deploy(128 << 20);
    let spec = test_spec("diff", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &d.gpu, 5, Materialization::Owned).unwrap();
    let client = d.client();
    client.register_model(&model).unwrap();

    client.checkpoint("diff").unwrap();
    let index = d.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi1 = index.load_mindex(off).unwrap();
    let (s1, h1) = mi1.latest_done().unwrap();
    let c1 = index.slot_checksum(&mi1, s1).unwrap();
    assert_eq!(c1, h1.checksum);

    model.train_step();
    client.checkpoint("diff").unwrap();
    let mi2 = index.load_mindex(off).unwrap();
    let (s2, h2) = mi2.latest_done().unwrap();
    assert_ne!(s1, s2, "new version must land in the other slot");
    assert_ne!(
        h1.checksum, h2.checksum,
        "content changed, checksum must too"
    );
}
