//! The stage-pipelined, multi-QP striped datapath: QP striping across
//! NIC DMA-engine lanes, the pipelined persist+checksum seal with its
//! incremental positional digest, and the guarantee that
//! `qps_per_connection = 1` keeps the classic datapath bit-for-bit.

use portus::{DaemonConfig, PortusClient, PortusDaemon, CKSUM_KIND_DIGEST, CKSUM_KIND_FNV};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId, MAX_SGE};
use portus_sim::{SimContext, Stage};

const DAEMON_NODE: NodeId = NodeId(1);

struct World {
    ctx: SimContext,
    daemon: std::sync::Arc<PortusDaemon>,
    client: PortusClient,
}

/// One daemon + one client, both NICs with `engines` DMA engines, and
/// a registered model of `layers` adjacent tensors of `layer_bytes`,
/// already one train step in.
fn world(
    name: &str,
    layers: usize,
    layer_bytes: u64,
    engines: usize,
    cfg: DaemonConfig,
) -> (World, ModelInstance) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic_with_engines(NodeId(0), engines);
    fabric.add_nic_with_engines(DAEMON_NODE, engines);
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, DAEMON_NODE, pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    let spec = test_spec(name, layers, layer_bytes);
    let mut model = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    (
        World {
            ctx,
            daemon,
            client,
        },
        model,
    )
}

fn striped_cfg(qps: usize) -> DaemonConfig {
    DaemonConfig {
        qps_per_connection: qps,
        ..DaemonConfig::default()
    }
}

/// The replay half of the bit-for-bit guarantee: the exact scenario
/// whose Chrome trace was captured at the pre-striping HEAD, re-run on
/// today's datapath with the default `qps_per_connection = 1`, must
/// serialize to the identical JSON — same spans, same virtual
/// timestamps, byte for byte.
#[test]
fn single_qp_replays_the_golden_trace_bit_for_bit() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    ctx.tracer.enable();
    let client = PortusClient::connect(&daemon, fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("golden", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 17, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("golden").unwrap();
    model.train_step();
    client
        .checkpoint_delta("golden", &[true, false, true, false])
        .unwrap();
    model.train_step();
    client.restore(&model).unwrap();

    let golden = include_str!("golden/single_qp_trace.json");
    assert_eq!(
        ctx.tracer.to_chrome_trace(),
        golden,
        "qps_per_connection = 1 must keep the classic datapath bit-for-bit"
    );
    drop(client);
    daemon.shutdown();
}

/// One striped checkpoint against one classic checkpoint of the same
/// model: the striped datapath must finish strictly sooner in virtual
/// time, its seal must overlap fabric completions (non-zero pipeline
/// gauge), and the trace must show per-lane doorbells with persist
/// running while later completions are still draining.
#[test]
fn striped_checkpoint_overlaps_seal_with_the_fabric() {
    // 128 adjacent 128 KiB tensors = 16 MiB in 8 gather WQEs
    // (MAX_SGE = 16 tensors each): two waves per lane on 4 lanes.
    let layers = 8 * MAX_SGE;
    let (base_w, _m) = world("pipe", layers, 128 * 1024, 1, DaemonConfig::default());
    let classic = base_w.client.checkpoint("pipe").unwrap();

    let (w, _model) = world("pipe", layers, 128 * 1024, 4, striped_cfg(4));
    w.ctx.tracer.enable();
    let striped = w.client.checkpoint("pipe").unwrap();

    assert_eq!(striped.bytes, classic.bytes);
    assert!(
        striped.elapsed < classic.elapsed,
        "striping must beat the classic datapath: {:?} !< {:?}",
        striped.elapsed,
        classic.elapsed
    );

    // The persist+checksum stage ran while later WQEs were in flight.
    let overlap = w.ctx.metrics.snapshot().pipeline_overlap_permille;
    assert!(overlap > 0, "pipelined seal never overlapped the fabric");

    let spans = w.ctx.tracer.spans();
    let lanes: std::collections::BTreeSet<u32> = spans
        .iter()
        .filter(|s| matches!(s.stage, Stage::DoorbellPost | Stage::CqDrain))
        .map(|s| s.lane)
        .collect();
    assert!(
        lanes.len() >= 2,
        "expected multi-lane drains, got {lanes:?}"
    );
    let persists: Vec<_> = spans.iter().filter(|s| s.stage == Stage::Persist).collect();
    let checksums = spans.iter().filter(|s| s.stage == Stage::Checksum).count();
    assert_eq!(persists.len(), 8, "one persist span per run");
    assert_eq!(checksums, 8, "one checksum span per run");
    let last_drain_end = spans
        .iter()
        .filter(|s| s.stage == Stage::CqDrain)
        .map(|s| s.end)
        .max()
        .unwrap();
    assert!(
        persists.iter().any(|p| p.start < last_drain_end),
        "no persist span started before the last CQ drain ended"
    );

    drop(base_w.client);
    base_w.daemon.shutdown();
    drop(w.client);
    w.daemon.shutdown();
}

/// The headline number: two concurrent large-model checkpoints on a
/// 4-QP / 4-engine fabric finish in less than half the virtual time the
/// single-QP datapath needs for the same two checkpoints.
#[test]
fn concurrent_striped_checkpoints_double_throughput() {
    let layers = 8 * MAX_SGE;
    let bytes = 128 * 1024;

    // Baseline: classic datapath, the two checkpoints back to back.
    let base = {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let nic_a = fabric.add_nic(NodeId(0));
        let nic_b = fabric.add_nic(NodeId(2));
        fabric.add_nic(DAEMON_NODE);
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
        let daemon =
            PortusDaemon::start(&fabric, DAEMON_NODE, pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
        let mut ma = ModelInstance::materialize(
            &test_spec("a", layers, bytes),
            &gpu,
            7,
            Materialization::Owned,
        )
        .unwrap();
        let mut mb = ModelInstance::materialize(
            &test_spec("b", layers, bytes),
            &gpu,
            9,
            Materialization::Owned,
        )
        .unwrap();
        let ca = PortusClient::connect(&daemon, nic_a);
        let cb = PortusClient::connect(&daemon, nic_b);
        ca.register_model(&ma).unwrap();
        cb.register_model(&mb).unwrap();
        ma.train_step();
        mb.train_step();
        let t0 = ctx.clock.now();
        ca.checkpoint("a").unwrap();
        cb.checkpoint("b").unwrap();
        let elapsed = ctx.clock.now().saturating_since(t0);
        drop(ca);
        drop(cb);
        daemon.shutdown();
        elapsed
    };

    // Striped: same two checkpoints, in flight together.
    let striped = {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let nic_a = fabric.add_nic_with_engines(NodeId(0), 4);
        let nic_b = fabric.add_nic_with_engines(NodeId(2), 4);
        fabric.add_nic_with_engines(DAEMON_NODE, 4);
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
        let daemon = PortusDaemon::start(&fabric, DAEMON_NODE, pmem, striped_cfg(4)).unwrap();
        let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
        let mut ma = ModelInstance::materialize(
            &test_spec("a", layers, bytes),
            &gpu,
            7,
            Materialization::Owned,
        )
        .unwrap();
        let mut mb = ModelInstance::materialize(
            &test_spec("b", layers, bytes),
            &gpu,
            9,
            Materialization::Owned,
        )
        .unwrap();
        let ca = PortusClient::connect(&daemon, nic_a);
        let cb = PortusClient::connect(&daemon, nic_b);
        ca.register_model(&ma).unwrap();
        cb.register_model(&mb).unwrap();
        ma.train_step();
        mb.train_step();
        let t0 = ctx.clock.now();
        let pa = ca.checkpoint_async("a").unwrap();
        let pb = cb.checkpoint_async("b").unwrap();
        ca.wait_checkpoint("a", pa).unwrap();
        cb.wait_checkpoint("b", pb).unwrap();
        let elapsed = ctx.clock.now().saturating_since(t0);
        drop(ca);
        drop(cb);
        daemon.shutdown();
        elapsed
    };

    assert!(
        striped.as_nanos() * 2 <= base.as_nanos(),
        "expected >= 2x virtual-time speedup: striped {striped:?} vs baseline {base:?}"
    );
}

/// Restore validates checkpoints from **both** write paths: striped
/// checkpoints seal with the incrementally combined positional digest
/// (`CKSUM_KIND_DIGEST`), classic ones with the sequential FNV
/// checksum — `verify_on_restore` recomputes whichever kind the header
/// says and both round-trip the model bytes exactly.
#[test]
fn restore_verifies_both_checksum_kinds() {
    // Striped: header carries a digest, no FNV word.
    let (w, mut model) = world("digest", 32, 64 * 1024, 4, striped_cfg(4));
    let saved = model.model_checksum();
    w.client.checkpoint("digest").unwrap();
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (_, hdr) = mi.latest_done().unwrap();
    assert_eq!(hdr.cksum_kind, CKSUM_KIND_DIGEST);
    assert_ne!(hdr.digest, 0);
    assert_eq!(hdr.checksum, 0, "digest-sealed slots carry no FNV word");
    model.train_step(); // diverge
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);

    // A striped delta checkpoint (fabric pulls + device-local carries,
    // each contributing its own partial digest) verifies the same way.
    let _ = model.take_dirty(); // v1 covered everything up to here
    let evens: Vec<usize> = (0..32).step_by(2).collect();
    model.train_step_sparse(&evens);
    let saved2 = model.model_checksum();
    let dirty = model.take_dirty();
    w.client.checkpoint_delta("digest", &dirty).unwrap();
    model.train_step();
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 2);
    assert_eq!(model.model_checksum(), saved2);
    drop(w.client);
    w.daemon.shutdown();

    // Classic: the FNV path still seals and verifies.
    let (w1, mut m1) = world("fnv", 4, 4096, 1, DaemonConfig::default());
    let saved = m1.model_checksum();
    w1.client.checkpoint("fnv").unwrap();
    let index = w1.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (_, hdr) = mi.latest_done().unwrap();
    assert_eq!(hdr.cksum_kind, CKSUM_KIND_FNV);
    assert_ne!(hdr.checksum, 0);
    m1.train_step();
    let r = w1.client.restore(&m1).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(m1.model_checksum(), saved);
    drop(w1.client);
    w1.daemon.shutdown();
}

/// Striping is config-only: a 4-QP connection over single-engine NICs
/// still produces correct checkpoints (the lanes all queue on the one
/// engine), and a 1-QP connection over many-engine NICs stays on the
/// classic path.
#[test]
fn striping_degrades_gracefully_with_mismatched_engines() {
    let (w, mut model) = world("mismatch", 8, 4096, 1, striped_cfg(4));
    let saved = model.model_checksum();
    w.client.checkpoint("mismatch").unwrap();
    model.train_step();
    let r = w.client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), saved);
    drop(w.client);
    w.daemon.shutdown();

    let (w2, model2) = world("classic", 8, 4096, 4, DaemonConfig::default());
    w2.client.checkpoint("classic").unwrap();
    let index = w2.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.latest_done().unwrap().1.cksum_kind, CKSUM_KIND_FNV);
    drop(model2);
    drop(w2.client);
    w2.daemon.shutdown();
}
