//! The learned micro-paged model catalog (ROADMAP item 3): daemon
//! opt-in, bounded daemon DRAM, and crash consistency of the
//! copy-on-write page/root publication protocol.
//!
//! Invariants under test:
//!
//! * `catalog: None` daemons never touch the catalog path — the DRAM
//!   ModelMap mirror keeps owning name resolution.
//! * Catalog-enabled daemons resolve every name through the paged
//!   on-PMem structure; the ModelMap mirror stays empty.
//! * After any crash, recovery mounts a catalog consistent with the
//!   authoritative ModelTable (orphans reclaimed, stragglers adopted).

use portus::{CatalogConfig, DaemonConfig, Index, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance, TensorMeta};
use portus_mem::GpuDevice;
use portus_pmem::{micropage, CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn catalog_cfg() -> DaemonConfig {
    DaemonConfig {
        catalog: Some(CatalogConfig::default()),
        ..DaemonConfig::default()
    }
}

fn metas(n: usize) -> Vec<TensorMeta> {
    test_spec("t", n, 4096).tensors.to_vec()
}

// ---------------------------------------------------------------------
// Daemon opt-in
// ---------------------------------------------------------------------

/// The full client lifecycle — register, checkpoint, restore, list,
/// drop — works identically with the catalog owning name resolution,
/// and the daemon's ModelMap mirror stays empty while it does.
#[test]
fn catalog_daemon_serves_full_lifecycle_with_bounded_dram() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), catalog_cfg()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    let spec = test_spec("cat-model", 4, 16 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();

    model.train_step();
    let expect = model.model_checksum();
    client.checkpoint("cat-model").unwrap();
    model.train_step(); // diverge
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), expect);

    // More registrations route through the catalog too.
    for i in 0..20 {
        let spec = test_spec(&format!("fleet-{i:03}"), 2, 4096);
        let m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        client.register_model(&m).unwrap();
    }
    assert_eq!(daemon.model_count(), 21);
    let summaries = daemon.summaries().unwrap();
    assert_eq!(summaries.len(), 21);

    client.drop_model("fleet-007").unwrap();
    assert_eq!(daemon.model_count(), 20);
    assert!(matches!(
        client.restore_version(&model, Some(999)),
        Err(PortusError::NoValidCheckpoint(_)) | Err(PortusError::Daemon(_))
    ));

    // The catalog owns resolution: its gauges are live and the DRAM
    // mirror records zero bytes. (The stats request refreshes the
    // lazily-updated gauges.)
    let snap = client.stats().unwrap();
    assert!(snap.catalog_pages >= 1);
    assert_eq!(snap.catalog_entries, 20);
    assert!(snap.catalog_cache_hits + snap.catalog_cache_misses > 0);
    assert_eq!(snap.model_map_bytes, 0);

    drop(client);
    daemon.shutdown();
}

/// Restarting a catalog daemon over the same namespace recovers every
/// model through the persisted catalog; a ModelMap-only restart of the
/// same namespace also still works (the catalog is opt-in per boot).
#[test]
fn catalog_survives_restart_and_stays_optional() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), catalog_cfg()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("persisted", 3, 8192);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();
    model.train_step();
    let expect = model.model_checksum();
    client.checkpoint("persisted").unwrap();
    drop(client);
    daemon.shutdown();

    // Catalog-enabled restart.
    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem.clone(), catalog_cfg()).unwrap();
    assert_eq!(daemon2.model_count(), 1);
    let client2 = PortusClient::connect(&daemon2, compute.clone());
    client2.register_model(&model).unwrap();
    model.train_step();
    client2.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), expect);
    drop(client2);
    daemon2.shutdown();

    // ModelMap-only restart of the same namespace: the stale catalog on
    // media is ignored, the table rebuild serves the model.
    let daemon3 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    assert_eq!(daemon3.model_count(), 1);
    let client3 = PortusClient::connect(&daemon3, compute);
    client3.register_model(&model).unwrap();
    model.train_step();
    client3.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), expect);
    drop(client3);
    daemon3.shutdown();
}

/// A daemon that recovers a pre-catalog namespace with the catalog
/// newly enabled seeds it from the rebuilt ModelTable view.
#[test]
fn enabling_the_catalog_on_an_old_namespace_seeds_from_the_table() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    // Pre-catalog era: plain daemon, several models.
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let client = PortusClient::connect(&daemon, compute.clone());
    let mut models = Vec::new();
    for i in 0..8 {
        let spec = test_spec(&format!("legacy-{i}"), 2, 4096);
        let m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        client.register_model(&m).unwrap();
        models.push(m);
    }
    drop(client);
    daemon.shutdown();

    // Upgrade boot: catalog on. Every legacy model must resolve.
    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, catalog_cfg()).unwrap();
    assert_eq!(daemon2.model_count(), 8);
    let names: Vec<String> = daemon2
        .summaries()
        .unwrap()
        .into_iter()
        .map(|s| s.name)
        .collect();
    for i in 0..8 {
        assert!(names.contains(&format!("legacy-{i}")));
    }
    let snap = ctx.metrics.snapshot();
    assert_eq!(snap.catalog_entries, 8);
    assert_eq!(snap.model_map_bytes, 0);
    daemon2.shutdown();
}

// ---------------------------------------------------------------------
// Crash consistency
// ---------------------------------------------------------------------

/// An index-level harness: a formatted namespace with the catalog
/// enabled and `n` models created through both structures (the daemon's
/// register path in miniature).
fn index_with_catalog(pmem: &std::sync::Arc<PmemDevice>, n: u64) -> Index {
    let index = Index::format(pmem.clone(), 256, 4096).unwrap();
    index.enable_catalog(&CatalogConfig::default()).unwrap();
    let m = metas(2);
    for i in 0..n {
        let name = format!("model-{i:04}");
        let mi = index.create_model(&name, &m).unwrap();
        index
            .catalog()
            .unwrap()
            .insert(index.allocator(), &name, mi.offset)
            .unwrap();
    }
    index
}

/// A crash between persisting fresh micro-pages and flipping the root
/// strands pages no root references. Recovery must mount the old root
/// intact and return the orphans to the allocator.
#[test]
fn orphaned_catalog_pages_are_reclaimed_on_recovery() {
    let ctx = SimContext::icdcs24();
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 32 << 20);
    let index = index_with_catalog(&pmem, 40);
    let live_before = index.allocator().live_allocations().unwrap().len();

    // Emulate the pre-flip half of a split: a fully persisted, valid
    // page that no directory record will ever point at.
    let orphan = index
        .allocator()
        .alloc_aligned(4096, 64, 0x0BAD_CA7A_10C0_FFEE)
        .unwrap();
    let entries = vec![
        ("orphan-a".to_string(), 1u64),
        ("orphan-b".to_string(), 2u64),
    ];
    micropage::write_page(index.device(), orphan.offset, 4096, &entries).unwrap();
    index.device().persist(orphan.offset, 4096).unwrap();
    let orphan_off = orphan.offset;
    drop(index);

    let (index2, _map) = Index::recover(pmem).unwrap();
    let live_after: Vec<u64> = index2
        .allocator()
        .live_allocations()
        .unwrap()
        .into_iter()
        .map(|a| a.offset)
        .collect();
    assert!(
        !live_after.contains(&orphan_off),
        "orphaned page must be GCed"
    );
    assert_eq!(live_after.len(), live_before);
    // The mounted catalog still serves every model.
    let cat = index2.catalog().expect("catalog remounts on recovery");
    assert_eq!(cat.len(), 40);
    for i in 0..40 {
        assert!(cat.lookup(&format!("model-{i:04}")).unwrap().is_some());
    }
}

/// A *torn* orphan — a page the crash interrupted mid-write, magic and
/// all — must not break recovery either: reachability never reads it.
#[test]
fn torn_unreferenced_page_does_not_break_recovery() {
    let ctx = SimContext::icdcs24();
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 32 << 20);
    let index = index_with_catalog(&pmem, 25);
    let torn = index
        .allocator()
        .alloc_aligned(4096, 64, 0x0BAD_CA7A_10C0_FFEE)
        .unwrap();
    // Half-written garbage, deliberately unfenced.
    pmem.write(torn.offset, &vec![0xEE; 2048]).unwrap();
    drop(index);
    for seed in [0u64, 7, 0xDEAD] {
        pmem.crash(CrashSpec::Random { seed });
        let (index2, _map) = Index::recover(pmem.clone()).unwrap();
        let cat = index2.catalog().expect("catalog remounts");
        assert_eq!(cat.len(), 25, "seed {seed}");
        for i in 0..25 {
            assert!(cat.lookup(&format!("model-{i:04}")).unwrap().is_some());
        }
    }
}

/// The root-flip crash window: a model published in the ModelTable
/// whose catalog insert never landed (crash between the two). Recovery
/// reconciles the catalog against the table and adopts the straggler;
/// the reverse window (catalog entry whose table entry was retired)
/// drops the stale name.
#[test]
fn recovery_reconciles_catalog_against_the_table() {
    let ctx = SimContext::icdcs24();
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 32 << 20);
    let index = index_with_catalog(&pmem, 10);
    let m = metas(2);

    // Straggler: in the table, not in the catalog.
    index.create_model("straggler", &m).unwrap();
    // Stale: in the catalog, then retired from the table.
    let mi = index.create_model("stale", &m).unwrap();
    index
        .catalog()
        .unwrap()
        .insert(index.allocator(), "stale", mi.offset)
        .unwrap();
    index.remove_model_at("stale", mi.offset).unwrap();
    drop(index);

    let (index2, map) = Index::recover(pmem).unwrap();
    let cat = index2.catalog().expect("catalog remounts");
    assert_eq!(
        cat.lookup("straggler").unwrap(),
        map.get("straggler"),
        "table-published model adopted by the catalog"
    );
    assert!(cat.lookup("straggler").unwrap().is_some());
    assert_eq!(cat.lookup("stale").unwrap(), None, "stale entry dropped");
    assert_eq!(cat.len(), 11);
    // Catalog and table agree entry for entry.
    let mut table: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.to_string(), v)).collect();
    table.sort();
    assert_eq!(cat.scan().unwrap(), table);
}

/// Random crash sweeps over a catalog daemon: whatever lines the crash
/// takes, recovery mounts a catalog that matches the table and keeps
/// serving checkpoints.
#[test]
fn catalog_daemon_survives_random_crashes() {
    for seed in [1u64, 42, 0xBEEF] {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
        let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), catalog_cfg()).unwrap();
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        let spec = test_spec("survivor", 3, 8192);
        let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let client = PortusClient::connect(&daemon, compute.clone());
        client.register_model(&model).unwrap();
        model.train_step();
        let expect = model.model_checksum();
        client.checkpoint("survivor").unwrap();
        drop(client);
        daemon.shutdown();
        pmem.crash(CrashSpec::Random { seed });

        let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, catalog_cfg())
            .expect("recovery must succeed");
        assert_eq!(daemon2.model_count(), 1, "seed {seed}");
        let client2 = PortusClient::connect(&daemon2, compute);
        client2.register_model(&model).unwrap();
        model.train_step();
        client2.restore(&model).unwrap();
        assert_eq!(model.model_checksum(), expect, "seed {seed}");
        drop(client2);
        daemon2.shutdown();
    }
}

/// The typed catalog-full error: a daemon whose ModelTable is exhausted
/// reports `PortusError::CatalogFull` with the formatted capacity, not
/// a stringly error.
#[test]
fn table_exhaustion_surfaces_typed_catalog_full() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let cfg = DaemonConfig {
        table_capacity: 2,
        ..catalog_cfg()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let client = PortusClient::connect(&daemon, compute);
    for i in 0..2 {
        let spec = test_spec(&format!("fits-{i}"), 2, 4096);
        let m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        client.register_model(&m).unwrap();
    }
    let spec = test_spec("overflow", 2, 4096);
    let m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    match client.register_model(&m) {
        Err(PortusError::CatalogFull { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected CatalogFull, got {other:?}"),
    }
    drop(client);
    daemon.shutdown();
}
