//! Daemon restart and recovery: the persistent index is the only
//! source of truth; ModelMap, sessions, and versions must all come
//! back from PMem alone.

use portus::{repack, DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

#[test]
fn version_numbering_continues_across_restart() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("persist", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("persist").unwrap();
    model.train_step();
    client.checkpoint("persist").unwrap();

    // Clean restart (fence everything, then power cycle).
    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let client2 = PortusClient::connect(&daemon2, compute);
    client2.register_model(&model).unwrap(); // re-register same structure
    model.train_step();
    let r = client2.checkpoint("persist").unwrap();
    assert_eq!(r.version, 3, "version numbering continues from PMem state");
    let m = &client2.list_models().unwrap()[0];
    assert_eq!(m.latest_version, Some(3));
    assert_eq!(m.valid_versions, 2);
}

#[test]
fn recovery_rebuilds_many_models_in_order() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 2 << 30);
    let client = PortusClient::connect(&daemon, compute);

    let names = ["zebra", "alpha", "mango", "delta"];
    for (i, name) in names.iter().enumerate() {
        let spec = test_spec(name, 3, 64 * 1024);
        let mut m =
            ModelInstance::materialize(&spec, &gpu, i as u64, Materialization::Owned).unwrap();
        client.register_model(&m).unwrap();
        m.train_step();
        client.checkpoint(name).unwrap();
    }
    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::LoseAll);

    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let recovered = daemon2.summaries().unwrap();
    assert_eq!(recovered.len(), 4);
    let order: Vec<&str> = recovered.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        order,
        vec!["alpha", "delta", "mango", "zebra"],
        "ModelMap is ordered"
    );
    assert!(recovered.iter().all(|m| m.latest_version == Some(1)));
}

#[test]
fn recovery_then_aggressive_repack_reclaims_crash_debris() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("debris", 3, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute.clone());
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("debris").unwrap();

    // Torn second checkpoint.
    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    index.mark_slot_active(&mi, mi.target_slot(), 2).unwrap();
    drop(client);
    daemon.shutdown();
    pmem.crash(CrashSpec::Random { seed: 7 });

    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let report = repack(&daemon2, true).unwrap();
    assert_eq!(report.reclaimed_active, 1, "crash debris reclaimed");

    // Training resumes: checkpoint v2 lands in a fresh region.
    let client2 = PortusClient::connect(&daemon2, compute);
    client2.register_model(&model).unwrap();
    model.train_step();
    let want = model.model_checksum();
    let r = client2.checkpoint("debris").unwrap();
    assert_eq!(r.version, 2);
    model.train_step();
    client2.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), want);
}

#[test]
fn dram_fallback_mode_works_but_does_not_survive_power_loss() {
    // §IV-a: "upon the absence of PMEM ... Portus can use DRAM as
    // alternatives" — same datapath, no durability.
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let dram_as_pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let cfg = DaemonConfig {
        dram_fallback: true,
        ..DaemonConfig::default()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), dram_as_pmem.clone(), cfg).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let spec = test_spec("volatile", 3, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    let want = model.model_checksum();
    client.checkpoint("volatile").unwrap();

    // Works while powered...
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), want);

    // ...but the checkpoint *data* never went through the persistence
    // path: after a power loss the Done slot's payload is gone, and the
    // integrity check catches it on restore.
    drop(client);
    daemon.shutdown();
    dram_as_pmem.crash(CrashSpec::LoseAll);
    let daemon2 =
        PortusDaemon::recover(&fabric, NodeId(1), dram_as_pmem, DaemonConfig::default()).unwrap();
    let client2 = PortusClient::connect(&daemon2, fabric.nic(NodeId(0)).unwrap());
    client2.register_model(&model).unwrap();
    let err = client2.restore(&model).unwrap_err();
    assert!(
        err.to_string().contains("integrity"),
        "volatile data must fail verification, got: {err}"
    );
}
