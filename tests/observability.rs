//! Request-level observability (PR 3): per-stage spans on the virtual
//! clock, latency histograms, the daemon `Stats` query, and the Chrome
//! trace-event export — all deterministic for a sequential request
//! stream.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, Stage, TraceOp};

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world_cfg(cfg: DaemonConfig) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

fn world() -> World {
    world_cfg(DaemonConfig::default())
}

/// Runs the fixed scenario every determinism assertion replays:
/// register, checkpoint, delta (half-clean mask), restore — with span
/// recording on. Returns the exported Chrome trace JSON.
fn traced_run() -> String {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("traced", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 11, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("traced").unwrap();
    model.train_step();
    client
        .checkpoint_delta("traced", &[true, false, true, false])
        .unwrap();
    model.train_step();
    client.restore(&model).unwrap();
    w.ctx.tracer.to_chrome_trace()
}

#[test]
fn spans_cover_every_stage_of_each_operation() {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("stages", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 7, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("stages").unwrap();
    model.train_step();
    client
        .checkpoint_delta("stages", &[true, false, true, false])
        .unwrap();
    model.train_step();
    client.restore(&model).unwrap();

    let spans = w.ctx.tracer.spans();
    let has = |op: TraceOp, stage: Stage| spans.iter().any(|s| s.op == op && s.stage == stage);
    for stage in [
        Stage::Rpc,
        Stage::DispatchWait,
        Stage::Validate,
        Stage::WqeBuild,
        Stage::DoorbellPost,
        Stage::CqDrain,
        Stage::Persist,
        Stage::Checksum,
        Stage::HeaderFlip,
        Stage::Total,
    ] {
        assert!(
            has(TraceOp::Checkpoint, stage),
            "checkpoint missing {stage}"
        );
        assert!(
            has(TraceOp::DeltaCheckpoint, stage),
            "delta missing {stage}"
        );
    }
    // The half-clean dirty mask carries two tensors device-locally.
    assert!(has(TraceOp::DeltaCheckpoint, Stage::CarryCopy));
    // Restores verify, push, and flip nothing.
    for stage in [
        Stage::Rpc,
        Stage::DispatchWait,
        Stage::Checksum,
        Stage::Validate,
        Stage::WqeBuild,
        Stage::DoorbellPost,
        Stage::CqDrain,
        Stage::Total,
    ] {
        assert!(has(TraceOp::Restore, stage), "restore missing {stage}");
    }
    assert!(!has(TraceOp::Restore, Stage::Persist));
    assert!(!has(TraceOp::Restore, Stage::HeaderFlip));
    // Every span lies on the virtual timeline and has ordered endpoints.
    for s in &spans {
        assert!(s.end >= s.start, "span {s:?} ends before it starts");
    }
}

#[test]
fn span_totals_match_the_stats_counters() {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("match", 8, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 9, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();

    let before = w.ctx.stats.snapshot();
    model.train_step();
    client.checkpoint("match").unwrap();
    let d = w.ctx.stats.snapshot().since(&before);

    let stage_total = |stage: Stage| -> u64 {
        w.ctx
            .tracer
            .spans()
            .iter()
            .filter(|s| s.op == TraceOp::Checkpoint && s.stage == stage)
            .map(|s| s.duration().as_nanos())
            .sum()
    };
    assert!(d.persist_ns > 0, "persist must cost virtual time");
    assert!(d.checksum_ns > 0, "checksum must cost virtual time");
    // The spans and the counters measure the same intervals of the
    // same virtual clock — fig13's breakdown relies on this equality.
    assert_eq!(stage_total(Stage::Persist), d.persist_ns);
    assert_eq!(stage_total(Stage::Checksum), d.checksum_ns);
}

#[test]
fn chrome_trace_is_valid_json_and_replays_bit_for_bit() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(a, b, "identical runs must export identical traces");

    let v: serde_json::Value = serde_json::from_str(&a).expect("valid JSON");
    assert_eq!(v["displayTimeUnit"], "ns");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev["ph"], "X", "complete events only");
        assert!(ev["ts"].is_number());
        assert!(ev["dur"].is_number());
        assert!(ev["name"].is_string());
    }
}

#[test]
fn tracer_off_by_default_but_histograms_always_on() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("default", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("default").unwrap();

    assert!(w.ctx.tracer.is_empty(), "span recording is opt-in");
    let snapshot = w.ctx.metrics.snapshot();
    let total = snapshot
        .stage(TraceOp::Checkpoint, Stage::Total)
        .expect("checkpoint Total histogram");
    assert_eq!(total.count, 1);
}

#[test]
fn histogram_quantiles_are_monotone() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("quant", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 4, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    for _ in 0..6 {
        model.train_step();
        client.checkpoint("quant").unwrap();
    }

    let snapshot = w.ctx.metrics.snapshot();
    let h = snapshot
        .stage(TraceOp::Checkpoint, Stage::Total)
        .expect("checkpoint Total histogram");
    assert_eq!(h.count, 6);
    assert!(h.min_ns > 0);
    assert!(h.min_ns <= h.p50());
    assert!(h.p50() <= h.p95());
    assert!(h.p95() <= h.p99());
    assert!(h.p99() <= h.max_ns);
    assert!(h.mean_ns() >= h.min_ns && h.mean_ns() <= h.max_ns);
}

/// The restore pipeline validates the registration against the index
/// BEFORE running the integrity pass, and the spans must reflect that
/// order: a `Validate` span that starts after `Checksum` would be
/// charging the wrong phase (the PR 4 fix).
#[test]
fn restore_validate_span_precedes_the_checksum_pass() {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("order", 3, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 12, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("order").unwrap();
    model.train_step();
    client.restore(&model).unwrap();

    let spans = w.ctx.tracer.spans();
    let find = |stage: Stage| {
        spans
            .iter()
            .find(|s| s.op == TraceOp::Restore && s.stage == stage)
            .cloned()
            .unwrap_or_else(|| panic!("restore missing {stage}"))
    };
    let validate = find(Stage::Validate);
    let checksum = find(Stage::Checksum);
    assert!(
        validate.end <= checksum.start,
        "validation ({:?}..{:?}) must complete before the integrity pass ({:?}..)",
        validate.start,
        validate.end,
        checksum.start
    );
}

/// A delta's carry-overs are device-local copies that finish before any
/// WQE is posted; its `CarryCopy` span must therefore end at or before
/// the first `DoorbellPost` begins.
#[test]
fn carry_copy_span_completes_before_the_doorbell() {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("carry", 4, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 13, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("carry").unwrap();
    model.train_step();
    client
        .checkpoint_delta("carry", &[true, false, true, false])
        .unwrap();

    let spans = w.ctx.tracer.spans();
    let carry = spans
        .iter()
        .find(|s| s.op == TraceOp::DeltaCheckpoint && s.stage == Stage::CarryCopy)
        .expect("delta missing CarryCopy");
    let first_doorbell = spans
        .iter()
        .filter(|s| s.op == TraceOp::DeltaCheckpoint && s.stage == Stage::DoorbellPost)
        .map(|s| s.start)
        .min()
        .expect("delta missing DoorbellPost");
    assert!(
        carry.end <= first_doorbell,
        "carry-overs are charged before the posted pulls"
    );
}

/// A delta that dies on the datapath records only the stages it truly
/// finished: the completed carry loop keeps its `CarryCopy` span, but
/// no `Persist`/`Checksum`/`HeaderFlip`/`Total` may appear for the
/// failed request.
#[test]
fn failed_delta_records_only_completed_stages() {
    let w = world_cfg(DaemonConfig {
        verb_retries: 0,
        ..DaemonConfig::default()
    });
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("dies", 4, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 14, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("dies").unwrap();

    use portus_rdma::FaultSpec;
    w.fabric.arm_faults(NodeId(1), FaultSpec::All).unwrap();
    model.train_step();
    client
        .checkpoint_delta("dies", &[true, false, true, false])
        .unwrap_err();

    let spans = w.ctx.tracer.spans();
    let has = |stage: Stage| {
        spans
            .iter()
            .any(|s| s.op == TraceOp::DeltaCheckpoint && s.stage == stage)
    };
    assert!(has(Stage::Validate));
    assert!(
        has(Stage::CarryCopy),
        "the carry loop did run to completion"
    );
    assert!(!has(Stage::Persist), "failed delta never persisted");
    assert!(!has(Stage::HeaderFlip), "failed delta never flipped");
    assert!(!has(Stage::Total), "failed requests record no Total");
}

#[test]
fn stats_query_round_trips_over_the_wire() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("wire", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 5, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("wire").unwrap();
    model.train_step();
    client.restore(&model).unwrap();

    let over_wire = client.stats().unwrap();
    assert!(!over_wire.stages.is_empty());
    assert!(over_wire.stage(TraceOp::Checkpoint, Stage::Total).is_some());
    assert!(over_wire.stage(TraceOp::Restore, Stage::Total).is_some());
    assert_eq!(
        over_wire.dispatch_queue_capacity,
        DaemonConfig::default().dispatch_queue_depth as u64
    );
    assert!(over_wire.dispatch_queue_peak >= 1, "requests went through");
    // The wire snapshot is the daemon's own snapshot.
    assert_eq!(over_wire, w.ctx.metrics.snapshot());
}

#[test]
fn bounded_dispatcher_survives_a_burst() {
    // The smallest legal queue with a single worker: every dispatch
    // backpressures against in-flight work instead of queueing
    // without bound.
    let w = world_cfg(DaemonConfig {
        dispatch_workers: 1,
        dispatch_queue_depth: 1,
        ..DaemonConfig::default()
    });
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("burst", 4, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 8, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();

    for _ in 0..4 {
        model.train_step();
        client.checkpoint("burst").unwrap();
    }
    // Async lifecycle still completes under the bounded queue.
    model.train_step();
    let saved = model.model_checksum();
    let pending = client.checkpoint_async("burst").unwrap();
    let report = client.wait_checkpoint("burst", pending).unwrap();
    assert_eq!(report.version, 5);
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), saved);

    let snapshot = w.ctx.metrics.snapshot();
    assert_eq!(snapshot.dispatch_queue_capacity, 1);
    assert!(snapshot.dispatch_queue_peak >= 1);
    assert_eq!(snapshot.dispatch_queue_depth, 0, "queue drained");
}
