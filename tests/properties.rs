//! Property-based tests over the core data structures and invariants.

// Under the offline `proptest` stub the `proptest!` bodies are
// swallowed, leaving imports and strategy helpers "unused"; with the
// real crate they are all live.
#![allow(unused_imports, dead_code)]

use proptest::collection::vec;
use proptest::prelude::*;

use portus::{name_hash, ModelMap};
use portus_dnn::{DType, TensorMeta};
use portus_format::{read_checkpoint, write_checkpoint, CheckpointEntry, PayloadSource};
use portus_mem::MemorySegment;
use portus_pmem::{CrashSpec, PmemAllocator, PmemDevice, PmemMode};
use portus_sim::SimContext;

// ---------------------------------------------------------------------
// Allocator invariants
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u16),
    Free(u8),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    vec(
        prop_oneof![
            (64u16..4096).prop_map(AllocOp::Alloc),
            any::<u8>().prop_map(AllocOp::Free),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live allocations never overlap and always fall inside the heap,
    /// whatever the alloc/free sequence; free bytes are conserved.
    #[test]
    fn allocator_never_overlaps(ops in alloc_ops()) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
        let alloc = PmemAllocator::format(dev, 0, 128, 1 << 14, 1 << 20).unwrap();
        let total_free = alloc.free_bytes();
        let mut live = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(a) = alloc.alloc(len as u64, 7) {
                        live.push(a);
                    }
                }
                AllocOp::Free(idx) => {
                    if !live.is_empty() {
                        let a = live.swap_remove(idx as usize % live.len());
                        alloc.free(&a).unwrap();
                    }
                }
            }
            // Invariants after every step.
            let mut sorted = alloc.live_allocations().unwrap();
            sorted.sort_by_key(|a| a.offset);
            let (heap_base, heap_end) = alloc.heap_bounds();
            for w in sorted.windows(2) {
                prop_assert!(w[0].offset + w[0].len <= w[1].offset, "overlap");
            }
            for a in &sorted {
                prop_assert!(a.offset >= heap_base && a.offset + a.len <= heap_end);
            }
            let used: u64 = sorted.iter().map(|a| a.len).sum();
            // Free + used never exceeds the heap (alignment padding may
            // be counted free, never double-counted used).
            prop_assert!(alloc.free_bytes() + used <= total_free + used);
            prop_assert!(alloc.free_bytes() + used >= total_free.min(alloc.free_bytes() + used));
        }
        // Freeing everything restores the single maximal extent.
        for a in live {
            alloc.free(&a).unwrap();
        }
        prop_assert_eq!(alloc.free_bytes(), total_free);
        prop_assert_eq!(alloc.largest_free_extent(), total_free);
    }

    /// Recovery after a clean shutdown reproduces exactly the live set.
    #[test]
    fn allocator_recovery_is_exact(ops in alloc_ops()) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
        let alloc = PmemAllocator::format(dev.clone(), 0, 128, 1 << 14, 1 << 20).unwrap();
        let mut live = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(a) = alloc.alloc(len as u64, u64::from(len)) {
                        live.push(a);
                    }
                }
                AllocOp::Free(idx) => {
                    if !live.is_empty() {
                        let a = live.swap_remove(idx as usize % live.len());
                        alloc.free(&a).unwrap();
                    }
                }
            }
        }
        let free_before = alloc.free_bytes();
        let mut expect = alloc.live_allocations().unwrap();
        expect.sort_by_key(|a| a.offset);
        drop(alloc);
        dev.crash(CrashSpec::LoseAll); // slot updates are persisted per-op

        let rec = PmemAllocator::recover(dev, 0).unwrap();
        let mut got = rec.live_allocations().unwrap();
        got.sort_by_key(|a| a.offset);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(rec.free_bytes(), free_before);
    }
}

// ---------------------------------------------------------------------
// ModelMap vs reference
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u64),
    Remove(u8),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The red-black ModelMap behaves exactly like BTreeMap and keeps
    /// its invariants under arbitrary operation sequences.
    #[test]
    fn model_map_matches_btreemap(ops in vec(
        prop_oneof![
            (any::<u8>(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            any::<u8>().prop_map(MapOp::Remove),
        ],
        1..200,
    )) {
        let mut ours = ModelMap::new();
        let mut reference = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let key = format!("model-{k:03}");
                    prop_assert_eq!(ours.insert(key.clone(), v), reference.insert(key, v));
                }
                MapOp::Remove(k) => {
                    let key = format!("model-{k:03}");
                    prop_assert_eq!(ours.remove(&key), reference.remove(&key));
                }
            }
            ours.check_invariants();
            prop_assert_eq!(ours.len(), reference.len());
        }
        let a: Vec<(String, u64)> = ours.iter().map(|(k, v)| (k.to_string(), v)).collect();
        let b: Vec<(String, u64)> = reference.into_iter().collect();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Container round trip
// ---------------------------------------------------------------------

fn arb_dtype() -> impl Strategy<Value = DType> {
    prop_oneof![
        Just(DType::F16),
        Just(DType::BF16),
        Just(DType::F32),
        Just(DType::F64),
        Just(DType::I32),
        Just(DType::I64),
        Just(DType::U8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// serialize → deserialize is the identity for arbitrary models.
    #[test]
    fn container_round_trips(
        model_name in "[a-z][a-z0-9_./-]{0,40}",
        tensors in vec((arb_dtype(), vec(1u64..8, 0..3), "[a-z][a-z0-9_.]{0,30}"), 0..12),
    ) {
        let entries: Vec<CheckpointEntry> = tensors
            .iter()
            .enumerate()
            .map(|(i, (dtype, shape, name))| {
                let meta = TensorMeta::new(format!("{name}{i}"), *dtype, shape.clone());
                let payload: Vec<u8> = (0..meta.size_bytes()).map(|b| (b ^ i as u64) as u8).collect();
                CheckpointEntry { meta, data: PayloadSource::Bytes(payload) }
            })
            .collect();
        let mut file = Vec::new();
        write_checkpoint(&mut file, &model_name, &entries).unwrap();
        let decoded = read_checkpoint(&file[..]).unwrap();
        prop_assert_eq!(&decoded.model_name, &model_name);
        prop_assert_eq!(decoded.tensors.len(), entries.len());
        for ((meta, data), entry) in decoded.tensors.iter().zip(&entries) {
            prop_assert_eq!(meta, &entry.meta);
            match &entry.data {
                PayloadSource::Bytes(b) => prop_assert_eq!(data, b),
                PayloadSource::Buffer(_) => unreachable!(),
            }
        }
    }

    /// Any single-byte corruption of the container is detected.
    #[test]
    fn container_detects_any_single_byte_corruption(
        flip_at in any::<prop::sample::Index>(),
        flip_with in 1u8..=255,
    ) {
        let entries = vec![CheckpointEntry {
            meta: TensorMeta::new("w", DType::F32, vec![32]),
            data: PayloadSource::Bytes((0..128u8).collect()),
        }];
        let mut file = Vec::new();
        write_checkpoint(&mut file, "m", &entries).unwrap();
        let at = flip_at.index(file.len());
        file[at] ^= flip_with;
        prop_assert!(read_checkpoint(&file[..]).is_err(), "corruption at byte {} missed", at);
    }
}

// ---------------------------------------------------------------------
// PMem persistence semantics
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Persisted ranges always survive any crash; granularity of loss
    /// for unpersisted data is whole cache lines.
    #[test]
    fn persisted_data_survives_any_crash(
        persisted in vec(any::<u8>(), 1..512),
        volatile in vec(any::<u8>(), 1..512),
        seed in any::<u64>(),
    ) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 16);
        dev.write(0, &persisted).unwrap();
        dev.persist(0, persisted.len() as u64).unwrap();
        dev.write(4096, &volatile).unwrap(); // never flushed
        dev.crash(CrashSpec::Random { seed });

        let mut got = vec![0u8; persisted.len()];
        dev.read(0, &mut got).unwrap();
        prop_assert_eq!(got, persisted);

        // Volatile data is per-line all-or-nothing.
        let mut v = vec![0u8; volatile.len()];
        dev.read(4096, &mut v).unwrap();
        for (line_idx, chunk) in volatile.chunks(64).enumerate() {
            let got_line = &v[line_idx * 64..(line_idx * 64 + chunk.len())];
            let zeros = vec![0u8; chunk.len()];
            prop_assert!(
                got_line == chunk || got_line == &zeros[..],
                "line {} torn", line_idx
            );
        }
    }
}

// ---------------------------------------------------------------------
// ModelTable / resolver sync under churn
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChurnOp {
    /// Create (or touch, if present) model `id`.
    Create(u8),
    /// Remove model `id` if present.
    Remove(u8),
}

fn churn_ops() -> impl Strategy<Value = Vec<ChurnOp>> {
    vec(
        prop_oneof![
            (0u8..24).prop_map(ChurnOp::Create),
            (0u8..24).prop_map(ChurnOp::Remove),
        ],
        1..80,
    )
}

/// Drives a create/remove churn through the persistent index plus the
/// given resolver callbacks, then checks the table and the resolver
/// agree entry-for-entry — and that a recovery-rebuilt map agrees too.
fn run_churn(ops: &[ChurnOp], with_catalog: bool) {
    use portus::{CatalogConfig, Index};
    let ctx = SimContext::icdcs24();
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 32 << 20);
    let index = Index::format(pmem.clone(), 64, 4096).unwrap();
    if with_catalog {
        index.enable_catalog(&CatalogConfig::default()).unwrap();
    }
    let metas = vec![TensorMeta::new("w", DType::F32, vec![256])];
    let mut mirror: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for op in ops {
        match op {
            ChurnOp::Create(id) => {
                let name = format!("model-{id:02}");
                if mirror.contains_key(&name) {
                    continue;
                }
                let mi = index.create_model(&name, &metas).unwrap();
                if with_catalog {
                    index
                        .catalog()
                        .unwrap()
                        .insert(index.allocator(), &name, mi.offset)
                        .unwrap();
                }
                mirror.insert(name, mi.offset);
            }
            ChurnOp::Remove(id) => {
                let name = format!("model-{id:02}");
                let Some(off) = mirror.remove(&name) else {
                    continue;
                };
                index.remove_model_at(&name, off).unwrap();
                if with_catalog {
                    index
                        .catalog()
                        .unwrap()
                        .remove(index.allocator(), &name)
                        .unwrap();
                }
            }
        }
    }
    // The live table view matches the mirror exactly.
    let mut live: Vec<u64> = index
        .live_entries()
        .unwrap()
        .into_iter()
        .map(|(_, off)| off)
        .collect();
    live.sort_unstable();
    let mut want: Vec<u64> = mirror.values().copied().collect();
    want.sort_unstable();
    assert_eq!(&live, &want);
    if with_catalog {
        let scanned = index.catalog().unwrap().scan().unwrap();
        let mirror_vec: Vec<(String, u64)> = mirror.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(scanned, mirror_vec);
    }
    // A rebuilt-from-media map agrees with the mirror too.
    drop(index);
    let (_index2, map) = Index::recover(pmem).unwrap();
    assert_eq!(map.len(), mirror.len());
    for (name, off) in &mirror {
        assert_eq!(map.get(name), Some(*off));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any create/remove churn, the DRAM resolver and the
    /// persistent ModelTable never diverge — including through the
    /// single-lookup `remove_model_at` path and a recovery rebuild.
    #[test]
    fn model_table_and_map_stay_in_sync_under_churn(ops in churn_ops()) {
        run_churn(&ops, false);
    }

    /// The same invariant with the learned catalog owning resolution.
    #[test]
    fn model_table_and_catalog_stay_in_sync_under_churn(ops in churn_ops()) {
        run_churn(&ops, true);
    }
}

// ---------------------------------------------------------------------
// Misc pure functions
// ---------------------------------------------------------------------

proptest! {
    /// The ModelTable name hash is stable and collision-resistant
    /// enough for distinct short names in practice.
    #[test]
    fn name_hash_is_deterministic(name in "[a-zA-Z0-9/._-]{1,64}") {
        prop_assert_eq!(name_hash(&name), name_hash(&name));
        prop_assert_ne!(name_hash(&name), name_hash(&format!("{name}x")));
    }

    /// Synthetic segments are pure functions of (seed, offset).
    #[test]
    fn synthetic_content_is_offset_stable(
        seed in any::<u64>(),
        offset in 0u64..4000,
        len in 1usize..64,
    ) {
        let seg = MemorySegment::synthetic(4096, seed);
        let mut full = vec![0u8; 4096];
        seg.read_at(0, &mut full).unwrap();
        let len = len.min((4096 - offset) as usize);
        let mut window = vec![0u8; len];
        seg.read_at(offset, &mut window).unwrap();
        prop_assert_eq!(&window[..], &full[offset as usize..offset as usize + len]);
    }
}
