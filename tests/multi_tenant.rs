//! Multi-tenant concurrency and QoS: several training jobs share one
//! Portus daemon (the workload CheckFreq struggles with, per §VII).
//! Each tenant gets its own connection — and therefore its own daemon
//! worker thread — and they checkpoint/restore concurrently. The QoS
//! tests (DESIGN.md §17) pin token-bucket admission, antagonist
//! isolation, and priority restore under a checkpoint storm.

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError, TenantQos, TokenBucket};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, SimDuration, SimTime};

const TENANTS: usize = 6;
const ROUNDS: usize = 4;

#[test]
fn concurrent_tenants_stay_isolated() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(100));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 512 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..TENANTS {
            let fabric = fabric.clone();
            let ctx = ctx.clone();
            let daemon = Arc::clone(&daemon);
            s.spawn(move || {
                let nic = fabric.add_nic(NodeId(t as u32));
                let gpu = GpuDevice::new(ctx, t as u32, 1 << 30);
                let spec = test_spec(&format!("tenant{t}"), 4 + t, 128 * 1024);
                let mut model =
                    ModelInstance::materialize(&spec, &gpu, t as u64, Materialization::Owned)
                        .unwrap();
                let client = PortusClient::connect(&daemon, nic);
                client.register_model(&model).unwrap();

                let mut last_state = 0;
                for round in 0..ROUNDS {
                    model.train_step();
                    last_state = model.model_checksum();
                    let r = client.checkpoint(&spec.name).unwrap();
                    assert_eq!(r.version, round as u64 + 1);
                }
                // Diverge and restore: must get this tenant's own state.
                model.train_step();
                let r = client.restore(&model).unwrap();
                assert_eq!(r.version, ROUNDS as u64);
                assert_eq!(model.model_checksum(), last_state, "tenant {t} corrupted");
            });
        }
    });

    let models = daemon.summaries().unwrap();
    assert_eq!(models.len(), TENANTS);
    for m in &models {
        assert_eq!(m.latest_version, Some(ROUNDS as u64));
        assert_eq!(m.valid_versions, 2);
    }
}

#[test]
fn async_checkpoints_from_many_tenants_interleave() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(100));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let fabric = fabric.clone();
            let ctx = ctx.clone();
            let daemon = Arc::clone(&daemon);
            s.spawn(move || {
                let nic = fabric.add_nic(NodeId(t as u32));
                let gpu = GpuDevice::new(ctx, t as u32, 1 << 30);
                let spec = test_spec(&format!("async{t}"), 6, 64 * 1024);
                let mut model =
                    ModelInstance::materialize(&spec, &gpu, t as u64, Materialization::Owned)
                        .unwrap();
                let client = PortusClient::connect(&daemon, nic);
                client.register_model(&model).unwrap();

                for _ in 0..3 {
                    // Issue async, "compute", then guard before updating.
                    client.checkpoint_async(&spec.name).unwrap();
                    std::thread::yield_now();
                    client.guard_update(&spec.name).unwrap();
                    model.train_step();
                }
                assert!(!client.has_inflight(&spec.name));
            });
        }
    });
    assert_eq!(daemon.model_count(), 4);
}

#[test]
fn same_connection_serves_multiple_models() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let client = PortusClient::connect(&daemon, nic);

    let mut models = Vec::new();
    for i in 0..3 {
        let spec = test_spec(&format!("m{i}"), 3, 64 * 1024);
        let mut model = ModelInstance::materialize(&spec, &gpu, i, Materialization::Owned).unwrap();
        client.register_model(&model).unwrap();
        model.train_step();
        client.checkpoint(&spec.name).unwrap();
        models.push(model);
    }
    let listed = client.list_models().unwrap();
    assert_eq!(listed.len(), 3);
    // ModelMap iteration is name-ordered.
    let names: Vec<&str> = listed.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["m0", "m1", "m2"]);
    for model in &models {
        let want = model.model_checksum();
        client.restore(model).unwrap();
        assert_eq!(model.model_checksum(), want);
    }
}

const MIB: u64 = 1 << 20;

/// Token buckets are a pure function of the `(amount, instant)`
/// sequence: two buckets replaying the same pseudo-random request
/// stream make bit-identical admit/shed decisions, and the admitted
/// total never exceeds budget + burst + one debt overshoot.
#[test]
fn token_bucket_decisions_replay_bit_for_bit() {
    let rate = 64 * MIB;
    let burst = 16 * MIB;
    let mut a = TokenBucket::new(rate, burst);
    let mut b = TokenBucket::new(rate, burst);
    let mut lcg = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg
    };
    let mut now = SimTime::ZERO;
    let mut admitted = 0u64;
    let mut max_amount = 0u64;
    let mut decisions = Vec::new();
    for _ in 0..10_000 {
        now += SimDuration::from_nanos(next() % 2_000_000);
        let amount = next() % (8 * MIB);
        let da = a.try_take(amount, now);
        let db = b.try_take(amount, now);
        assert_eq!(da, db, "identical streams must decide identically");
        if da.is_ok() {
            admitted += amount;
            max_amount = max_amount.max(amount);
        }
        decisions.push(da.is_ok());
    }
    let elapsed = now.saturating_since(SimTime::ZERO).as_secs_f64();
    let budget = (elapsed * rate as f64) as u64 + burst + max_amount;
    assert!(
        admitted <= budget,
        "admitted {admitted} bytes exceeds budget {budget}"
    );
    // The stream must actually exercise both outcomes.
    assert!(decisions.iter().any(|&d| d), "no request was ever admitted");
    assert!(decisions.iter().any(|&d| !d), "no request was ever shed");
}

/// The antagonist-vs-polite harness: `rounds` polite checkpoints, each
/// followed by one antagonist attempt when `antagonist` is true.
/// Returns (polite checkpoint seconds, antagonist admitted bytes,
/// antagonist throttles, whole-run elapsed).
fn antagonist_run(rounds: u64, antagonist: bool, cap: Option<u64>) -> (f64, u64, u64, f64) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let polite_nic = fabric.add_nic(NodeId(0));
    let antag_nic = fabric.add_nic(NodeId(2));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 30);
    let mut cfg = DaemonConfig::default();
    if let Some(bps) = cap {
        cfg.qos
            .tenants
            .insert("antagonist".to_string(), TenantQos::limited_bytes(bps));
    }
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    let polite_spec = test_spec("polite", 16, MIB);
    let polite_model =
        ModelInstance::materialize(&polite_spec, &gpu, 1, Materialization::Owned).unwrap();
    let polite = PortusClient::connect_as(&daemon, polite_nic, "polite");
    polite.register_model(&polite_model).unwrap();

    let antag_client = antagonist.then(|| {
        let spec = test_spec("antagonist", 16, 512 * 1024);
        let model = ModelInstance::materialize(&spec, &gpu, 2, Materialization::Owned).unwrap();
        let c = PortusClient::connect_as(&daemon, antag_nic, "antagonist");
        c.register_model(&model).unwrap();
        c
    });

    let t0 = ctx.clock.now();
    let mut polite_time = SimDuration::ZERO;
    let mut throttled = 0u64;
    for _ in 0..rounds {
        let s = ctx.clock.now();
        polite.checkpoint("polite").unwrap();
        polite_time += ctx.clock.now().saturating_since(s);
        if let Some(antag) = &antag_client {
            match antag.checkpoint("antagonist") {
                Ok(_) => {}
                Err(PortusError::Throttled { .. }) => throttled += 1,
                Err(e) => panic!("unexpected antagonist error: {e}"),
            }
        }
    }
    let elapsed = ctx.clock.now().saturating_since(t0);
    let bytes = polite
        .stats()
        .unwrap()
        .tenant("antagonist")
        .map_or(0, |t| t.admitted_bytes);
    drop(polite);
    drop(antag_client);
    daemon.shutdown();
    (
        polite_time.as_secs_f64(),
        bytes,
        throttled,
        elapsed.as_secs_f64(),
    )
}

/// An antagonist hammering a shared daemon is pinned near its byte
/// bucket while the polite tenant's own checkpoint latency stays
/// within 10% of its solo run.
#[test]
fn token_buckets_isolate_the_polite_tenant_from_an_antagonist() {
    let rounds = 60;
    let cap = 16 * MIB;
    let (solo_polite, _, _, _) = antagonist_run(rounds, false, None);
    let (capped_polite, capped_bytes, throttled, elapsed) = antagonist_run(rounds, true, Some(cap));
    let (_, uncapped_bytes, _, _) = antagonist_run(rounds, true, None);

    assert!(
        capped_polite <= solo_polite * 1.10,
        "polite tenant slowed beyond 10% of solo: {capped_polite:.3}s vs {solo_polite:.3}s"
    );
    assert!(throttled > 0, "the antagonist must actually be shed");
    // Debt-based budget: rate x horizon, plus the default burst (one
    // second of rate) and one 8 MiB op of debt overshoot.
    let budget = (elapsed * cap as f64) as u64 + cap + 8 * MIB;
    assert!(
        capped_bytes <= budget,
        "antagonist admitted {capped_bytes} bytes over a budget of {budget}"
    );
    assert!(
        uncapped_bytes >= 3 * capped_bytes,
        "removing the cap must unleash the antagonist \
         (capped {capped_bytes}, uncapped {uncapped_bytes})"
    );
}

/// Restore latency under a checkpoint storm, client-side on the
/// virtual clock. One dispatch worker, 12 checkpoints queued per
/// round, then one restore. Returns the worst observed restore.
fn storm_restore_worst_ns(priority: bool, rounds: u64) -> u64 {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let storm_nic = fabric.add_nic(NodeId(0));
    let recover_nic = fabric.add_nic(NodeId(2));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 30);
    let cfg = DaemonConfig {
        dispatch_workers: 1,
        priority_restore: priority,
        ..DaemonConfig::default()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    // Thousands of tiny tensors keep the single worker busy in host
    // time while the storm enqueues, so the restore races a loaded
    // queue rather than an already-drained one.
    let storm = PortusClient::connect_as(&daemon, storm_nic, "storm");
    let mut names = Vec::new();
    for i in 0..12 {
        let spec = test_spec(&format!("storm-{i}"), 4096, 4096);
        let model =
            ModelInstance::materialize(&spec, &gpu, 10 + i, Materialization::Owned).unwrap();
        storm.register_model(&model).unwrap();
        names.push(spec.name.clone());
    }

    let recover = PortusClient::connect_as(&daemon, recover_nic, "recover");
    let victim_spec = test_spec("victim", 64, 256 * 1024);
    let victim =
        ModelInstance::materialize(&victim_spec, &gpu, 42, Materialization::Owned).unwrap();
    recover.register_model(&victim).unwrap();
    recover.checkpoint("victim").unwrap();
    let dest = ModelInstance::materialize(&victim_spec, &gpu, 43, Materialization::Owned).unwrap();

    let mut worst = 0u64;
    let gate = names.len() as u64 - 2;
    for _ in 0..rounds {
        let pendings: Vec<_> = names
            .iter()
            .map(|n| (n.clone(), storm.checkpoint_async(n).unwrap()))
            .collect();
        // Gate on the dispatch-queue gauge before measuring: Stats
        // rides the urgent class, so the poll answers even while the
        // normal queue is saturated. Without the gate, a preempted
        // storm serve thread lets the restore race into an *empty*
        // queue and both configurations measure the same latency.
        while recover.stats().unwrap().dispatch_queue_depth < gate {
            std::thread::yield_now();
        }
        let s = ctx.clock.now();
        recover.restore(&dest).unwrap();
        worst = worst.max(ctx.clock.now().saturating_since(s).as_nanos());
        for (n, p) in pendings {
            storm.wait_checkpoint(&n, p).unwrap();
        }
    }
    drop(storm);
    drop(recover);
    daemon.shutdown();
    worst
}

/// Priority restore lanes cut the worst mid-storm restore latency by
/// at least 2x against the same storm with the lanes disabled.
#[test]
fn priority_lanes_keep_restores_fast_under_a_checkpoint_storm() {
    let on = storm_restore_worst_ns(true, 2);
    let off = storm_restore_worst_ns(false, 2);
    assert!(
        off >= 2 * on,
        "priority restore must at least halve the worst mid-storm restore \
         (on {on}ns, off {off}ns)"
    );
}
