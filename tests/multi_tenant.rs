//! Multi-tenant concurrency: several training jobs share one Portus
//! daemon (the workload CheckFreq struggles with, per §VII). Each
//! tenant gets its own connection — and therefore its own daemon worker
//! thread — and they checkpoint/restore concurrently.

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

const TENANTS: usize = 6;
const ROUNDS: usize = 4;

#[test]
fn concurrent_tenants_stay_isolated() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(100));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 512 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..TENANTS {
            let fabric = fabric.clone();
            let ctx = ctx.clone();
            let daemon = Arc::clone(&daemon);
            s.spawn(move || {
                let nic = fabric.add_nic(NodeId(t as u32));
                let gpu = GpuDevice::new(ctx, t as u32, 1 << 30);
                let spec = test_spec(&format!("tenant{t}"), 4 + t, 128 * 1024);
                let mut model =
                    ModelInstance::materialize(&spec, &gpu, t as u64, Materialization::Owned)
                        .unwrap();
                let client = PortusClient::connect(&daemon, nic);
                client.register_model(&model).unwrap();

                let mut last_state = 0;
                for round in 0..ROUNDS {
                    model.train_step();
                    last_state = model.model_checksum();
                    let r = client.checkpoint(&spec.name).unwrap();
                    assert_eq!(r.version, round as u64 + 1);
                }
                // Diverge and restore: must get this tenant's own state.
                model.train_step();
                let r = client.restore(&model).unwrap();
                assert_eq!(r.version, ROUNDS as u64);
                assert_eq!(model.model_checksum(), last_state, "tenant {t} corrupted");
            });
        }
    });

    let models = daemon.summaries().unwrap();
    assert_eq!(models.len(), TENANTS);
    for m in &models {
        assert_eq!(m.latest_version, Some(ROUNDS as u64));
        assert_eq!(m.valid_versions, 2);
    }
}

#[test]
fn async_checkpoints_from_many_tenants_interleave() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(100));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let fabric = fabric.clone();
            let ctx = ctx.clone();
            let daemon = Arc::clone(&daemon);
            s.spawn(move || {
                let nic = fabric.add_nic(NodeId(t as u32));
                let gpu = GpuDevice::new(ctx, t as u32, 1 << 30);
                let spec = test_spec(&format!("async{t}"), 6, 64 * 1024);
                let mut model =
                    ModelInstance::materialize(&spec, &gpu, t as u64, Materialization::Owned)
                        .unwrap();
                let client = PortusClient::connect(&daemon, nic);
                client.register_model(&model).unwrap();

                for _ in 0..3 {
                    // Issue async, "compute", then guard before updating.
                    client.checkpoint_async(&spec.name).unwrap();
                    std::thread::yield_now();
                    client.guard_update(&spec.name).unwrap();
                    model.train_step();
                }
                assert!(!client.has_inflight(&spec.name));
            });
        }
    });
    assert_eq!(daemon.model_count(), 4);
}

#[test]
fn same_connection_serves_multiple_models() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let nic = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    let client = PortusClient::connect(&daemon, nic);

    let mut models = Vec::new();
    for i in 0..3 {
        let spec = test_spec(&format!("m{i}"), 3, 64 * 1024);
        let mut model =
            ModelInstance::materialize(&spec, &gpu, i, Materialization::Owned).unwrap();
        client.register_model(&model).unwrap();
        model.train_step();
        client.checkpoint(&spec.name).unwrap();
        models.push(model);
    }
    let listed = client.list_models().unwrap();
    assert_eq!(listed.len(), 3);
    // ModelMap iteration is name-ordered.
    let names: Vec<&str> = listed.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["m0", "m1", "m2"]);
    for model in &models {
        let want = model.model_checksum();
        client.restore(model).unwrap();
        assert_eq!(model.model_checksum(), want);
    }
}
