//! Online PMem space management (PR 4): the `OutOfSpace`
//! repack-and-retry loop, the typed error when nothing is reclaimable,
//! version monotonicity across collapsed checkpoints, watermark-driven
//! background compaction, and repack-vs-traffic races.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use portus::{repack, DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::{SimContext, Stage, TraceOp};

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world_cfg(cfg: DaemonConfig) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

fn world() -> World {
    world_cfg(DaemonConfig::default())
}

/// Consumes the allocator's free space with filler allocations (tagged
/// so they can never be mistaken for a model's regions), leaving less
/// than one 4 KiB page free.
fn fill_heap(w: &World) {
    let alloc = w.daemon.index().allocator();
    for chunk in [1u64 << 20, 64 << 10, 4 << 10] {
        while alloc.alloc_aligned(chunk, 4096, 0xF1FF).is_ok() {}
    }
    assert!(alloc.largest_free_extent() < 4096, "heap filled");
}

/// Out-of-space with reclaimable garbage on the device: the checkpoint
/// succeeds after the daemon's automatic repack-and-retry, without the
/// client ever seeing an error.
#[test]
fn oos_checkpoint_recovers_by_reclaiming_a_finished_job() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());

    // "tight" checkpoints once, completes, and has its idle slot
    // reclaimed — its next checkpoint must re-allocate a region.
    let tight_spec = test_spec("tight", 2, 128 * 1024);
    let mut tight =
        ModelInstance::materialize(&tight_spec, &w.gpu, 1, Materialization::Owned).unwrap();
    client.register_model(&tight).unwrap();
    tight.train_step();
    client.checkpoint("tight").unwrap();
    client.mark_complete("tight").unwrap();
    let pre = repack(&w.daemon, false).unwrap();
    assert_eq!(pre.reclaimed_slots, 1, "idle slot of the complete job");

    // "hog" is a bigger finished job whose non-latest version is the
    // only reclaimable garbage left once the heap fills up.
    let hog_spec = test_spec("hog", 4, 512 * 1024);
    let mut hog = ModelInstance::materialize(&hog_spec, &w.gpu, 2, Materialization::Owned).unwrap();
    client.register_model(&hog).unwrap();
    hog.train_step();
    client.checkpoint("hog").unwrap();
    hog.train_step();
    client.checkpoint("hog").unwrap();
    client.mark_complete("hog").unwrap();

    fill_heap(&w);

    // The next "tight" checkpoint needs a fresh region: the allocation
    // fails, the inline repack pass reclaims hog's non-latest version,
    // and the retry succeeds — invisibly to the client.
    let before = w.ctx.stats.snapshot();
    tight.train_step();
    let want = tight.model_checksum();
    let r = client.checkpoint("tight").unwrap();
    assert_eq!(r.version, 2);
    let d = w.ctx.stats.snapshot().since(&before);
    assert_eq!(d.oos_recoveries, 1, "recovered via repack-retry");
    assert!(d.repack_passes >= 1);
    assert!(d.reclaimed_slots >= 1);
    assert!(d.reclaimed_bytes >= hog_spec.total_bytes());

    // The recovered checkpoint restores bit-for-bit.
    tight.train_step();
    client.restore(&tight).unwrap();
    assert_eq!(tight.model_checksum(), want);
}

/// Out-of-space with nothing reclaimable: the client gets the typed
/// error carrying the allocator's real view, and the model's previous
/// complete version survives untouched.
#[test]
fn oos_with_nothing_reclaimable_surfaces_the_typed_error() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("stuck", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    let want = model.model_checksum();
    client.checkpoint("stuck").unwrap();
    client.mark_complete("stuck").unwrap();
    let pre = repack(&w.daemon, false).unwrap();
    assert_eq!(pre.reclaimed_slots, 1, "idle slot reclaimed");

    fill_heap(&w);

    // The retry checkpoint needs a region but the heap holds only
    // live data and fillers: the repack-retry loop comes up empty and
    // the daemon reports exactly what the allocator saw.
    model.train_step();
    let err = client.checkpoint("stuck").unwrap_err();
    let alloc = w.daemon.index().allocator();
    match err {
        PortusError::OutOfSpace {
            needed,
            free,
            largest_extent,
        } => {
            assert_eq!(needed, spec.total_bytes().max(4096));
            assert_eq!(free, alloc.free_bytes());
            assert_eq!(largest_extent, alloc.largest_free_extent());
            assert!(free < needed, "exhaustion, accurately reported");
        }
        other => panic!("expected OutOfSpace, got {other}"),
    }

    // v1 is untouched and still restorable.
    model.train_step();
    let r = client.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), want);
    let _ = w.ctx;
}

/// Version monotonicity (PR 4 bugfix): a version number issued to a
/// checkpoint that later collapsed must never be reused. The failed
/// delta here was v3; the next checkpoint must be v4, not a second v3.
#[test]
fn version_numbers_stay_monotone_across_a_collapsed_checkpoint() {
    let w = world_cfg(DaemonConfig {
        verb_retries: 0, // one failed WQE is terminal — forces the rollback
        ..DaemonConfig::default()
    });
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("mono", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 5, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("mono").unwrap();
    model.train_step();
    client.checkpoint("mono").unwrap();

    // Delta v3 lands partial data (first of two pull runs) and dies:
    // the target slot collapses but keeps version 3 as a high-water
    // mark.
    w.fabric.arm_faults(NodeId(1), FaultSpec::Nth(2)).unwrap();
    model.train_step();
    let err = client
        .checkpoint_delta("mono", &[true, false, true, false])
        .unwrap_err();
    assert!(
        matches!(err, PortusError::DatapathFailed { .. }),
        "got {err}"
    );
    w.fabric.clear_faults(NodeId(1)).unwrap();

    // The next checkpoint must NOT reuse 3 — a restore that later finds
    // "v3" must never be ambiguous about which v3 it got.
    model.train_step();
    let want = model.model_checksum();
    let r = client.checkpoint("mono").unwrap();
    assert_eq!(r.version, 4, "3 was burned by the collapsed delta");
    model.train_step();
    let restored = client.restore(&model).unwrap();
    assert_eq!(restored.version, 4);
    assert_eq!(model.model_checksum(), want);
    let m = &client.list_models().unwrap()[0];
    assert_eq!(m.latest_version, Some(4));
    let _ = w.ctx;
}

/// Concurrent aggressive repacking against fault-injected checkpoint
/// traffic: no pass may error (divergence would mean a live region was
/// freed behind a running operation), and every model must still
/// checkpoint and restore bit-for-bit afterwards.
#[test]
fn concurrent_repack_and_faulty_traffic_never_free_live_regions() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let names = ["race-a", "race-b"];
    let mut models: Vec<ModelInstance> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let spec = test_spec(name, 3, 128 * 1024);
            let m =
                ModelInstance::materialize(&spec, &w.gpu, 10 + i as u64, Materialization::Owned)
                    .unwrap();
            client.register_model(&m).unwrap();
            m
        })
        .collect();
    for (m, name) in models.iter_mut().zip(names) {
        m.train_step();
        client.checkpoint(name).unwrap();
    }

    // Roughly one in seven verbs fails; retries are on (default), so
    // some operations survive and some collapse their slot.
    w.fabric
        .arm_faults(
            NodeId(1),
            FaultSpec::Ratio {
                permille: 150,
                seed: 42,
            },
        )
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let repacker = {
        let daemon = Arc::clone(&w.daemon);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reports = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                reports.push(repack(&daemon, true));
            }
            reports
        })
    };

    let mut last_version = [0u64; 2];
    for _round in 0..10 {
        for (i, (m, name)) in models.iter_mut().zip(names).enumerate() {
            m.train_step();
            match client.checkpoint(name) {
                Ok(r) => {
                    assert!(
                        r.version > last_version[i],
                        "{name}: version went backwards under the storm"
                    );
                    last_version[i] = r.version;
                }
                Err(PortusError::DatapathFailed { .. }) => {}
                Err(other) => panic!("{name}: unexpected error {other}"),
            }
            let _ = client.restore(m); // may fail under faults; touches no state
        }
    }
    stop.store(true, Ordering::Relaxed);
    let reports = repacker.join().unwrap();
    assert!(!reports.is_empty());
    for report in reports {
        let report = report.expect("no pass may diverge or fail");
        // Nothing was ever reclaimable: no job completed and every
        // Active slot belonged to this (live) incarnation.
        assert_eq!(report.reclaimed_slots, 0, "a live region was freed");
    }
    w.fabric.clear_faults(NodeId(1)).unwrap();

    // The storm over, every model still checkpoints and restores
    // bit-for-bit.
    for (i, (m, name)) in models.iter_mut().zip(names).enumerate() {
        m.train_step();
        let want = m.model_checksum();
        let r = client.checkpoint(name).unwrap();
        assert!(r.version > last_version[i]);
        m.train_step();
        client.restore(m).unwrap();
        assert_eq!(m.model_checksum(), want, "{name} restores bit-for-bit");
    }
}

/// Drives one complete job and waits (real time) for the daemon's
/// space machinery to reclaim its idle slot without any explicit
/// `repack` call — the watermark trigger and, when `low > 0`, the
/// inline pass must do it on their own.
fn await_autonomous_reclaim(cfg: DaemonConfig) {
    let w = world_cfg(cfg);
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("auto", 3, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 6, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("auto").unwrap();
    model.train_step();
    client.checkpoint("auto").unwrap();
    // The mark-complete reply is the trigger: free space sits below the
    // (absurdly high) watermark, so a pass must follow.
    client.mark_complete("auto").unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let s = w.ctx.stats.snapshot();
        if s.reclaimed_slots >= 1 && s.repack_passes >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no autonomous reclaim within 10s: {s:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The gauges were refreshed by the pass and went over the wire.
    let snapshot = client.stats().unwrap();
    assert!(snapshot.repack_passes >= 1);
    assert!(snapshot.reclaimed_slots >= 1);
    assert!(snapshot.reclaimed_bytes >= spec.total_bytes());
    assert!(snapshot.pmem_free_bytes > 0);
    assert!(snapshot.pmem_used_bytes > 0);
    assert!(snapshot.pmem_largest_free_extent <= snapshot.pmem_free_bytes);
    // The connection worker exits on disconnect; only then can
    // shutdown join it (and the background repacker).
    drop(client);
    w.daemon.shutdown();
}

#[test]
fn high_watermark_wakes_the_background_repacker() {
    await_autonomous_reclaim(DaemonConfig {
        space_high_watermark: u64::MAX,
        ..DaemonConfig::default()
    });
}

#[test]
fn low_watermark_repacks_inline_on_the_dispatch_worker() {
    await_autonomous_reclaim(DaemonConfig {
        space_low_watermark: u64::MAX,
        space_high_watermark: u64::MAX,
        ..DaemonConfig::default()
    });
}

/// The space observability surface: repack passes record a
/// `TraceOp::Repack` span and histogram entry, the stats snapshot
/// carries the allocator gauges, and `portusctl space` renders them.
#[test]
fn repack_spans_gauges_and_portusctl_space_view() {
    let w = world();
    w.ctx.tracer.enable();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("viewed", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 7, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("viewed").unwrap();
    client.mark_complete("viewed").unwrap();
    let report = repack(&w.daemon, false).unwrap();
    assert_eq!(report.reclaimed_slots, 1);
    assert_eq!(report.skipped_models, 0);

    // The pass left a span on the tracer and a histogram entry.
    let spans = w.ctx.tracer.spans();
    assert!(
        spans
            .iter()
            .any(|s| s.op == TraceOp::Repack && s.stage == Stage::Repack),
        "repack pass must be traced"
    );
    let snapshot = client.stats().unwrap();
    assert!(snapshot.stage(TraceOp::Repack, Stage::Repack).is_some());
    assert_eq!(snapshot.repack_passes, 1);
    assert_eq!(snapshot.reclaimed_slots, 1);
    assert!(snapshot.reclaimed_bytes >= spec.total_bytes());
    assert_eq!(
        snapshot.pmem_free_bytes,
        w.daemon.index().allocator().free_bytes()
    );
    assert_eq!(
        snapshot.pmem_used_bytes,
        w.daemon.index().allocator().used_bytes()
    );

    // The operator view renders the same numbers.
    let view = portus::portusctl::render_space(&snapshot);
    assert!(view.contains("free bytes"));
    assert!(view.contains(&snapshot.pmem_free_bytes.to_string()));
    assert!(view.contains("reclaimed slots"));
    assert!(view.contains("fragmentation"));
}
