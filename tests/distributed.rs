//! Distributed model-parallel checkpointing (§V-E): a model sharded
//! Megatron-style across many GPUs/nodes, every shard checkpointing to
//! one daemon, and the whole model reassembling exactly on restore.

use std::sync::Arc;

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{shard_model, zoo, Materialization, ModelInstance, ParallelConfig};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

#[test]
fn sharded_model_checkpoints_and_reassembles() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let storage = NodeId(100);
    fabric.add_nic(storage);
    // A scaled GPT: same Megatron layout, small hidden size.
    let spec = zoo::gpt_with("gpt-test", 128, 4, 1024);
    let cfg = ParallelConfig::grid(2, 2);
    let shards = shard_model(&spec, cfg);
    assert_eq!(shards.len(), 4);

    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        4 * spec.total_bytes() + (64 << 20),
    );
    let daemon = PortusDaemon::start(&fabric, storage, pmem, DaemonConfig::default()).unwrap();

    // One GPU + client per shard, two shards per "node".
    let mut tenants = Vec::new();
    for (rank, shard) in shards.iter().enumerate() {
        let node = NodeId((rank / 2) as u32);
        let nic = fabric.nic(node).unwrap_or_else(|_| fabric.add_nic(node));
        let gpu = GpuDevice::new(ctx.clone(), rank as u32, 2 << 30);
        let mut model =
            ModelInstance::materialize(&shard.spec, &gpu, rank as u64, Materialization::Owned)
                .unwrap();
        let client = PortusClient::connect(&daemon, nic);
        client.register_model(&model).unwrap();
        model.train_step();
        tenants.push((client, model, Arc::clone(&gpu)));
    }

    // Concurrent checkpoint of all shards (async issue + wait).
    let pending: Vec<_> = tenants
        .iter()
        .map(|(client, model, _)| {
            let name = model.spec().name.clone();
            let p = client.checkpoint_async(&name).unwrap();
            (client, name, p)
        })
        .collect();
    let mut total = 0u64;
    for (client, name, p) in pending {
        total += client.wait_checkpoint(&name, p).unwrap().bytes;
    }
    assert_eq!(
        total,
        spec.total_bytes(),
        "shards cover the whole model exactly"
    );

    // Record per-shard state, diverge everything, restore everything.
    let want: Vec<u64> = tenants.iter().map(|(_, m, _)| m.model_checksum()).collect();
    for (_, model, _) in tenants.iter_mut() {
        model.train_step();
    }
    for ((client, model, _), want) in tenants.iter().zip(&want) {
        client.restore(model).unwrap();
        assert_eq!(model.model_checksum(), *want, "shard {}", model.spec().name);
    }

    // Daemon view: one MIndex per shard.
    let stored = daemon.summaries().unwrap();
    assert_eq!(stored.len(), 4);
    for m in &stored {
        assert!(m.name.starts_with("gpt-test/pp"));
        assert_eq!(m.latest_version, Some(1));
    }
}

#[test]
fn shard_pulls_serialize_on_the_storage_nic() {
    // Concurrent shard pulls contend for the storage node's single
    // RNIC: total virtual time must be near the serialized sum of
    // transfers (the effect that caps distributed Portus at the BAR
    // rate in Fig. 14).
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let storage = NodeId(100);
    fabric.add_nic(storage);
    let spec = zoo::gpt_with("contend", 128, 2, 512);
    let shards = shard_model(&spec, ParallelConfig::grid(4, 1));
    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        4 * spec.total_bytes() + (64 << 20),
    );
    let daemon = PortusDaemon::start(&fabric, storage, pmem, DaemonConfig::default()).unwrap();

    let mut tenants = Vec::new();
    for (rank, shard) in shards.iter().enumerate() {
        let nic = fabric.add_nic(NodeId(rank as u32));
        let gpu = GpuDevice::new(ctx.clone(), rank as u32, 1 << 30);
        let model =
            ModelInstance::materialize(&shard.spec, &gpu, rank as u64, Materialization::Owned)
                .unwrap();
        let client = PortusClient::connect(&daemon, nic);
        client.register_model(&model).unwrap();
        tenants.push((client, model));
    }

    let nic = fabric.nic(storage).unwrap();
    let busy_before = nic.resource().total_busy_time();
    let pending: Vec<_> = tenants
        .iter()
        .map(|(client, model)| {
            let name = model.spec().name.clone();
            let p = client.checkpoint_async(&name).unwrap();
            (client, name, p)
        })
        .collect();
    for (client, name, p) in pending {
        client.wait_checkpoint(&name, p).unwrap();
    }
    let busy = nic.resource().total_busy_time() - busy_before;
    // Every shard's bytes went through the one NIC.
    let min_transfer = portus_sim::SimDuration::from_secs_f64(
        spec.total_bytes() as f64 / ctx.model.gpu_bar_read_bw,
    );
    assert!(
        busy >= min_transfer,
        "storage NIC busy {busy} < serialized transfer bound {min_transfer}"
    );
}

#[test]
fn data_parallel_replicas_checkpoint_once() {
    // dp > 1 replicates state; only tensor x pipeline shards checkpoint.
    let spec = zoo::gpt_with("dp", 64, 2, 256);
    let cfg = ParallelConfig {
        tensor: 2,
        pipeline: 2,
        data: 2,
    };
    assert_eq!(cfg.gpu_count(), 8);
    assert_eq!(cfg.checkpointing_shards(), 4);
    let shards = shard_model(&spec, cfg);
    assert_eq!(shards.len(), 4, "replicas do not multiply shards");
    let total: u64 = shards.iter().map(|s| s.spec.total_bytes()).sum();
    assert_eq!(total, spec.total_bytes());
}
