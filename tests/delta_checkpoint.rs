//! Incremental (delta) checkpointing — the Check-N-Run-inspired
//! extension (DESIGN.md §9): dirty tensors cross the fabric, clean ones
//! are carried over device-locally, and the result is a complete
//! version with unchanged crash-consistency guarantees.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

const LAYERS: usize = 8;
const LAYER_BYTES: u64 = 128 * 1024;

struct World {
    ctx: SimContext,
    fabric: Fabric,
    pmem: std::sync::Arc<PmemDevice>,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world() -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    World {
        ctx,
        fabric,
        pmem,
        daemon,
        gpu,
    }
}

#[test]
fn delta_pulls_only_dirty_tensors() {
    let w = world();
    let spec = test_spec("delta", LAYERS, LAYER_BYTES);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 1, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();

    // Full baseline version (v1).
    model.train_step();
    model.take_dirty();
    client.checkpoint("delta").unwrap();

    // Sparse update: only tensors 2 and 5 change.
    model.train_step_sparse(&[2, 5]);
    let dirty = model.take_dirty();
    assert_eq!(dirty.iter().filter(|&&d| d).count(), 2);
    let want = model.model_checksum();

    let net_before = w.ctx.stats.snapshot();
    let report = client.checkpoint_delta("delta", &dirty).unwrap();
    let net = w.ctx.stats.snapshot().since(&net_before);

    assert_eq!(report.version, 2);
    assert_eq!(report.pulled_bytes, 2 * LAYER_BYTES);
    assert_eq!(report.copied_bytes, (LAYERS as u64 - 2) * LAYER_BYTES);
    assert_eq!(
        net.bytes_over_network,
        2 * LAYER_BYTES,
        "only dirty bytes may cross the fabric"
    );
    assert_eq!(net.rdma_one_sided_ops, 2);

    // The delta version is a complete, restorable snapshot.
    model.train_step();
    let restore = client.restore(&model).unwrap();
    assert_eq!(restore.version, 2);
    assert_eq!(model.model_checksum(), want);
}

#[test]
fn first_delta_without_history_pulls_everything() {
    let w = world();
    let spec = test_spec("cold", 4, LAYER_BYTES);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 2, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();
    model.train_step_sparse(&[0]);
    let dirty = model.take_dirty(); // only tensor 0 flagged...
    let report = client.checkpoint_delta("cold", &dirty).unwrap();
    // ...but with no previous version everything must be pulled.
    assert_eq!(report.pulled_bytes, spec.total_bytes());
    assert_eq!(report.copied_bytes, 0);
    let _ = w.ctx;
}

#[test]
fn alternating_full_and_delta_versions_restore_correctly() {
    let w = world();
    let spec = test_spec("mix", LAYERS, LAYER_BYTES);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();

    let mut states = Vec::new();
    for round in 0..6u64 {
        if round % 2 == 0 {
            model.train_step();
            model.take_dirty();
            states.push(model.model_checksum());
            client.checkpoint("mix").unwrap();
        } else {
            model.train_step_sparse(&[(round as usize) % LAYERS]);
            let dirty = model.take_dirty();
            states.push(model.model_checksum());
            client.checkpoint_delta("mix", &dirty).unwrap();
        }
    }
    model.train_step();
    let r = client.restore(&model).unwrap();
    assert_eq!(r.version, 6);
    assert_eq!(model.model_checksum(), *states.last().unwrap());
}

#[test]
fn delta_mask_length_mismatch_is_rejected() {
    let w = world();
    let spec = test_spec("badmask", 4, 4096);
    let model = ModelInstance::materialize(&spec, &w.gpu, 4, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();
    client.checkpoint("badmask").unwrap();
    let err = client
        .checkpoint_delta("badmask", &[true, false])
        .unwrap_err();
    assert!(err.to_string().contains("mismatch"), "got: {err}");
}

#[test]
fn torn_delta_checkpoint_preserves_the_previous_version() {
    let w = world();
    let spec = test_spec("deltacrash", 4, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 5, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();
    model.train_step();
    model.take_dirty();
    let want = model.model_checksum();
    client.checkpoint("deltacrash").unwrap();

    // A delta checkpoint is in flight (slot Active, partial garbage)
    // when the power fails.
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let target = mi.target_slot();
    index.mark_slot_active(&mi, target, 2).unwrap();
    w.pmem
        .write(mi.slots[target].data_off, &[0xAB; 32 * 1024])
        .unwrap();
    drop(client);
    w.daemon.shutdown();
    w.pmem.crash(CrashSpec::Random { seed: 99 });

    let daemon2 = PortusDaemon::recover(
        &w.fabric,
        NodeId(1),
        w.pmem.clone(),
        DaemonConfig::default(),
    )
    .unwrap();
    let client2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    client2.register_model(&model).unwrap();
    model.train_step();
    let r = client2.restore(&model).unwrap();
    assert_eq!(r.version, 1);
    assert_eq!(model.model_checksum(), want);
}
