//! The discrete-event core, end to end: deterministic replay of a
//! seeded multi-daemon fleet run (identical event orders, span
//! streams, and metrics snapshots), and the max-not-sum regression —
//! overlapping operations on independent resources complete at the
//! *max* of their durations, never the sum a shared additive clock
//! would charge.

use portus_cluster::{run_fleet, FleetConfig, Policy};
use portus_dnn::IterationProfile;
use portus_sim::{CostModel, Engine, Resource, SimDuration, SimTime, Stage, TraceOp};

fn fleet(daemons: usize, clients: usize, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::uniform(
        daemons,
        clients,
        portus_cluster::JobShape::single(2_000_000_000, 400),
        IterationProfile::from_total(SimDuration::from_millis(350)),
        Policy::PortusAsync { every: 10 },
        60,
    );
    cfg.seed = seed;
    cfg.start_jitter = SimDuration::from_millis(200);
    cfg.progress_every = Some(SimDuration::from_secs(2));
    cfg
}

#[test]
fn seeded_fleet_runs_replay_bit_for_bit() {
    let m = CostModel::icdcs24();
    let cfg = fleet(3, 9, 0xC0FFEE);
    let a = run_fleet(&m, &cfg);
    let b = run_fleet(&m, &cfg);
    // The whole observable surface replays: event order, span stream,
    // aggregated histograms, progress samples, and per-client results.
    assert_eq!(a.events, b.events, "event order must replay");
    assert_eq!(a.spans, b.spans, "span stream must replay");
    assert_eq!(a.metrics, b.metrics, "metrics snapshot must replay");
    assert_eq!(a.progress, b.progress, "progress reports must replay");
    assert_eq!(a.clients, b.clients, "client outcomes must replay");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events_run, b.events_run);
    assert!(!a.events.is_empty() && !a.spans.is_empty());
    assert!(!a.progress.is_empty(), "progress sampling must be active");

    // A different seed shifts the start jitter and therefore the
    // interleaving.
    let c = run_fleet(&m, &fleet(3, 9, 0xBEEF));
    assert_ne!(a.events, c.events, "seed must matter");
}

#[test]
fn concurrent_equal_ops_on_independent_resources_finish_at_max_not_sum() {
    // N equal-cost operations on N independent resources, all submitted
    // at the same instant, must complete at ~1x the single-op duration.
    let op = SimDuration::from_secs(3);
    for n in [2usize, 4, 8] {
        let mut eng = Engine::new();
        let resources: Vec<Resource> = (0..n).map(|i| Resource::new(&format!("nic-{i}"))).collect();
        let ends: Vec<SimTime> = resources
            .iter()
            .map(|r| r.schedule(SimTime::ZERO, op).end)
            .collect();
        let finish = ends.iter().copied().max().unwrap();
        assert_eq!(
            finish,
            SimTime::ZERO + op,
            "{n} overlapping ops must finish at max (1x), not sum ({n}x)"
        );
        // Drive completion events through the engine: the engine clock
        // lands on the max, not the sum.
        for end in ends {
            eng.schedule_at(end, |_| {});
        }
        eng.run();
        assert_eq!(eng.now(), SimTime::ZERO + op);
        assert_eq!(eng.events_run(), n as u64);
    }

    // The same N ops contending for ONE resource serialize to exactly
    // the sum — contention still costs what it should.
    let r = Resource::new("nic");
    let mut last = SimTime::ZERO;
    for _ in 0..4 {
        last = r.schedule(SimTime::ZERO, op).end;
    }
    assert_eq!(last, SimTime::ZERO + op * 4);
}

#[test]
fn fleet_of_identical_clients_on_private_daemons_matches_solo_makespan() {
    // The same regression at the fleet level: N identical training
    // clients, each with a private daemon, finish in the solo client's
    // makespan (true overlap), while N clients on one daemon take
    // longer (NIC contention) but far less than N x solo (compute still
    // overlaps; only the pulls serialize).
    let m = CostModel::icdcs24();
    let solo = {
        let mut cfg = fleet(1, 1, 7);
        cfg.start_jitter = SimDuration::ZERO;
        run_fleet(&m, &cfg)
    };
    let spread = {
        let mut cfg = fleet(6, 6, 7);
        cfg.start_jitter = SimDuration::ZERO;
        run_fleet(&m, &cfg)
    };
    assert_eq!(
        spread.makespan, solo.makespan,
        "independent clients must overlap perfectly"
    );
    let packed = {
        let mut cfg = fleet(1, 6, 7);
        cfg.start_jitter = SimDuration::ZERO;
        run_fleet(&m, &cfg)
    };
    assert!(
        packed.makespan > spread.makespan,
        "contention must cost time"
    );
    assert!(
        packed.makespan < solo.makespan * 3,
        "serialization is limited to the contended NIC, got {} vs solo {}",
        packed.makespan,
        solo.makespan
    );
    // Queueing shows up in the checkpoint latency distribution.
    let p99 = |r: &portus_cluster::FleetResult| {
        r.metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .expect("fleet runs record checkpoint spans")
            .p99()
    };
    assert!(p99(&packed) > p99(&spread));
}
