//! Higher-order equivalence properties across the system.

// Under the offline `proptest` stub the `proptest!` bodies are
// swallowed, leaving every import and strategy helper "unused"; with
// the real crate they are all live.
#![allow(unused_imports, dead_code)]

use proptest::collection::vec;
use proptest::prelude::*;

use portus::{DaemonConfig, Index, PortusClient, PortusDaemon};
use portus_dnn::{DType, Materialization, ModelInstance, ModelSpec, TensorMeta};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

// ---------------------------------------------------------------------
// Delta checkpoints are semantically identical to full checkpoints.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any sequence of sparse updates and any dirty-mask usage, a
    /// delta checkpoint restores to exactly the state a full checkpoint
    /// would have captured.
    #[test]
    fn delta_checkpoint_equals_full_checkpoint(
        touch_sets in vec(vec(0usize..6, 0..4), 1..5),
    ) {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx, 0, 1 << 30);
        let spec = portus_dnn::test_spec("equiv", 6, 32 * 1024);
        let mut model =
            ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).unwrap();

        // Base version.
        model.train_step();
        model.take_dirty();
        client.checkpoint("equiv").unwrap();

        for touches in &touch_sets {
            model.train_step_sparse(touches);
            let dirty = model.take_dirty();
            let expected = model.model_checksum();
            client.checkpoint_delta("equiv", &dirty).unwrap();

            // Restore into a scratch-diverged model and compare.
            model.train_step();
            client.restore(&model).unwrap();
            prop_assert_eq!(model.model_checksum(), expected);
        }
    }
}

// ---------------------------------------------------------------------
// PMem: bulk (page) and fine-grained (line) writes are equivalent.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing a blob as one bulk store or as many small stores yields
    /// identical coherent reads and identical durable content after
    /// persist — the page-coalescing optimization must be invisible.
    #[test]
    fn pmem_bulk_and_piecewise_writes_are_equivalent(
        data in vec(any::<u8>(), 1..(3 * 4096)),
        base in 0u64..4096,
        piece in 1usize..257,
    ) {
        let ctx = SimContext::icdcs24();
        let bulk = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 16);
        let fine = PmemDevice::new(ctx, PmemMode::DevDax, 1 << 16);

        bulk.write(base, &data).unwrap();
        for (i, chunk) in data.chunks(piece).enumerate() {
            fine.write(base + (i * piece) as u64, chunk).unwrap();
        }

        let mut a = vec![0u8; data.len()];
        let mut b = vec![0u8; data.len()];
        bulk.read(base, &mut a).unwrap();
        fine.read(base, &mut b).unwrap();
        prop_assert_eq!(&a, &b);

        bulk.persist(base, data.len() as u64).unwrap();
        fine.persist(base, data.len() as u64).unwrap();
        bulk.crash(portus_pmem::CrashSpec::LoseAll);
        fine.crash(portus_pmem::CrashSpec::LoseAll);
        bulk.read(base, &mut a).unwrap();
        fine.read(base, &mut b).unwrap();
        prop_assert_eq!(&a, &data);
        prop_assert_eq!(&b, &data);
    }
}

// ---------------------------------------------------------------------
// Persistent index round-trips arbitrary metadata.
// ---------------------------------------------------------------------

fn arb_meta(i: usize) -> impl Strategy<Value = TensorMeta> {
    (
        prop_oneof![
            Just(DType::F16),
            Just(DType::F32),
            Just(DType::I64),
            Just(DType::U8)
        ],
        vec(1u64..64, 0..4),
        "[a-z][a-z0-9_.]{0,40}",
    )
        .prop_map(move |(dtype, shape, name)| TensorMeta::new(format!("{name}.{i}"), dtype, shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `create_model` → `load_mindex` is the identity on tensor
    /// metadata, for arbitrary dtypes/shapes/names.
    #[test]
    fn index_round_trips_arbitrary_models(
        metas in (1usize..12).prop_flat_map(|n| {
            (0..n).map(arb_meta).collect::<Vec<_>>()
        }),
        name in "[a-z][a-z0-9-]{0,40}",
    ) {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 64 << 20);
        let index = Index::format(dev, 16, 128).unwrap();
        let spec = ModelSpec::new(name.clone(), metas.clone());
        let mi = index.create_model(&name, &spec.tensors).unwrap();
        let loaded = index.load_mindex(mi.offset).unwrap();
        prop_assert_eq!(&loaded.name, &name);
        prop_assert_eq!(loaded.tensors.len(), metas.len());
        for (rec, meta) in loaded.tensors.iter().zip(&metas) {
            prop_assert_eq!(&rec.meta, meta);
        }
        // Relative offsets tile the payload exactly.
        let mut cursor = 0u64;
        for rec in &loaded.tensors {
            prop_assert_eq!(rec.rel_off, cursor);
            cursor += rec.meta.size_bytes();
        }
        prop_assert_eq!(cursor, loaded.total_bytes);
    }
}
