//! The repacking tool (§III-D2, Fig. 7): reclaiming PMem from finished
//! jobs and from checkpoints that crashed mid-write.

use portus::{repack, DaemonConfig, PortusClient, PortusDaemon, PortusError, SlotState};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::SimContext;

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world() -> World {
    world_cfg(DaemonConfig::default())
}

fn world_cfg(cfg: DaemonConfig) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

#[test]
fn finished_jobs_shrink_to_one_version() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("finished", 4, 512 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 1, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("finished").unwrap();
    model.train_step();
    let final_state = model.model_checksum();
    client.checkpoint("finished").unwrap();
    client.mark_complete("finished").unwrap();

    let free_before = w.daemon.index().allocator().free_bytes();
    let report = repack(&w.daemon, false).unwrap();
    assert_eq!(report.scanned_models, 1);
    assert_eq!(report.reclaimed_slots, 1, "the non-latest version goes");
    assert!(report.freed_bytes >= spec.total_bytes());
    assert!(w.daemon.index().allocator().free_bytes() > free_before);

    // The latest version still restores bit-for-bit.
    model.train_step();
    let r = client.restore(&model).unwrap();
    assert_eq!(r.version, 2);
    assert_eq!(model.model_checksum(), final_state);
    let _ = w.ctx;
}

#[test]
fn crashed_active_slots_need_a_recovery_epoch_to_be_reclaimed() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 2 << 30);
    let spec = test_spec("crashy", 3, 256 * 1024);
    let mut model = ModelInstance::materialize(&spec, &gpu, 2, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("crashy").unwrap();

    // Simulate a checkpoint that died mid-pull: slot marked Active.
    let index = daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let target = mi.target_slot();
    index.mark_slot_active(&mi, target, 2).unwrap();

    // The safe pass leaves running jobs alone...
    let safe = repack(&daemon, false).unwrap();
    assert_eq!(safe.reclaimed_slots, 0);
    // ...and so does the aggressive pass on the LIVE daemon: the slot
    // went Active during this incarnation, so for all the repacker
    // knows a pull is in flight into it. The recovery-epoch gate
    // refuses to treat it as crash debris.
    let live = repack(&daemon, true).unwrap();
    assert_eq!(live.reclaimed_slots, 0, "live Active slots are fenced");

    // After a restart the slot is provably stale — no thread of the
    // new incarnation can be writing into it — and the aggressive
    // pass reclaims it.
    drop(client);
    daemon.shutdown();
    let daemon2 = PortusDaemon::recover(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let aggressive = repack(&daemon2, true).unwrap();
    assert_eq!(aggressive.reclaimed_slots, 1);
    assert_eq!(aggressive.reclaimed_active, 1);

    // The slot header is detached; the Done version is untouched.
    let mi2 = daemon2.index().load_mindex(off).unwrap();
    assert_eq!(mi2.slots[target].state, SlotState::Empty);
    assert_eq!(mi2.slots[target].data_off, 0);
    assert_eq!(mi2.latest_done().unwrap().1.version, 1);
}

#[test]
fn checkpointing_resumes_after_repack_by_reallocating_the_slot() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("resume", 3, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("resume").unwrap();

    // Reclaim the idle second slot (job-complete path), then resume
    // training: the daemon must lazily re-allocate a region.
    client.mark_complete("resume").unwrap();
    let report = repack(&w.daemon, false).unwrap();
    assert_eq!(report.reclaimed_slots, 1);

    model.train_step();
    let state2 = model.model_checksum();
    let r = client.checkpoint("resume").unwrap();
    assert_eq!(r.version, 2);
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), state2);
}

/// A partially-failed delta collapses a previously-Done slot (PR 2's
/// rollback): the header empties but keeps its region, the safe repack
/// pass leaves the collapsed slot of the still-running job alone, the
/// next checkpoint re-uses the region through `ensure_slot_region`,
/// and only job completion lets repack reclaim the non-latest version.
#[test]
fn collapsed_slot_survives_safe_repack_and_is_reused() {
    let w = world_cfg(DaemonConfig {
        verb_retries: 0, // one failed WQE is terminal — forces the rollback
        ..DaemonConfig::default()
    });
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("collapse", 4, 128 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 5, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("collapse").unwrap();
    model.train_step();
    client.checkpoint("collapse").unwrap();

    // Delta v3 targets the slot holding Done v1. Dirty tensors 0 and 2
    // become two non-adjacent pull runs; fail the second verb so run 1
    // lands data in the slot (collapse, not revert) and the delta dies.
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let target = index.load_mindex(off).unwrap().target_slot();
    w.fabric.arm_faults(NodeId(1), FaultSpec::Nth(2)).unwrap();
    model.train_step();
    let err = client
        .checkpoint_delta("collapse", &[true, false, true, false])
        .unwrap_err();
    assert!(
        matches!(err, PortusError::DatapathFailed { .. }),
        "got {err}"
    );

    let mi = index.load_mindex(off).unwrap();
    assert_eq!(mi.slots[target].state, SlotState::Empty, "collapsed");
    assert_ne!(mi.slots[target].data_off, 0, "collapse keeps the region");
    assert_eq!(mi.latest_done().unwrap().1.version, 2, "v2 untouched");

    // Safe repack must not touch the collapsed slot of a running job.
    let safe = repack(&w.daemon, false).unwrap();
    assert_eq!(safe.reclaimed_slots, 0);
    assert_eq!(safe.freed_bytes, 0);

    // Training resumes: the next checkpoint re-attaches the kept
    // region (no fresh allocation needed) and restores bit-for-bit.
    w.fabric.clear_faults(NodeId(1)).unwrap();
    model.train_step();
    let state3 = model.model_checksum();
    let r = client.checkpoint("collapse").unwrap();
    // Not 3: the collapsed delta burned version 3, and the monotonicity
    // invariant (PR 4) forbids reissuing it.
    assert_eq!(r.version, 4);
    let mi3 = index.load_mindex(off).unwrap();
    assert_eq!(mi3.slots[target].state, SlotState::Done);
    assert_eq!(
        mi3.slots[target].data_off, mi.slots[target].data_off,
        "ensure_slot_region re-used the collapsed slot's region"
    );
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), state3);

    // Only once the job completes does repack reclaim the non-latest
    // version's region.
    client.mark_complete("collapse").unwrap();
    let done = repack(&w.daemon, false).unwrap();
    assert_eq!(done.reclaimed_slots, 1);
    assert!(done.freed_bytes >= spec.total_bytes());
    let _ = w.ctx;
}

/// A slot header pointing at a region the allocator has no record of is
/// index/allocator divergence: repack must stop with the typed error
/// and leave the header untouched — not clear it and report
/// `freed_bytes = 0` as if the pass had succeeded.
#[test]
fn repack_surfaces_allocator_divergence_and_preserves_the_header() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("diverge", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 6, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("diverge").unwrap();
    client.mark_complete("diverge").unwrap();

    // Corrupt the metadata: free the allocation backing the idle slot
    // behind the allocator's back, so the header now points at a
    // region the allocator no longer knows.
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let (victim, hdr) = mi
        .slots
        .iter()
        .enumerate()
        .find(|(_, h)| h.state == SlotState::Empty && h.data_off != 0)
        .expect("idle slot with a region");
    let stale_off = hdr.data_off;
    let alloc = index
        .allocator()
        .live_allocations()
        .unwrap()
        .into_iter()
        .find(|a| a.offset == stale_off)
        .expect("backing allocation");
    index.allocator().free(&alloc).unwrap();

    let err = repack(&w.daemon, false).unwrap_err();
    match err {
        PortusError::AllocatorDivergence {
            model,
            slot,
            data_off,
        } => {
            assert_eq!(model, "diverge");
            assert_eq!(slot, victim);
            assert_eq!(data_off, stale_off);
        }
        other => panic!("expected AllocatorDivergence, got {other}"),
    }
    // The corrupt header survives as evidence.
    let after = index.load_mindex(off).unwrap();
    assert_eq!(after.slots[victim].data_off, stale_off);
    assert_eq!(after.slots[victim].state, SlotState::Empty);
    let _ = w.ctx;
}

#[test]
fn repack_is_idempotent() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("idem", 2, 64 * 1024);
    let mut model = ModelInstance::materialize(&spec, &w.gpu, 4, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("idem").unwrap();
    client.mark_complete("idem").unwrap();

    let first = repack(&w.daemon, true).unwrap();
    assert!(first.reclaimed_slots > 0);
    let second = repack(&w.daemon, true).unwrap();
    assert_eq!(second.reclaimed_slots, 0, "nothing left to reclaim");
    assert_eq!(second.freed_bytes, 0);
}
