//! The repacking tool (§III-D2, Fig. 7): reclaiming PMem from finished
//! jobs and from checkpoints that crashed mid-write.

use portus::{repack, DaemonConfig, PortusClient, PortusDaemon, SlotState};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world() -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World { ctx, fabric, daemon, gpu }
}

#[test]
fn finished_jobs_shrink_to_one_version() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("finished", 4, 512 * 1024);
    let mut model =
        ModelInstance::materialize(&spec, &w.gpu, 1, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("finished").unwrap();
    model.train_step();
    let final_state = model.model_checksum();
    client.checkpoint("finished").unwrap();
    client.mark_complete("finished").unwrap();

    let free_before = w.daemon.index().allocator().free_bytes();
    let report = repack(&w.daemon, false).unwrap();
    assert_eq!(report.scanned_models, 1);
    assert_eq!(report.reclaimed_slots, 1, "the non-latest version goes");
    assert!(report.freed_bytes >= spec.total_bytes());
    assert!(w.daemon.index().allocator().free_bytes() > free_before);

    // The latest version still restores bit-for-bit.
    model.train_step();
    let r = client.restore(&model).unwrap();
    assert_eq!(r.version, 2);
    assert_eq!(model.model_checksum(), final_state);
    let _ = w.ctx;
}

#[test]
fn crashed_active_slots_are_reclaimed_with_the_aggressive_pass() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("crashy", 3, 256 * 1024);
    let mut model =
        ModelInstance::materialize(&spec, &w.gpu, 2, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("crashy").unwrap();

    // Simulate a checkpoint that died mid-pull: slot marked Active.
    let index = w.daemon.index();
    let (_, off) = index.live_entries().unwrap()[0];
    let mi = index.load_mindex(off).unwrap();
    let target = mi.target_slot();
    index.mark_slot_active(&mi, target, 2).unwrap();

    // The safe pass leaves running jobs alone...
    let safe = repack(&w.daemon, false).unwrap();
    assert_eq!(safe.reclaimed_slots, 0);
    // ...the post-recovery pass reclaims the collapsed slot.
    let aggressive = repack(&w.daemon, true).unwrap();
    assert_eq!(aggressive.reclaimed_slots, 1);
    assert_eq!(aggressive.reclaimed_active, 1);

    // The slot header is detached; the Done version is untouched.
    let mi2 = index.load_mindex(off).unwrap();
    assert_eq!(mi2.slots[target].state, SlotState::Empty);
    assert_eq!(mi2.slots[target].data_off, 0);
    assert_eq!(mi2.latest_done().unwrap().1.version, 1);
}

#[test]
fn checkpointing_resumes_after_repack_by_reallocating_the_slot() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("resume", 3, 128 * 1024);
    let mut model =
        ModelInstance::materialize(&spec, &w.gpu, 3, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("resume").unwrap();

    // Reclaim the idle second slot (job-complete path), then resume
    // training: the daemon must lazily re-allocate a region.
    client.mark_complete("resume").unwrap();
    let report = repack(&w.daemon, false).unwrap();
    assert_eq!(report.reclaimed_slots, 1);

    model.train_step();
    let state2 = model.model_checksum();
    let r = client.checkpoint("resume").unwrap();
    assert_eq!(r.version, 2);
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), state2);
}

#[test]
fn repack_is_idempotent() {
    let w = world();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    let spec = test_spec("idem", 2, 64 * 1024);
    let mut model =
        ModelInstance::materialize(&spec, &w.gpu, 4, Materialization::Owned).unwrap();
    client.register_model(&model).unwrap();
    model.train_step();
    client.checkpoint("idem").unwrap();
    client.mark_complete("idem").unwrap();

    let first = repack(&w.daemon, true).unwrap();
    assert!(first.reclaimed_slots > 0);
    let second = repack(&w.daemon, true).unwrap();
    assert_eq!(second.reclaimed_slots, 0, "nothing left to reclaim");
    assert_eq!(second.freed_bytes, 0);
}
