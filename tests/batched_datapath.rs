//! The posted, coalesced daemon datapath: many-tensor checkpoints must
//! ride few gather WQEs under one doorbell and beat the unbatched
//! per-verb cost bound, while the structural zero-copy counters keep
//! seeing one movement per tensor.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId, MAX_SGE};
use portus_sim::{MemoryKind, SimContext};

const LAYERS: usize = 128;
const LAYER_BYTES: u64 = 64 * 1024;

#[test]
fn batched_checkpoint_beats_the_unbatched_per_verb_bound() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("batched", LAYERS, LAYER_BYTES);
    let model = ModelInstance::materialize(&spec, &gpu, 9, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();

    let before = ctx.stats.snapshot();
    let report = client.checkpoint("batched").unwrap();
    let d = ctx.stats.snapshot().since(&before);

    // The WQE view: 128 contiguous tensors coalesce into ceil(128/16)
    // gather verbs, all posted under a single doorbell.
    let wqes = (LAYERS as u64).div_ceil(MAX_SGE as u64);
    assert_eq!(
        d.posted_verbs, wqes,
        "{} tensors -> {} gather WQEs",
        LAYERS, wqes
    );
    assert_eq!(d.doorbell_batches, 1, "one doorbell for the whole pull");
    assert_eq!(d.coalesced_verbs, wqes);
    assert_eq!(d.coalesced_bytes, spec.total_bytes());

    // The structural view is unchanged: still exactly one data movement
    // and one logical one-sided op per tensor, nothing serialized.
    assert_eq!(d.rdma_one_sided_ops, LAYERS as u64);
    assert_eq!(d.data_copies, LAYERS as u64);
    assert_eq!(d.serializations, 0);

    // The pull phase (daemon elapsed minus the measured persist and
    // checksum phases) must beat the cost of issuing one blocking verb
    // per tensor — the pre-batching datapath — by a clear margin: the
    // batch pays the per-verb base latency once and moves MAX_SGE-sized
    // messages at the far end of the bandwidth ramp.
    let unbatched_ns: u64 = (0..LAYERS)
        .map(|_| {
            ctx.model
                .rdma_read(LAYER_BYTES, MemoryKind::GpuHbm)
                .as_nanos()
        })
        .sum();
    let pull_ns = report
        .elapsed
        .as_nanos()
        .saturating_sub(d.persist_ns + d.checksum_ns);
    assert!(
        pull_ns * 4 < unbatched_ns * 3,
        "batched pull ({pull_ns} ns) must be < 75% of the unbatched \
         per-verb bound ({unbatched_ns} ns)"
    );

    assert_eq!(report.bytes, spec.total_bytes());
    drop(client);
    daemon.shutdown();
}

#[test]
fn restore_pushes_are_batched_too() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("rbatch", 32, LAYER_BYTES);
    let model = ModelInstance::materialize(&spec, &gpu, 5, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    client.checkpoint("rbatch").unwrap();

    let before = ctx.stats.snapshot();
    client.restore(&model).unwrap();
    let d = ctx.stats.snapshot().since(&before);

    assert_eq!(d.posted_verbs, 2, "32 tensors -> 2 scatter WQEs");
    assert_eq!(d.doorbell_batches, 1);
    assert_eq!(d.coalesced_bytes, spec.total_bytes());
    assert_eq!(d.rdma_one_sided_ops, 32, "structural view intact");
    drop(client);
    daemon.shutdown();
}

#[test]
fn delta_gaps_break_coalescing_runs() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
    let spec = test_spec("gaps", 8, LAYER_BYTES);
    let model = ModelInstance::materialize(&spec, &gpu, 6, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();
    client.checkpoint("gaps").unwrap();

    // Alternating dirty mask: every pulled tensor is isolated between
    // carried-over neighbours, so no two may share a WQE.
    let alternating: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    let before = ctx.stats.snapshot();
    let delta = client.checkpoint_delta("gaps", &alternating).unwrap();
    let d = ctx.stats.snapshot().since(&before);
    assert_eq!(delta.pulled_bytes, 4 * LAYER_BYTES);
    assert_eq!(
        d.posted_verbs, 4,
        "one single-segment WQE per isolated tensor"
    );
    assert_eq!(d.doorbell_batches, 1, "still one doorbell");
    assert_eq!(d.coalesced_verbs, 0, "nothing to coalesce across gaps");

    // A contiguous dirty prefix coalesces back into one gather WQE.
    let prefix: Vec<bool> = (0..8).map(|i| i < 4).collect();
    let before = ctx.stats.snapshot();
    let delta = client.checkpoint_delta("gaps", &prefix).unwrap();
    let d = ctx.stats.snapshot().since(&before);
    assert_eq!(delta.pulled_bytes, 4 * LAYER_BYTES);
    assert_eq!(d.posted_verbs, 1, "adjacent dirty tensors share one WQE");
    assert_eq!(d.coalesced_verbs, 1);
    assert_eq!(d.coalesced_bytes, 4 * LAYER_BYTES);
    drop(client);
    daemon.shutdown();
}
