//! Checkpointing weights *plus optimizer state* ("save parameters and
//! optimizer states", §I) through the full stack: the checkpoint
//! content expansion of `portus_dnn::CheckpointContent` flows through
//! registration, pull, and restore like any other tensors.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, CheckpointContent, Materialization, ModelInstance, OptimizerKind};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

#[test]
fn adam_state_triples_the_checkpoint_and_round_trips() {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    let weights_only = test_spec("adam-job", 5, 256 * 1024);
    let full = CheckpointContent::WithOptimizer(OptimizerKind::Adam).expand(&weights_only);
    assert_eq!(full.total_bytes(), 3 * weights_only.total_bytes());

    let mut model = ModelInstance::materialize(&full, &gpu, 11, Materialization::Owned).unwrap();
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).unwrap();

    model.train_step(); // weights and moments all advance
    let want = model.model_checksum();
    let report = client.checkpoint("adam-job").unwrap();
    assert_eq!(report.bytes, 3 * weights_only.total_bytes());

    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(
        model.model_checksum(),
        want,
        "optimizer moments restored too"
    );

    // The daemon's index carries the expanded tensor list.
    let summary = &client.list_models().unwrap()[0];
    assert_eq!(summary.layers, 15); // 5 weights + 10 Adam moments
}

#[test]
fn momentum_state_checkpoints_with_correct_cost_scaling() {
    // Timing shape: checkpointing with momentum (2x payload) costs ~2x
    // the weights-only checkpoint — no serialization-style fixed blowup.
    let run = |content: CheckpointContent| {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx, 0, 1 << 30);
        let spec = content.expand(&test_spec("mom", 8, 512 * 1024));
        let model = ModelInstance::materialize(&spec, &gpu, 3, Materialization::Owned).unwrap();
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).unwrap();
        client.checkpoint("mom").unwrap().elapsed
    };
    let weights = run(CheckpointContent::WeightsOnly);
    let with_momentum = run(CheckpointContent::WithOptimizer(OptimizerKind::SgdMomentum));
    let ratio = with_momentum.as_secs_f64() / weights.as_secs_f64();
    assert!(
        (1.8..2.2).contains(&ratio),
        "2x payload => ~2x time, got {ratio:.2}"
    );
}
