//! The Trainer integration layer under realistic workloads: sparse
//! (recommendation-style) updates with incremental checkpoints, and a
//! full train → crash → recover → train lifecycle.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{test_spec, IterationProfile, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, SimDuration};
use portus_train::{TrainPolicy, Trainer};

const LAYERS: usize = 10;
const LAYER_BYTES: u64 = 128 * 1024;

struct World {
    fabric: Fabric,
    pmem: std::sync::Arc<PmemDevice>,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world() -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem.clone(), DaemonConfig::default()).unwrap();
    let gpu = GpuDevice::new(ctx, 0, 1 << 30);
    World {
        fabric,
        pmem,
        daemon,
        gpu,
    }
}

fn make_trainer(w: &World, name: &str, policy: TrainPolicy) -> Trainer {
    let model = ModelInstance::materialize(
        &test_spec(name, LAYERS, LAYER_BYTES),
        &w.gpu,
        7,
        Materialization::Owned,
    )
    .unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    Trainer::new(
        client,
        model,
        IterationProfile::from_total(SimDuration::from_millis(40)),
        policy,
    )
    .unwrap()
}

#[test]
fn sparse_workload_makes_delta_carry_over_pay() {
    // A recommendation-style workload: each "iteration" only touches a
    // couple of embedding shards. The Trainer's delta policy should
    // move only those over the fabric. We drive the model's sparse API
    // directly through the client (the Trainer's train_step is dense),
    // mirroring what an embedding-aware integration would do.
    let w = world();
    let mut model = ModelInstance::materialize(
        &test_spec("sparse-rec", LAYERS, LAYER_BYTES),
        &w.gpu,
        3,
        Materialization::Owned,
    )
    .unwrap();
    let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
    client.register_model(&model).unwrap();

    // Full first version.
    model.train_step();
    model.take_dirty();
    client.checkpoint("sparse-rec").unwrap();

    let mut total_pulled = 0u64;
    let mut total_carried = 0u64;
    for round in 0..5usize {
        // Touch two "embedding shards" per round.
        model.train_step_sparse(&[round % LAYERS, (round + 3) % LAYERS]);
        let dirty = model.take_dirty();
        let r = client.checkpoint_delta("sparse-rec", &dirty).unwrap();
        total_pulled += r.pulled_bytes;
        total_carried += r.copied_bytes;
    }
    assert_eq!(
        total_pulled,
        5 * 2 * LAYER_BYTES,
        "only touched shards cross"
    );
    assert_eq!(total_carried, 5 * (LAYERS as u64 - 2) * LAYER_BYTES);

    // Final state restores exactly.
    let want = model.model_checksum();
    model.train_step();
    client.restore(&model).unwrap();
    assert_eq!(model.model_checksum(), want);
}

#[test]
fn trainer_survives_daemon_crash_and_recovery() {
    let w = world();
    let mut t = make_trainer(&w, "lifecycle", TrainPolicy::Sync { every: 10 });
    t.run(25).unwrap();
    let durable_step = t.last_durable_step();
    assert_eq!(durable_step, 20);

    // Storage-node power failure + daemon restart on the same PMem.
    w.pmem.crash(CrashSpec::Random { seed: 1234 });
    let daemon2 = PortusDaemon::recover(
        &w.fabric,
        NodeId(1),
        w.pmem.clone(),
        DaemonConfig::default(),
    )
    .unwrap();

    // The trainer reconnects (new client), re-registers, recovers.
    let model = ModelInstance::materialize(
        &test_spec("lifecycle", LAYERS, LAYER_BYTES),
        &w.gpu,
        7,
        Materialization::Owned,
    )
    .unwrap();
    let client2 = PortusClient::connect(&daemon2, w.fabric.nic(NodeId(0)).unwrap());
    let mut t2 = Trainer::new(
        client2,
        model,
        IterationProfile::from_total(SimDuration::from_millis(40)),
        TrainPolicy::Sync { every: 10 },
    )
    .unwrap();
    // Fresh trainer doesn't know history; recover() pulls the durable
    // version and reports zero *local* loss (its own counter was 0).
    t2.recover().unwrap();
    // Training continues; versions keep increasing on the daemon.
    t2.run(10).unwrap();
    let listed = daemon2.summaries().unwrap();
    assert_eq!(
        listed[0].latest_version,
        Some(3),
        "v1, v2 pre-crash, v3 after"
    );
}

#[test]
fn async_trainer_matches_sync_final_state() {
    let w = world();
    let mut sync = make_trainer(&w, "twin-sync", TrainPolicy::Sync { every: 4 });
    let mut asy = make_trainer(&w, "twin-async", TrainPolicy::Async { every: 4 });
    sync.run(16).unwrap();
    asy.run(16).unwrap();
    // Identical seeds + identical update sequences => identical states.
    assert_eq!(sync.model().model_checksum(), asy.model().model_checksum());
    assert_eq!(sync.last_durable_step(), asy.last_durable_step());
}

#[test]
fn two_trainers_share_one_daemon() {
    let w = world();
    let mut a = make_trainer(&w, "share-a", TrainPolicy::Sync { every: 3 });
    let mut b = make_trainer(&w, "share-b", TrainPolicy::Delta { every: 3 });
    a.run(9).unwrap();
    b.run(9).unwrap();
    let names: Vec<String> = w
        .daemon
        .summaries()
        .unwrap()
        .into_iter()
        .map(|m| m.name)
        .collect();
    assert_eq!(names, vec!["share-a", "share-b"]);
}
