/root/repo/target/release/examples/portusctl_tour-26df3c870dac1e66.d: examples/portusctl_tour.rs

/root/repo/target/release/examples/portusctl_tour-26df3c870dac1e66: examples/portusctl_tour.rs

examples/portusctl_tour.rs:
