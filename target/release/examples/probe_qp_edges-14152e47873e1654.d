/root/repo/target/release/examples/probe_qp_edges-14152e47873e1654.d: examples/probe_qp_edges.rs

/root/repo/target/release/examples/probe_qp_edges-14152e47873e1654: examples/probe_qp_edges.rs

examples/probe_qp_edges.rs:
