/root/repo/target/release/examples/quickstart-a4d0b0b544b2343f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a4d0b0b544b2343f: examples/quickstart.rs

examples/quickstart.rs:
