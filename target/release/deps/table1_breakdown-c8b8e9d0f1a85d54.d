/root/repo/target/release/deps/table1_breakdown-c8b8e9d0f1a85d54.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/release/deps/table1_breakdown-c8b8e9d0f1a85d54: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
