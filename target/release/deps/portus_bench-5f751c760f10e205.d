/root/repo/target/release/deps/portus_bench-5f751c760f10e205.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/release/deps/libportus_bench-5f751c760f10e205.rlib: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/release/deps/libportus_bench-5f751c760f10e205.rmeta: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
