/root/repo/target/release/deps/fig13_breakdown-09e7128d1aae46ae.d: crates/bench/src/bin/fig13_breakdown.rs

/root/repo/target/release/deps/fig13_breakdown-09e7128d1aae46ae: crates/bench/src/bin/fig13_breakdown.rs

crates/bench/src/bin/fig13_breakdown.rs:
