/root/repo/target/release/deps/rand-6e39103d64bfa353.d: .local-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-6e39103d64bfa353.rlib: .local-deps/rand/src/lib.rs

/root/repo/target/release/deps/librand-6e39103d64bfa353.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
