/root/repo/target/release/deps/portus_dnn-0cae1529e3111927.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libportus_dnn-0cae1529e3111927.rlib: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/release/deps/libportus_dnn-0cae1529e3111927.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
