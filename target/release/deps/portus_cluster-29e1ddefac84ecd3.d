/root/repo/target/release/deps/portus_cluster-29e1ddefac84ecd3.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libportus_cluster-29e1ddefac84ecd3.rlib: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libportus_cluster-29e1ddefac84ecd3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/event.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
