/root/repo/target/release/deps/portus_pmem-6849caf03fdf5d2f.d: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

/root/repo/target/release/deps/libportus_pmem-6849caf03fdf5d2f.rlib: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

/root/repo/target/release/deps/libportus_pmem-6849caf03fdf5d2f.rmeta: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

crates/pmem/src/lib.rs:
crates/pmem/src/alloc.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/image.rs:
crates/pmem/src/typed.rs:
