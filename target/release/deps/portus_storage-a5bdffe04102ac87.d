/root/repo/target/release/deps/portus_storage-a5bdffe04102ac87.d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

/root/repo/target/release/deps/libportus_storage-a5bdffe04102ac87.rlib: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

/root/repo/target/release/deps/libportus_storage-a5bdffe04102ac87.rmeta: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

crates/storage/src/lib.rs:
crates/storage/src/backend.rs:
crates/storage/src/beegfs.rs:
crates/storage/src/checkpointer.rs:
crates/storage/src/error.rs:
crates/storage/src/local.rs:
