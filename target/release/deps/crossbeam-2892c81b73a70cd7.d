/root/repo/target/release/deps/crossbeam-2892c81b73a70cd7.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-2892c81b73a70cd7.rlib: .local-deps/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-2892c81b73a70cd7.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
