/root/repo/target/release/deps/advisor-202a01e4a1a576a0.d: crates/bench/src/bin/advisor.rs

/root/repo/target/release/deps/advisor-202a01e4a1a576a0: crates/bench/src/bin/advisor.rs

crates/bench/src/bin/advisor.rs:
