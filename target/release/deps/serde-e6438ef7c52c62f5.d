/root/repo/target/release/deps/serde-e6438ef7c52c62f5.d: .local-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e6438ef7c52c62f5.rlib: .local-deps/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e6438ef7c52c62f5.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
