/root/repo/target/release/deps/portus_format-89930b389f679acd.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/release/deps/libportus_format-89930b389f679acd.rlib: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/release/deps/libportus_format-89930b389f679acd.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
