/root/repo/target/release/deps/portus_train-393491375c79bb26.d: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/release/deps/libportus_train-393491375c79bb26.rlib: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/release/deps/libportus_train-393491375c79bb26.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
