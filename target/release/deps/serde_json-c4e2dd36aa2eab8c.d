/root/repo/target/release/deps/serde_json-c4e2dd36aa2eab8c.d: .local-deps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c4e2dd36aa2eab8c.rlib: .local-deps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-c4e2dd36aa2eab8c.rmeta: .local-deps/serde_json/src/lib.rs

.local-deps/serde_json/src/lib.rs:
