/root/repo/target/release/deps/space_sweep-a226719a7262cd30.d: crates/bench/src/bin/space_sweep.rs

/root/repo/target/release/deps/space_sweep-a226719a7262cd30: crates/bench/src/bin/space_sweep.rs

crates/bench/src/bin/space_sweep.rs:
