/root/repo/target/release/deps/parking_lot-ff79f7fb71f61b7b.d: .local-deps/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-ff79f7fb71f61b7b.rlib: .local-deps/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-ff79f7fb71f61b7b.rmeta: .local-deps/parking_lot/src/lib.rs

.local-deps/parking_lot/src/lib.rs:
