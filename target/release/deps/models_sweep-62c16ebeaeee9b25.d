/root/repo/target/release/deps/models_sweep-62c16ebeaeee9b25.d: crates/bench/src/bin/models_sweep.rs

/root/repo/target/release/deps/models_sweep-62c16ebeaeee9b25: crates/bench/src/bin/models_sweep.rs

crates/bench/src/bin/models_sweep.rs:
