/root/repo/target/release/deps/portus_mem-d3e050b6f4815e00.d: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/release/deps/libportus_mem-d3e050b6f4815e00.rlib: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/release/deps/libportus_mem-d3e050b6f4815e00.rmeta: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/buffer.rs:
crates/mem/src/error.rs:
crates/mem/src/gpu.rs:
crates/mem/src/host.rs:
crates/mem/src/segment.rs:
