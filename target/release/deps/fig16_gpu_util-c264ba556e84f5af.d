/root/repo/target/release/deps/fig16_gpu_util-c264ba556e84f5af.d: crates/bench/src/bin/fig16_gpu_util.rs

/root/repo/target/release/deps/fig16_gpu_util-c264ba556e84f5af: crates/bench/src/bin/fig16_gpu_util.rs

crates/bench/src/bin/fig16_gpu_util.rs:
