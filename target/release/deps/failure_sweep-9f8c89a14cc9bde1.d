/root/repo/target/release/deps/failure_sweep-9f8c89a14cc9bde1.d: crates/bench/src/bin/failure_sweep.rs

/root/repo/target/release/deps/failure_sweep-9f8c89a14cc9bde1: crates/bench/src/bin/failure_sweep.rs

crates/bench/src/bin/failure_sweep.rs:
