/root/repo/target/release/deps/table2_models-19030eaafb70a842.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/release/deps/table2_models-19030eaafb70a842: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
