/root/repo/target/release/deps/fig14_gpt_scale-6b73eeb006a154df.d: crates/bench/src/bin/fig14_gpt_scale.rs

/root/repo/target/release/deps/fig14_gpt_scale-6b73eeb006a154df: crates/bench/src/bin/fig14_gpt_scale.rs

crates/bench/src/bin/fig14_gpt_scale.rs:
