/root/repo/target/release/deps/fig12_restore-a671ef5bd981cfc9.d: crates/bench/src/bin/fig12_restore.rs

/root/repo/target/release/deps/fig12_restore-a671ef5bd981cfc9: crates/bench/src/bin/fig12_restore.rs

crates/bench/src/bin/fig12_restore.rs:
