/root/repo/target/release/deps/run_all-d7b32cc6e6bd6103.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-d7b32cc6e6bd6103: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
