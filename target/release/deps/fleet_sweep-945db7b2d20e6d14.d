/root/repo/target/release/deps/fleet_sweep-945db7b2d20e6d14.d: crates/bench/src/bin/fleet_sweep.rs

/root/repo/target/release/deps/fleet_sweep-945db7b2d20e6d14: crates/bench/src/bin/fleet_sweep.rs

crates/bench/src/bin/fleet_sweep.rs:
