/root/repo/target/release/deps/fig11_checkpoint-3919916c6651af83.d: crates/bench/src/bin/fig11_checkpoint.rs

/root/repo/target/release/deps/fig11_checkpoint-3919916c6651af83: crates/bench/src/bin/fig11_checkpoint.rs

crates/bench/src/bin/fig11_checkpoint.rs:
