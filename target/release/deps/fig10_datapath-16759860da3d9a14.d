/root/repo/target/release/deps/fig10_datapath-16759860da3d9a14.d: crates/bench/src/bin/fig10_datapath.rs

/root/repo/target/release/deps/fig10_datapath-16759860da3d9a14: crates/bench/src/bin/fig10_datapath.rs

crates/bench/src/bin/fig10_datapath.rs:
