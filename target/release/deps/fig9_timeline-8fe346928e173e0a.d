/root/repo/target/release/deps/fig9_timeline-8fe346928e173e0a.d: crates/bench/src/bin/fig9_timeline.rs

/root/repo/target/release/deps/fig9_timeline-8fe346928e173e0a: crates/bench/src/bin/fig9_timeline.rs

crates/bench/src/bin/fig9_timeline.rs:
