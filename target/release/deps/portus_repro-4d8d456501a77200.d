/root/repo/target/release/deps/portus_repro-4d8d456501a77200.d: src/lib.rs

/root/repo/target/release/deps/portus_repro-4d8d456501a77200: src/lib.rs

src/lib.rs:
