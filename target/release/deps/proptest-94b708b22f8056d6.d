/root/repo/target/release/deps/proptest-94b708b22f8056d6.d: .local-deps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-94b708b22f8056d6.rlib: .local-deps/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-94b708b22f8056d6.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
