/root/repo/target/release/deps/serde_derive-64b51e7a32d12892.d: .local-deps/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-64b51e7a32d12892.so: .local-deps/serde_derive/src/lib.rs

.local-deps/serde_derive/src/lib.rs:
