/root/repo/target/release/deps/portus_repro-a3e5dcf9f289f340.d: src/lib.rs

/root/repo/target/release/deps/libportus_repro-a3e5dcf9f289f340.rlib: src/lib.rs

/root/repo/target/release/deps/libportus_repro-a3e5dcf9f289f340.rmeta: src/lib.rs

src/lib.rs:
