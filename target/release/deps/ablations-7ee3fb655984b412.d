/root/repo/target/release/deps/ablations-7ee3fb655984b412.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7ee3fb655984b412: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
