/root/repo/target/release/deps/fig2_overhead-9287a4e6aab4c71f.d: crates/bench/src/bin/fig2_overhead.rs

/root/repo/target/release/deps/fig2_overhead-9287a4e6aab4c71f: crates/bench/src/bin/fig2_overhead.rs

crates/bench/src/bin/fig2_overhead.rs:
