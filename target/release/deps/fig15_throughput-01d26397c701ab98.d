/root/repo/target/release/deps/fig15_throughput-01d26397c701ab98.d: crates/bench/src/bin/fig15_throughput.rs

/root/repo/target/release/deps/fig15_throughput-01d26397c701ab98: crates/bench/src/bin/fig15_throughput.rs

crates/bench/src/bin/fig15_throughput.rs:
