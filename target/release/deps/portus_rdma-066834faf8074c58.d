/root/repo/target/release/deps/portus_rdma-066834faf8074c58.d: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

/root/repo/target/release/deps/libportus_rdma-066834faf8074c58.rlib: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

/root/repo/target/release/deps/libportus_rdma-066834faf8074c58.rmeta: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

crates/rdma/src/lib.rs:
crates/rdma/src/control.rs:
crates/rdma/src/cq.rs:
crates/rdma/src/error.rs:
crates/rdma/src/fabric.rs:
crates/rdma/src/fault.rs:
crates/rdma/src/mr.rs:
crates/rdma/src/qp.rs:
