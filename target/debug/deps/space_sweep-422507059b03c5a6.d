/root/repo/target/debug/deps/space_sweep-422507059b03c5a6.d: crates/bench/src/bin/space_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libspace_sweep-422507059b03c5a6.rmeta: crates/bench/src/bin/space_sweep.rs Cargo.toml

crates/bench/src/bin/space_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
