/root/repo/target/debug/deps/equivalence_properties-6bace8c8b18ebb5d.d: tests/equivalence_properties.rs

/root/repo/target/debug/deps/equivalence_properties-6bace8c8b18ebb5d: tests/equivalence_properties.rs

tests/equivalence_properties.rs:
