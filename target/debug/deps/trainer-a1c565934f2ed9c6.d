/root/repo/target/debug/deps/trainer-a1c565934f2ed9c6.d: tests/trainer.rs

/root/repo/target/debug/deps/trainer-a1c565934f2ed9c6: tests/trainer.rs

tests/trainer.rs:
