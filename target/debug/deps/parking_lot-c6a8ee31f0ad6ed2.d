/root/repo/target/debug/deps/parking_lot-c6a8ee31f0ad6ed2.d: .local-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c6a8ee31f0ad6ed2.rmeta: .local-deps/parking_lot/src/lib.rs

.local-deps/parking_lot/src/lib.rs:
