/root/repo/target/debug/deps/index_structures-e3529feefd73dd94.d: crates/bench/benches/index_structures.rs Cargo.toml

/root/repo/target/debug/deps/libindex_structures-e3529feefd73dd94.rmeta: crates/bench/benches/index_structures.rs Cargo.toml

crates/bench/benches/index_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
