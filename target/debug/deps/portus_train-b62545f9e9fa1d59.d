/root/repo/target/debug/deps/portus_train-b62545f9e9fa1d59.d: crates/train/src/lib.rs crates/train/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libportus_train-b62545f9e9fa1d59.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
