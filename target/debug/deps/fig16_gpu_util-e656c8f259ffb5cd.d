/root/repo/target/debug/deps/fig16_gpu_util-e656c8f259ffb5cd.d: crates/bench/src/bin/fig16_gpu_util.rs

/root/repo/target/debug/deps/fig16_gpu_util-e656c8f259ffb5cd: crates/bench/src/bin/fig16_gpu_util.rs

crates/bench/src/bin/fig16_gpu_util.rs:
