/root/repo/target/debug/deps/fault_injection-090ddf95b52b053f.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-090ddf95b52b053f.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
