/root/repo/target/debug/deps/ablations-5b5b5ef2c734ebe0.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5b5b5ef2c734ebe0.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
