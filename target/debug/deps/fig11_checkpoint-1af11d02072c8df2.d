/root/repo/target/debug/deps/fig11_checkpoint-1af11d02072c8df2.d: crates/bench/src/bin/fig11_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_checkpoint-1af11d02072c8df2.rmeta: crates/bench/src/bin/fig11_checkpoint.rs Cargo.toml

crates/bench/src/bin/fig11_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
