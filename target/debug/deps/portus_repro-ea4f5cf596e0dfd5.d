/root/repo/target/debug/deps/portus_repro-ea4f5cf596e0dfd5.d: src/lib.rs

/root/repo/target/debug/deps/libportus_repro-ea4f5cf596e0dfd5.rmeta: src/lib.rs

src/lib.rs:
