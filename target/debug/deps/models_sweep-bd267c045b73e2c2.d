/root/repo/target/debug/deps/models_sweep-bd267c045b73e2c2.d: crates/bench/src/bin/models_sweep.rs

/root/repo/target/debug/deps/libmodels_sweep-bd267c045b73e2c2.rmeta: crates/bench/src/bin/models_sweep.rs

crates/bench/src/bin/models_sweep.rs:
