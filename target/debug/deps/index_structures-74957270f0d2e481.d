/root/repo/target/debug/deps/index_structures-74957270f0d2e481.d: crates/bench/benches/index_structures.rs

/root/repo/target/debug/deps/libindex_structures-74957270f0d2e481.rmeta: crates/bench/benches/index_structures.rs

crates/bench/benches/index_structures.rs:
