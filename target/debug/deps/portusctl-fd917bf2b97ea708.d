/root/repo/target/debug/deps/portusctl-fd917bf2b97ea708.d: crates/core/src/bin/portusctl.rs

/root/repo/target/debug/deps/portusctl-fd917bf2b97ea708: crates/core/src/bin/portusctl.rs

crates/core/src/bin/portusctl.rs:
