/root/repo/target/debug/deps/portus_train-562134b2e01a3d5d.d: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/debug/deps/libportus_train-562134b2e01a3d5d.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
