/root/repo/target/debug/deps/space_sweep-3760bd990a7107c9.d: crates/bench/src/bin/space_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libspace_sweep-3760bd990a7107c9.rmeta: crates/bench/src/bin/space_sweep.rs Cargo.toml

crates/bench/src/bin/space_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
