/root/repo/target/debug/deps/table2_models-dfecdc46947d10d3.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/debug/deps/table2_models-dfecdc46947d10d3: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
