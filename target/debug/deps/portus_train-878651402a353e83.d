/root/repo/target/debug/deps/portus_train-878651402a353e83.d: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/debug/deps/portus_train-878651402a353e83: crates/train/src/lib.rs crates/train/src/sharded.rs

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
