/root/repo/target/debug/deps/failure_sweep-047a24f0b5ffe962.d: crates/bench/src/bin/failure_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_sweep-047a24f0b5ffe962.rmeta: crates/bench/src/bin/failure_sweep.rs Cargo.toml

crates/bench/src/bin/failure_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
