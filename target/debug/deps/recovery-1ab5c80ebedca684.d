/root/repo/target/debug/deps/recovery-1ab5c80ebedca684.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-1ab5c80ebedca684: tests/recovery.rs

tests/recovery.rs:
