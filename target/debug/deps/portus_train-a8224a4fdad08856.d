/root/repo/target/debug/deps/portus_train-a8224a4fdad08856.d: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/debug/deps/libportus_train-a8224a4fdad08856.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
