/root/repo/target/debug/deps/crossbeam-dd7eee8c92d49487.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-dd7eee8c92d49487.rlib: .local-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-dd7eee8c92d49487.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
