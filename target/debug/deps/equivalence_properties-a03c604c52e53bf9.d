/root/repo/target/debug/deps/equivalence_properties-a03c604c52e53bf9.d: tests/equivalence_properties.rs

/root/repo/target/debug/deps/libequivalence_properties-a03c604c52e53bf9.rmeta: tests/equivalence_properties.rs

tests/equivalence_properties.rs:
