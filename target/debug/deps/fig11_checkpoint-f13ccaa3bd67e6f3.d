/root/repo/target/debug/deps/fig11_checkpoint-f13ccaa3bd67e6f3.d: crates/bench/src/bin/fig11_checkpoint.rs

/root/repo/target/debug/deps/libfig11_checkpoint-f13ccaa3bd67e6f3.rmeta: crates/bench/src/bin/fig11_checkpoint.rs

crates/bench/src/bin/fig11_checkpoint.rs:
