/root/repo/target/debug/deps/fig11_checkpoint-c2f3810bec62e8aa.d: crates/bench/src/bin/fig11_checkpoint.rs

/root/repo/target/debug/deps/fig11_checkpoint-c2f3810bec62e8aa: crates/bench/src/bin/fig11_checkpoint.rs

crates/bench/src/bin/fig11_checkpoint.rs:
