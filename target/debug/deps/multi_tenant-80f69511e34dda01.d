/root/repo/target/debug/deps/multi_tenant-80f69511e34dda01.d: tests/multi_tenant.rs

/root/repo/target/debug/deps/multi_tenant-80f69511e34dda01: tests/multi_tenant.rs

tests/multi_tenant.rs:
