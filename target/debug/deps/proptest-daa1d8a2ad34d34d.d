/root/repo/target/debug/deps/proptest-daa1d8a2ad34d34d.d: .local-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-daa1d8a2ad34d34d.rlib: .local-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-daa1d8a2ad34d34d.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
