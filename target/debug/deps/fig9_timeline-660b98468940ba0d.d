/root/repo/target/debug/deps/fig9_timeline-660b98468940ba0d.d: crates/bench/src/bin/fig9_timeline.rs

/root/repo/target/debug/deps/fig9_timeline-660b98468940ba0d: crates/bench/src/bin/fig9_timeline.rs

crates/bench/src/bin/fig9_timeline.rs:
