/root/repo/target/debug/deps/properties-5880e4381ff38336.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5880e4381ff38336: tests/properties.rs

tests/properties.rs:
