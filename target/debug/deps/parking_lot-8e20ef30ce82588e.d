/root/repo/target/debug/deps/parking_lot-8e20ef30ce82588e.d: .local-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8e20ef30ce82588e.rlib: .local-deps/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8e20ef30ce82588e.rmeta: .local-deps/parking_lot/src/lib.rs

.local-deps/parking_lot/src/lib.rs:
