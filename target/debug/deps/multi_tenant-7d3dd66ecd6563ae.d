/root/repo/target/debug/deps/multi_tenant-7d3dd66ecd6563ae.d: tests/multi_tenant.rs

/root/repo/target/debug/deps/libmulti_tenant-7d3dd66ecd6563ae.rmeta: tests/multi_tenant.rs

tests/multi_tenant.rs:
