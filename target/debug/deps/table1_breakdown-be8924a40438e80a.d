/root/repo/target/debug/deps/table1_breakdown-be8924a40438e80a.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-be8924a40438e80a.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
