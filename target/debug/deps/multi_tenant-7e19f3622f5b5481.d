/root/repo/target/debug/deps/multi_tenant-7e19f3622f5b5481.d: tests/multi_tenant.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_tenant-7e19f3622f5b5481.rmeta: tests/multi_tenant.rs Cargo.toml

tests/multi_tenant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
