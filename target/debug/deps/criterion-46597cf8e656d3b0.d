/root/repo/target/debug/deps/criterion-46597cf8e656d3b0.d: .local-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-46597cf8e656d3b0.rmeta: .local-deps/criterion/src/lib.rs

.local-deps/criterion/src/lib.rs:
