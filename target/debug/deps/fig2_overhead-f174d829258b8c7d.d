/root/repo/target/debug/deps/fig2_overhead-f174d829258b8c7d.d: crates/bench/src/bin/fig2_overhead.rs

/root/repo/target/debug/deps/libfig2_overhead-f174d829258b8c7d.rmeta: crates/bench/src/bin/fig2_overhead.rs

crates/bench/src/bin/fig2_overhead.rs:
