/root/repo/target/debug/deps/fig15_throughput-2a5e5b49f907600e.d: crates/bench/src/bin/fig15_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_throughput-2a5e5b49f907600e.rmeta: crates/bench/src/bin/fig15_throughput.rs Cargo.toml

crates/bench/src/bin/fig15_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
