/root/repo/target/debug/deps/failure_sweep-7398531a8df7e298.d: crates/bench/src/bin/failure_sweep.rs

/root/repo/target/debug/deps/libfailure_sweep-7398531a8df7e298.rmeta: crates/bench/src/bin/failure_sweep.rs

crates/bench/src/bin/failure_sweep.rs:
