/root/repo/target/debug/deps/fig11_checkpoint-36501edb6145baca.d: crates/bench/src/bin/fig11_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_checkpoint-36501edb6145baca.rmeta: crates/bench/src/bin/fig11_checkpoint.rs Cargo.toml

crates/bench/src/bin/fig11_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
