/root/repo/target/debug/deps/fig14_gpt_scale-7da3f702717becca.d: crates/bench/src/bin/fig14_gpt_scale.rs

/root/repo/target/debug/deps/fig14_gpt_scale-7da3f702717becca: crates/bench/src/bin/fig14_gpt_scale.rs

crates/bench/src/bin/fig14_gpt_scale.rs:
