/root/repo/target/debug/deps/portusctl-4361e6f97bd0d093.d: crates/core/src/bin/portusctl.rs

/root/repo/target/debug/deps/portusctl-4361e6f97bd0d093: crates/core/src/bin/portusctl.rs

crates/core/src/bin/portusctl.rs:
