/root/repo/target/debug/deps/striping-0e91b746c1fec22c.d: tests/striping.rs tests/golden/single_qp_trace.json Cargo.toml

/root/repo/target/debug/deps/libstriping-0e91b746c1fec22c.rmeta: tests/striping.rs tests/golden/single_qp_trace.json Cargo.toml

tests/striping.rs:
tests/golden/single_qp_trace.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
