/root/repo/target/debug/deps/fig9_timeline-cb4f09073f2307c4.d: crates/bench/src/bin/fig9_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_timeline-cb4f09073f2307c4.rmeta: crates/bench/src/bin/fig9_timeline.rs Cargo.toml

crates/bench/src/bin/fig9_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
