/root/repo/target/debug/deps/ablations-d804d9b8835cc0b5.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-d804d9b8835cc0b5.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
