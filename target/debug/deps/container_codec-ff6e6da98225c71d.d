/root/repo/target/debug/deps/container_codec-ff6e6da98225c71d.d: crates/bench/benches/container_codec.rs Cargo.toml

/root/repo/target/debug/deps/libcontainer_codec-ff6e6da98225c71d.rmeta: crates/bench/benches/container_codec.rs Cargo.toml

crates/bench/benches/container_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
