/root/repo/target/debug/deps/models_sweep-d9558dfe6f1aed92.d: crates/bench/src/bin/models_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libmodels_sweep-d9558dfe6f1aed92.rmeta: crates/bench/src/bin/models_sweep.rs Cargo.toml

crates/bench/src/bin/models_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
