/root/repo/target/debug/deps/datapath_fig10-39a23a4fcb079f64.d: tests/datapath_fig10.rs Cargo.toml

/root/repo/target/debug/deps/libdatapath_fig10-39a23a4fcb079f64.rmeta: tests/datapath_fig10.rs Cargo.toml

tests/datapath_fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
