/root/repo/target/debug/deps/table2_models-f35918f85c691439.d: crates/bench/src/bin/table2_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_models-f35918f85c691439.rmeta: crates/bench/src/bin/table2_models.rs Cargo.toml

crates/bench/src/bin/table2_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
