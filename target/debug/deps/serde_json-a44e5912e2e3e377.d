/root/repo/target/debug/deps/serde_json-a44e5912e2e3e377.d: .local-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a44e5912e2e3e377.rlib: .local-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a44e5912e2e3e377.rmeta: .local-deps/serde_json/src/lib.rs

.local-deps/serde_json/src/lib.rs:
