/root/repo/target/debug/deps/table1_breakdown-3948bd455b2a908f.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-3948bd455b2a908f.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
