/root/repo/target/debug/deps/golden_capture-fcae4e2d4c9a2dca.d: tests/golden_capture.rs

/root/repo/target/debug/deps/golden_capture-fcae4e2d4c9a2dca: tests/golden_capture.rs

tests/golden_capture.rs:
