/root/repo/target/debug/deps/portus_storage-3809cdb535a70e34.d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

/root/repo/target/debug/deps/libportus_storage-3809cdb535a70e34.rmeta: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

crates/storage/src/lib.rs:
crates/storage/src/backend.rs:
crates/storage/src/beegfs.rs:
crates/storage/src/checkpointer.rs:
crates/storage/src/error.rs:
crates/storage/src/local.rs:
