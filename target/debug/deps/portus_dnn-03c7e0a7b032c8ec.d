/root/repo/target/debug/deps/portus_dnn-03c7e0a7b032c8ec.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libportus_dnn-03c7e0a7b032c8ec.rlib: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libportus_dnn-03c7e0a7b032c8ec.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
