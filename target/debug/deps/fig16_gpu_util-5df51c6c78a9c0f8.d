/root/repo/target/debug/deps/fig16_gpu_util-5df51c6c78a9c0f8.d: crates/bench/src/bin/fig16_gpu_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_gpu_util-5df51c6c78a9c0f8.rmeta: crates/bench/src/bin/fig16_gpu_util.rs Cargo.toml

crates/bench/src/bin/fig16_gpu_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
