/root/repo/target/debug/deps/batched_datapath-9c125b8be7b84e90.d: tests/batched_datapath.rs

/root/repo/target/debug/deps/batched_datapath-9c125b8be7b84e90: tests/batched_datapath.rs

tests/batched_datapath.rs:
