/root/repo/target/debug/deps/criterion-acf16ced55eb4c3d.d: .local-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-acf16ced55eb4c3d.rlib: .local-deps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-acf16ced55eb4c3d.rmeta: .local-deps/criterion/src/lib.rs

.local-deps/criterion/src/lib.rs:
