/root/repo/target/debug/deps/portus_sim-b12f9661fcca2c6e.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/plan.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/portus_sim-b12f9661fcca2c6e: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/plan.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/plan.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
