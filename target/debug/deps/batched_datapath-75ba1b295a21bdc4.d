/root/repo/target/debug/deps/batched_datapath-75ba1b295a21bdc4.d: tests/batched_datapath.rs

/root/repo/target/debug/deps/libbatched_datapath-75ba1b295a21bdc4.rmeta: tests/batched_datapath.rs

tests/batched_datapath.rs:
