/root/repo/target/debug/deps/portus_format-0fb506fbaf61f82f.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libportus_format-0fb506fbaf61f82f.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs Cargo.toml

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
