/root/repo/target/debug/deps/run_all-23be3035b2e53ea1.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-23be3035b2e53ea1: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
