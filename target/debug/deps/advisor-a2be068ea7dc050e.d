/root/repo/target/debug/deps/advisor-a2be068ea7dc050e.d: crates/bench/src/bin/advisor.rs

/root/repo/target/debug/deps/libadvisor-a2be068ea7dc050e.rmeta: crates/bench/src/bin/advisor.rs

crates/bench/src/bin/advisor.rs:
