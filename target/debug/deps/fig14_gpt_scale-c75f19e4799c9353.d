/root/repo/target/debug/deps/fig14_gpt_scale-c75f19e4799c9353.d: crates/bench/src/bin/fig14_gpt_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_gpt_scale-c75f19e4799c9353.rmeta: crates/bench/src/bin/fig14_gpt_scale.rs Cargo.toml

crates/bench/src/bin/fig14_gpt_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
