/root/repo/target/debug/deps/fig12_restore-be1e6f87a2478b98.d: crates/bench/src/bin/fig12_restore.rs

/root/repo/target/debug/deps/libfig12_restore-be1e6f87a2478b98.rmeta: crates/bench/src/bin/fig12_restore.rs

crates/bench/src/bin/fig12_restore.rs:
