/root/repo/target/debug/deps/portusctl_cli-acd2def6dc2460a4.d: crates/core/tests/portusctl_cli.rs

/root/repo/target/debug/deps/portusctl_cli-acd2def6dc2460a4: crates/core/tests/portusctl_cli.rs

crates/core/tests/portusctl_cli.rs:

# env-dep:CARGO_BIN_EXE_portusctl=/root/repo/target/debug/portusctl
