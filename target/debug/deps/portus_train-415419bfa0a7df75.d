/root/repo/target/debug/deps/portus_train-415419bfa0a7df75.d: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/debug/deps/libportus_train-415419bfa0a7df75.rlib: crates/train/src/lib.rs crates/train/src/sharded.rs

/root/repo/target/debug/deps/libportus_train-415419bfa0a7df75.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
