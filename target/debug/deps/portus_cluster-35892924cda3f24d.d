/root/repo/target/debug/deps/portus_cluster-35892924cda3f24d.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libportus_cluster-35892924cda3f24d.rmeta: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/event.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
