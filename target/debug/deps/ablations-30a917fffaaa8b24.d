/root/repo/target/debug/deps/ablations-30a917fffaaa8b24.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-30a917fffaaa8b24.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
