/root/repo/target/debug/deps/fig2_overhead-6a3597e15e90ceaf.d: crates/bench/src/bin/fig2_overhead.rs

/root/repo/target/debug/deps/fig2_overhead-6a3597e15e90ceaf: crates/bench/src/bin/fig2_overhead.rs

crates/bench/src/bin/fig2_overhead.rs:
