/root/repo/target/debug/deps/table2_models-6f589d3955a36378.d: crates/bench/src/bin/table2_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_models-6f589d3955a36378.rmeta: crates/bench/src/bin/table2_models.rs Cargo.toml

crates/bench/src/bin/table2_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
