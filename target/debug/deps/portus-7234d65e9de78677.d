/root/repo/target/debug/deps/portus-7234d65e9de78677.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/daemon.rs crates/core/src/error.rs crates/core/src/index.rs crates/core/src/model_map.rs crates/core/src/portusctl.rs crates/core/src/proto.rs crates/core/src/repack.rs crates/core/src/replica.rs Cargo.toml

/root/repo/target/debug/deps/libportus-7234d65e9de78677.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/daemon.rs crates/core/src/error.rs crates/core/src/index.rs crates/core/src/model_map.rs crates/core/src/portusctl.rs crates/core/src/proto.rs crates/core/src/repack.rs crates/core/src/replica.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/daemon.rs:
crates/core/src/error.rs:
crates/core/src/index.rs:
crates/core/src/model_map.rs:
crates/core/src/portusctl.rs:
crates/core/src/proto.rs:
crates/core/src/repack.rs:
crates/core/src/replica.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
