/root/repo/target/debug/deps/portus_repro-4850b600b3521b42.d: src/lib.rs

/root/repo/target/debug/deps/portus_repro-4850b600b3521b42: src/lib.rs

src/lib.rs:
