/root/repo/target/debug/deps/distributed-2aa8674922d42cc6.d: tests/distributed.rs

/root/repo/target/debug/deps/libdistributed-2aa8674922d42cc6.rmeta: tests/distributed.rs

tests/distributed.rs:
