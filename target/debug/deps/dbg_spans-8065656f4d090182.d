/root/repo/target/debug/deps/dbg_spans-8065656f4d090182.d: tests/dbg_spans.rs

/root/repo/target/debug/deps/dbg_spans-8065656f4d090182: tests/dbg_spans.rs

tests/dbg_spans.rs:
