/root/repo/target/debug/deps/portus_rdma-66bc4f15a66299d7.d: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs Cargo.toml

/root/repo/target/debug/deps/libportus_rdma-66bc4f15a66299d7.rmeta: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs Cargo.toml

crates/rdma/src/lib.rs:
crates/rdma/src/control.rs:
crates/rdma/src/cq.rs:
crates/rdma/src/error.rs:
crates/rdma/src/fabric.rs:
crates/rdma/src/fault.rs:
crates/rdma/src/mr.rs:
crates/rdma/src/qp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
