/root/repo/target/debug/deps/models_sweep-85a6600e680460c8.d: crates/bench/src/bin/models_sweep.rs

/root/repo/target/debug/deps/models_sweep-85a6600e680460c8: crates/bench/src/bin/models_sweep.rs

crates/bench/src/bin/models_sweep.rs:
