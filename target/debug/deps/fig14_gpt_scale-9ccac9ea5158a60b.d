/root/repo/target/debug/deps/fig14_gpt_scale-9ccac9ea5158a60b.d: crates/bench/src/bin/fig14_gpt_scale.rs

/root/repo/target/debug/deps/libfig14_gpt_scale-9ccac9ea5158a60b.rmeta: crates/bench/src/bin/fig14_gpt_scale.rs

crates/bench/src/bin/fig14_gpt_scale.rs:
