/root/repo/target/debug/deps/fault_injection-beafd67112a4e23c.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-beafd67112a4e23c: tests/fault_injection.rs

tests/fault_injection.rs:
