/root/repo/target/debug/deps/delta_checkpoint-53ba4c4697a15c0e.d: tests/delta_checkpoint.rs

/root/repo/target/debug/deps/delta_checkpoint-53ba4c4697a15c0e: tests/delta_checkpoint.rs

tests/delta_checkpoint.rs:
