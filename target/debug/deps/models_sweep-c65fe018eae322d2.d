/root/repo/target/debug/deps/models_sweep-c65fe018eae322d2.d: crates/bench/src/bin/models_sweep.rs

/root/repo/target/debug/deps/libmodels_sweep-c65fe018eae322d2.rmeta: crates/bench/src/bin/models_sweep.rs

crates/bench/src/bin/models_sweep.rs:
