/root/repo/target/debug/deps/fig10_datapath-902ab9e7166f2081.d: crates/bench/src/bin/fig10_datapath.rs

/root/repo/target/debug/deps/libfig10_datapath-902ab9e7166f2081.rmeta: crates/bench/src/bin/fig10_datapath.rs

crates/bench/src/bin/fig10_datapath.rs:
