/root/repo/target/debug/deps/fig10_datapath-d5ac2d2d12cffae9.d: crates/bench/src/bin/fig10_datapath.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_datapath-d5ac2d2d12cffae9.rmeta: crates/bench/src/bin/fig10_datapath.rs Cargo.toml

crates/bench/src/bin/fig10_datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
