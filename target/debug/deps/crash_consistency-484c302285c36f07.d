/root/repo/target/debug/deps/crash_consistency-484c302285c36f07.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/libcrash_consistency-484c302285c36f07.rmeta: tests/crash_consistency.rs

tests/crash_consistency.rs:
