/root/repo/target/debug/deps/end_to_end-1dc577c568099b11.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1dc577c568099b11: tests/end_to_end.rs

tests/end_to_end.rs:
