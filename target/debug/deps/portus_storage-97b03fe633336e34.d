/root/repo/target/debug/deps/portus_storage-97b03fe633336e34.d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs Cargo.toml

/root/repo/target/debug/deps/libportus_storage-97b03fe633336e34.rmeta: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/backend.rs:
crates/storage/src/beegfs.rs:
crates/storage/src/checkpointer.rs:
crates/storage/src/error.rs:
crates/storage/src/local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
