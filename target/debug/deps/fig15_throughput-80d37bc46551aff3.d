/root/repo/target/debug/deps/fig15_throughput-80d37bc46551aff3.d: crates/bench/src/bin/fig15_throughput.rs

/root/repo/target/debug/deps/libfig15_throughput-80d37bc46551aff3.rmeta: crates/bench/src/bin/fig15_throughput.rs

crates/bench/src/bin/fig15_throughput.rs:
