/root/repo/target/debug/deps/fig11_checkpoint-2431b071b4de54bf.d: crates/bench/src/bin/fig11_checkpoint.rs

/root/repo/target/debug/deps/libfig11_checkpoint-2431b071b4de54bf.rmeta: crates/bench/src/bin/fig11_checkpoint.rs

crates/bench/src/bin/fig11_checkpoint.rs:
