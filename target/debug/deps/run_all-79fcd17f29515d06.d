/root/repo/target/debug/deps/run_all-79fcd17f29515d06.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-79fcd17f29515d06.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
