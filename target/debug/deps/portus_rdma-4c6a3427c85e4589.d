/root/repo/target/debug/deps/portus_rdma-4c6a3427c85e4589.d: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

/root/repo/target/debug/deps/portus_rdma-4c6a3427c85e4589: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

crates/rdma/src/lib.rs:
crates/rdma/src/control.rs:
crates/rdma/src/cq.rs:
crates/rdma/src/error.rs:
crates/rdma/src/fabric.rs:
crates/rdma/src/fault.rs:
crates/rdma/src/mr.rs:
crates/rdma/src/qp.rs:
