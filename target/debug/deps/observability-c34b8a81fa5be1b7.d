/root/repo/target/debug/deps/observability-c34b8a81fa5be1b7.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-c34b8a81fa5be1b7.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
