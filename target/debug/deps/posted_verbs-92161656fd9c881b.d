/root/repo/target/debug/deps/posted_verbs-92161656fd9c881b.d: tests/posted_verbs.rs

/root/repo/target/debug/deps/posted_verbs-92161656fd9c881b: tests/posted_verbs.rs

tests/posted_verbs.rs:
