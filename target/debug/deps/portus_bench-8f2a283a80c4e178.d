/root/repo/target/debug/deps/portus_bench-8f2a283a80c4e178.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/debug/deps/libportus_bench-8f2a283a80c4e178.rlib: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/debug/deps/libportus_bench-8f2a283a80c4e178.rmeta: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
