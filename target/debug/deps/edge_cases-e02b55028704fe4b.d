/root/repo/target/debug/deps/edge_cases-e02b55028704fe4b.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-e02b55028704fe4b.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
