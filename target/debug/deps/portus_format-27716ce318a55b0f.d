/root/repo/target/debug/deps/portus_format-27716ce318a55b0f.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/debug/deps/libportus_format-27716ce318a55b0f.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
