/root/repo/target/debug/deps/fig15_throughput-9dd71aff5a5ff24a.d: crates/bench/src/bin/fig15_throughput.rs

/root/repo/target/debug/deps/fig15_throughput-9dd71aff5a5ff24a: crates/bench/src/bin/fig15_throughput.rs

crates/bench/src/bin/fig15_throughput.rs:
