/root/repo/target/debug/deps/fig10_datapath-de34cbaeb6fcac40.d: crates/bench/benches/fig10_datapath.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_datapath-de34cbaeb6fcac40.rmeta: crates/bench/benches/fig10_datapath.rs Cargo.toml

crates/bench/benches/fig10_datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
