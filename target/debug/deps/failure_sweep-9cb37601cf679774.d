/root/repo/target/debug/deps/failure_sweep-9cb37601cf679774.d: crates/bench/src/bin/failure_sweep.rs

/root/repo/target/debug/deps/failure_sweep-9cb37601cf679774: crates/bench/src/bin/failure_sweep.rs

crates/bench/src/bin/failure_sweep.rs:
