/root/repo/target/debug/deps/fig10_datapath-ff11d6fb8bc100ce.d: crates/bench/src/bin/fig10_datapath.rs

/root/repo/target/debug/deps/libfig10_datapath-ff11d6fb8bc100ce.rmeta: crates/bench/src/bin/fig10_datapath.rs

crates/bench/src/bin/fig10_datapath.rs:
