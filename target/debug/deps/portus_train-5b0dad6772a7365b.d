/root/repo/target/debug/deps/portus_train-5b0dad6772a7365b.d: crates/train/src/lib.rs crates/train/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libportus_train-5b0dad6772a7365b.rmeta: crates/train/src/lib.rs crates/train/src/sharded.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
