/root/repo/target/debug/deps/properties-e7d2382f5f5e96f3.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-e7d2382f5f5e96f3.rmeta: tests/properties.rs

tests/properties.rs:
