/root/repo/target/debug/deps/portus_dnn-7cb3f895f22d4e38.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/portus_dnn-7cb3f895f22d4e38: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
