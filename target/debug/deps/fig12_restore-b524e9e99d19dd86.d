/root/repo/target/debug/deps/fig12_restore-b524e9e99d19dd86.d: crates/bench/src/bin/fig12_restore.rs

/root/repo/target/debug/deps/libfig12_restore-b524e9e99d19dd86.rmeta: crates/bench/src/bin/fig12_restore.rs

crates/bench/src/bin/fig12_restore.rs:
