/root/repo/target/debug/deps/batched_datapath-2225c1c3c1816c41.d: tests/batched_datapath.rs Cargo.toml

/root/repo/target/debug/deps/libbatched_datapath-2225c1c3c1816c41.rmeta: tests/batched_datapath.rs Cargo.toml

tests/batched_datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
