/root/repo/target/debug/deps/datapath_fig10-3f23212862398886.d: tests/datapath_fig10.rs

/root/repo/target/debug/deps/datapath_fig10-3f23212862398886: tests/datapath_fig10.rs

tests/datapath_fig10.rs:
