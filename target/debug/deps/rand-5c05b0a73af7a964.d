/root/repo/target/debug/deps/rand-5c05b0a73af7a964.d: .local-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5c05b0a73af7a964.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
