/root/repo/target/debug/deps/end_to_end-75dee6c7640d75f0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-75dee6c7640d75f0.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
