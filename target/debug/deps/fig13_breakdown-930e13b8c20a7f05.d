/root/repo/target/debug/deps/fig13_breakdown-930e13b8c20a7f05.d: crates/bench/src/bin/fig13_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_breakdown-930e13b8c20a7f05.rmeta: crates/bench/src/bin/fig13_breakdown.rs Cargo.toml

crates/bench/src/bin/fig13_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
