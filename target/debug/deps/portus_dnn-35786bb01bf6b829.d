/root/repo/target/debug/deps/portus_dnn-35786bb01bf6b829.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs Cargo.toml

/root/repo/target/debug/deps/libportus_dnn-35786bb01bf6b829.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs Cargo.toml

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
