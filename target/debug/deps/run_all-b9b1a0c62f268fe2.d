/root/repo/target/debug/deps/run_all-b9b1a0c62f268fe2.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/librun_all-b9b1a0c62f268fe2.rmeta: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
