/root/repo/target/debug/deps/space_management-4dc61b0fc1ffe5a2.d: tests/space_management.rs Cargo.toml

/root/repo/target/debug/deps/libspace_management-4dc61b0fc1ffe5a2.rmeta: tests/space_management.rs Cargo.toml

tests/space_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
