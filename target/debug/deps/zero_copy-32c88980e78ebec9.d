/root/repo/target/debug/deps/zero_copy-32c88980e78ebec9.d: tests/zero_copy.rs

/root/repo/target/debug/deps/zero_copy-32c88980e78ebec9: tests/zero_copy.rs

tests/zero_copy.rs:
