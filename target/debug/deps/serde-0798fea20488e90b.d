/root/repo/target/debug/deps/serde-0798fea20488e90b.d: .local-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0798fea20488e90b.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
