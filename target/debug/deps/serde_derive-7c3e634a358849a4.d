/root/repo/target/debug/deps/serde_derive-7c3e634a358849a4.d: .local-deps/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7c3e634a358849a4.so: .local-deps/serde_derive/src/lib.rs

.local-deps/serde_derive/src/lib.rs:
