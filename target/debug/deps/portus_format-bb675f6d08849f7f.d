/root/repo/target/debug/deps/portus_format-bb675f6d08849f7f.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/debug/deps/portus_format-bb675f6d08849f7f: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
