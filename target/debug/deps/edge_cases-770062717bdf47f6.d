/root/repo/target/debug/deps/edge_cases-770062717bdf47f6.d: tests/edge_cases.rs

/root/repo/target/debug/deps/libedge_cases-770062717bdf47f6.rmeta: tests/edge_cases.rs

tests/edge_cases.rs:
