/root/repo/target/debug/deps/portus_mem-e9e578c4c0009521.d: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/debug/deps/portus_mem-e9e578c4c0009521: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/buffer.rs:
crates/mem/src/error.rs:
crates/mem/src/gpu.rs:
crates/mem/src/host.rs:
crates/mem/src/segment.rs:
