/root/repo/target/debug/deps/table2_models-9c2156f3446e653a.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/debug/deps/libtable2_models-9c2156f3446e653a.rmeta: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
