/root/repo/target/debug/deps/ablations-7b66cdf322636739.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-7b66cdf322636739.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
