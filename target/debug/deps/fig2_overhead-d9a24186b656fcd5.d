/root/repo/target/debug/deps/fig2_overhead-d9a24186b656fcd5.d: crates/bench/src/bin/fig2_overhead.rs

/root/repo/target/debug/deps/libfig2_overhead-d9a24186b656fcd5.rmeta: crates/bench/src/bin/fig2_overhead.rs

crates/bench/src/bin/fig2_overhead.rs:
