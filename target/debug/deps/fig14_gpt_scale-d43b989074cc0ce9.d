/root/repo/target/debug/deps/fig14_gpt_scale-d43b989074cc0ce9.d: crates/bench/src/bin/fig14_gpt_scale.rs

/root/repo/target/debug/deps/libfig14_gpt_scale-d43b989074cc0ce9.rmeta: crates/bench/src/bin/fig14_gpt_scale.rs

crates/bench/src/bin/fig14_gpt_scale.rs:
