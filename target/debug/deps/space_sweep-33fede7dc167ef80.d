/root/repo/target/debug/deps/space_sweep-33fede7dc167ef80.d: crates/bench/src/bin/space_sweep.rs

/root/repo/target/debug/deps/libspace_sweep-33fede7dc167ef80.rmeta: crates/bench/src/bin/space_sweep.rs

crates/bench/src/bin/space_sweep.rs:
