/root/repo/target/debug/deps/trainer-5ad77f46d1828423.d: tests/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libtrainer-5ad77f46d1828423.rmeta: tests/trainer.rs Cargo.toml

tests/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
