/root/repo/target/debug/deps/fig2_overhead-11adb2a62481e10a.d: crates/bench/src/bin/fig2_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_overhead-11adb2a62481e10a.rmeta: crates/bench/src/bin/fig2_overhead.rs Cargo.toml

crates/bench/src/bin/fig2_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
