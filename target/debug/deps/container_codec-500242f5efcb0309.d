/root/repo/target/debug/deps/container_codec-500242f5efcb0309.d: crates/bench/benches/container_codec.rs

/root/repo/target/debug/deps/libcontainer_codec-500242f5efcb0309.rmeta: crates/bench/benches/container_codec.rs

crates/bench/benches/container_codec.rs:
