/root/repo/target/debug/deps/fig13_breakdown-c1c96442b05c9ac2.d: crates/bench/src/bin/fig13_breakdown.rs

/root/repo/target/debug/deps/libfig13_breakdown-c1c96442b05c9ac2.rmeta: crates/bench/src/bin/fig13_breakdown.rs

crates/bench/src/bin/fig13_breakdown.rs:
