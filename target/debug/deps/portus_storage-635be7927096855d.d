/root/repo/target/debug/deps/portus_storage-635be7927096855d.d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

/root/repo/target/debug/deps/portus_storage-635be7927096855d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

crates/storage/src/lib.rs:
crates/storage/src/backend.rs:
crates/storage/src/beegfs.rs:
crates/storage/src/checkpointer.rs:
crates/storage/src/error.rs:
crates/storage/src/local.rs:
