/root/repo/target/debug/deps/portus_mem-76495a2ad3c2dfa9.d: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/debug/deps/libportus_mem-76495a2ad3c2dfa9.rmeta: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/buffer.rs:
crates/mem/src/error.rs:
crates/mem/src/gpu.rs:
crates/mem/src/host.rs:
crates/mem/src/segment.rs:
