/root/repo/target/debug/deps/fig16_gpu_util-fa8945807869cfc1.d: crates/bench/src/bin/fig16_gpu_util.rs

/root/repo/target/debug/deps/libfig16_gpu_util-fa8945807869cfc1.rmeta: crates/bench/src/bin/fig16_gpu_util.rs

crates/bench/src/bin/fig16_gpu_util.rs:
