/root/repo/target/debug/deps/failure_sweep-5706e0655fb6edc4.d: crates/bench/src/bin/failure_sweep.rs

/root/repo/target/debug/deps/libfailure_sweep-5706e0655fb6edc4.rmeta: crates/bench/src/bin/failure_sweep.rs

crates/bench/src/bin/failure_sweep.rs:
