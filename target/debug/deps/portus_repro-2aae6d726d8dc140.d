/root/repo/target/debug/deps/portus_repro-2aae6d726d8dc140.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libportus_repro-2aae6d726d8dc140.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
