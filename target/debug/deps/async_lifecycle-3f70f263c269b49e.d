/root/repo/target/debug/deps/async_lifecycle-3f70f263c269b49e.d: tests/async_lifecycle.rs

/root/repo/target/debug/deps/async_lifecycle-3f70f263c269b49e: tests/async_lifecycle.rs

tests/async_lifecycle.rs:
