/root/repo/target/debug/deps/portus_mem-247d3e71a1ad6b29.d: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs Cargo.toml

/root/repo/target/debug/deps/libportus_mem-247d3e71a1ad6b29.rmeta: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/buffer.rs:
crates/mem/src/error.rs:
crates/mem/src/gpu.rs:
crates/mem/src/host.rs:
crates/mem/src/segment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
