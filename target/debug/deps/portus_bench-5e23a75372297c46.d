/root/repo/target/debug/deps/portus_bench-5e23a75372297c46.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/debug/deps/portus_bench-5e23a75372297c46: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
