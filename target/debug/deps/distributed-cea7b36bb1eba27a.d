/root/repo/target/debug/deps/distributed-cea7b36bb1eba27a.d: tests/distributed.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed-cea7b36bb1eba27a.rmeta: tests/distributed.rs Cargo.toml

tests/distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
