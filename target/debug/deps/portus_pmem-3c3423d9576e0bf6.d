/root/repo/target/debug/deps/portus_pmem-3c3423d9576e0bf6.d: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs Cargo.toml

/root/repo/target/debug/deps/libportus_pmem-3c3423d9576e0bf6.rmeta: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs Cargo.toml

crates/pmem/src/lib.rs:
crates/pmem/src/alloc.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/image.rs:
crates/pmem/src/typed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
