/root/repo/target/debug/deps/fig9_timeline-48c279505ecfd79e.d: crates/bench/src/bin/fig9_timeline.rs

/root/repo/target/debug/deps/libfig9_timeline-48c279505ecfd79e.rmeta: crates/bench/src/bin/fig9_timeline.rs

crates/bench/src/bin/fig9_timeline.rs:
