/root/repo/target/debug/deps/golden_capture-6c3866370cc22f9b.d: tests/golden_capture.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_capture-6c3866370cc22f9b.rmeta: tests/golden_capture.rs Cargo.toml

tests/golden_capture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
