/root/repo/target/debug/deps/observability-800b6ede0b4ff050.d: tests/observability.rs

/root/repo/target/debug/deps/observability-800b6ede0b4ff050: tests/observability.rs

tests/observability.rs:
