/root/repo/target/debug/deps/fig9_timeline-572ee25069370f2c.d: crates/bench/src/bin/fig9_timeline.rs

/root/repo/target/debug/deps/libfig9_timeline-572ee25069370f2c.rmeta: crates/bench/src/bin/fig9_timeline.rs

crates/bench/src/bin/fig9_timeline.rs:
