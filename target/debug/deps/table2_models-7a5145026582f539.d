/root/repo/target/debug/deps/table2_models-7a5145026582f539.d: crates/bench/src/bin/table2_models.rs

/root/repo/target/debug/deps/libtable2_models-7a5145026582f539.rmeta: crates/bench/src/bin/table2_models.rs

crates/bench/src/bin/table2_models.rs:
