/root/repo/target/debug/deps/portus_dnn-f90f9c0aa7fabb48.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libportus_dnn-f90f9c0aa7fabb48.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
