/root/repo/target/debug/deps/portus_mem-44543e86dfecbacb.d: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/debug/deps/libportus_mem-44543e86dfecbacb.rlib: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

/root/repo/target/debug/deps/libportus_mem-44543e86dfecbacb.rmeta: crates/mem/src/lib.rs crates/mem/src/buffer.rs crates/mem/src/error.rs crates/mem/src/gpu.rs crates/mem/src/host.rs crates/mem/src/segment.rs

crates/mem/src/lib.rs:
crates/mem/src/buffer.rs:
crates/mem/src/error.rs:
crates/mem/src/gpu.rs:
crates/mem/src/host.rs:
crates/mem/src/segment.rs:
