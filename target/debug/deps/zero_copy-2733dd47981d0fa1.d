/root/repo/target/debug/deps/zero_copy-2733dd47981d0fa1.d: tests/zero_copy.rs Cargo.toml

/root/repo/target/debug/deps/libzero_copy-2733dd47981d0fa1.rmeta: tests/zero_copy.rs Cargo.toml

tests/zero_copy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
