/root/repo/target/debug/deps/portus_format-5706a718751e4727.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/debug/deps/libportus_format-5706a718751e4727.rlib: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/debug/deps/libportus_format-5706a718751e4727.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
