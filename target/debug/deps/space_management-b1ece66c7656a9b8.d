/root/repo/target/debug/deps/space_management-b1ece66c7656a9b8.d: tests/space_management.rs

/root/repo/target/debug/deps/space_management-b1ece66c7656a9b8: tests/space_management.rs

tests/space_management.rs:
