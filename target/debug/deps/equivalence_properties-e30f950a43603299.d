/root/repo/target/debug/deps/equivalence_properties-e30f950a43603299.d: tests/equivalence_properties.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_properties-e30f950a43603299.rmeta: tests/equivalence_properties.rs Cargo.toml

tests/equivalence_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
