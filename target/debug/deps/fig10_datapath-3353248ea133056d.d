/root/repo/target/debug/deps/fig10_datapath-3353248ea133056d.d: crates/bench/src/bin/fig10_datapath.rs

/root/repo/target/debug/deps/fig10_datapath-3353248ea133056d: crates/bench/src/bin/fig10_datapath.rs

crates/bench/src/bin/fig10_datapath.rs:
