/root/repo/target/debug/deps/portusctl-6c1221c64ee1b0a9.d: crates/core/src/bin/portusctl.rs Cargo.toml

/root/repo/target/debug/deps/libportusctl-6c1221c64ee1b0a9.rmeta: crates/core/src/bin/portusctl.rs Cargo.toml

crates/core/src/bin/portusctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
