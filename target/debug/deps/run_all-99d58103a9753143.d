/root/repo/target/debug/deps/run_all-99d58103a9753143.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/librun_all-99d58103a9753143.rmeta: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
