/root/repo/target/debug/deps/portus_cluster-d33ef37a700b2c0a.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/portus_cluster-d33ef37a700b2c0a: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/event.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
