/root/repo/target/debug/deps/datapath_fig10-2ab8269a1a06a90e.d: tests/datapath_fig10.rs

/root/repo/target/debug/deps/libdatapath_fig10-2ab8269a1a06a90e.rmeta: tests/datapath_fig10.rs

tests/datapath_fig10.rs:
