/root/repo/target/debug/deps/portus_dnn-3a0333f18f689ad0.d: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

/root/repo/target/debug/deps/libportus_dnn-3a0333f18f689ad0.rmeta: crates/dnn/src/lib.rs crates/dnn/src/dtype.rs crates/dnn/src/model.rs crates/dnn/src/optimizer.rs crates/dnn/src/parallel.rs crates/dnn/src/tensor.rs crates/dnn/src/train.rs crates/dnn/src/zoo.rs

crates/dnn/src/lib.rs:
crates/dnn/src/dtype.rs:
crates/dnn/src/model.rs:
crates/dnn/src/optimizer.rs:
crates/dnn/src/parallel.rs:
crates/dnn/src/tensor.rs:
crates/dnn/src/train.rs:
crates/dnn/src/zoo.rs:
