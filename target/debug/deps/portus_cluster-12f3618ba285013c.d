/root/repo/target/debug/deps/portus_cluster-12f3618ba285013c.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libportus_cluster-12f3618ba285013c.rlib: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libportus_cluster-12f3618ba285013c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/event.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
