/root/repo/target/debug/deps/fig12_restore-01ed3600b8b6bb9a.d: crates/bench/src/bin/fig12_restore.rs

/root/repo/target/debug/deps/fig12_restore-01ed3600b8b6bb9a: crates/bench/src/bin/fig12_restore.rs

crates/bench/src/bin/fig12_restore.rs:
