/root/repo/target/debug/deps/fig13_breakdown-d655f8254c188630.d: crates/bench/src/bin/fig13_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_breakdown-d655f8254c188630.rmeta: crates/bench/src/bin/fig13_breakdown.rs Cargo.toml

crates/bench/src/bin/fig13_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
