/root/repo/target/debug/deps/daemon_loss-7ce5d07792e24d2d.d: tests/daemon_loss.rs Cargo.toml

/root/repo/target/debug/deps/libdaemon_loss-7ce5d07792e24d2d.rmeta: tests/daemon_loss.rs Cargo.toml

tests/daemon_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
