/root/repo/target/debug/deps/fig16_gpu_util-502f3e8963b794fd.d: crates/bench/src/bin/fig16_gpu_util.rs

/root/repo/target/debug/deps/libfig16_gpu_util-502f3e8963b794fd.rmeta: crates/bench/src/bin/fig16_gpu_util.rs

crates/bench/src/bin/fig16_gpu_util.rs:
