/root/repo/target/debug/deps/async_lifecycle-ad052af147528983.d: tests/async_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libasync_lifecycle-ad052af147528983.rmeta: tests/async_lifecycle.rs Cargo.toml

tests/async_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
