/root/repo/target/debug/deps/portus_repro-d5338573c706700c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libportus_repro-d5338573c706700c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
