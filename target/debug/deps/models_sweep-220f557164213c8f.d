/root/repo/target/debug/deps/models_sweep-220f557164213c8f.d: crates/bench/src/bin/models_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libmodels_sweep-220f557164213c8f.rmeta: crates/bench/src/bin/models_sweep.rs Cargo.toml

crates/bench/src/bin/models_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
