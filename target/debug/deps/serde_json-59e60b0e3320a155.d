/root/repo/target/debug/deps/serde_json-59e60b0e3320a155.d: .local-deps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-59e60b0e3320a155.rmeta: .local-deps/serde_json/src/lib.rs

.local-deps/serde_json/src/lib.rs:
