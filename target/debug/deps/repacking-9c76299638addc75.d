/root/repo/target/debug/deps/repacking-9c76299638addc75.d: tests/repacking.rs

/root/repo/target/debug/deps/repacking-9c76299638addc75: tests/repacking.rs

tests/repacking.rs:
