/root/repo/target/debug/deps/fig11_checkpoint-71dfc7ca15a2aab1.d: crates/bench/benches/fig11_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_checkpoint-71dfc7ca15a2aab1.rmeta: crates/bench/benches/fig11_checkpoint.rs Cargo.toml

crates/bench/benches/fig11_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
