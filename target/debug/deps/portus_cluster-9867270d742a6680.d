/root/repo/target/debug/deps/portus_cluster-9867270d742a6680.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libportus_cluster-9867270d742a6680.rmeta: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
