/root/repo/target/debug/deps/table1_breakdown-69b660b328e044fe.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/table1_breakdown-69b660b328e044fe: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
