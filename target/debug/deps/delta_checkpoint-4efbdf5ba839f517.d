/root/repo/target/debug/deps/delta_checkpoint-4efbdf5ba839f517.d: tests/delta_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libdelta_checkpoint-4efbdf5ba839f517.rmeta: tests/delta_checkpoint.rs Cargo.toml

tests/delta_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
