/root/repo/target/debug/deps/repacking-8806d4991364d005.d: tests/repacking.rs Cargo.toml

/root/repo/target/debug/deps/librepacking-8806d4991364d005.rmeta: tests/repacking.rs Cargo.toml

tests/repacking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
