/root/repo/target/debug/deps/event_queue-e70d8cdf2e85a269.d: tests/event_queue.rs Cargo.toml

/root/repo/target/debug/deps/libevent_queue-e70d8cdf2e85a269.rmeta: tests/event_queue.rs Cargo.toml

tests/event_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
