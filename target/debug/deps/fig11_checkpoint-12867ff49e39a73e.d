/root/repo/target/debug/deps/fig11_checkpoint-12867ff49e39a73e.d: crates/bench/benches/fig11_checkpoint.rs

/root/repo/target/debug/deps/libfig11_checkpoint-12867ff49e39a73e.rmeta: crates/bench/benches/fig11_checkpoint.rs

crates/bench/benches/fig11_checkpoint.rs:
