/root/repo/target/debug/deps/fleet_sweep-30d05ee6accee0c7.d: crates/bench/src/bin/fleet_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_sweep-30d05ee6accee0c7.rmeta: crates/bench/src/bin/fleet_sweep.rs Cargo.toml

crates/bench/src/bin/fleet_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
