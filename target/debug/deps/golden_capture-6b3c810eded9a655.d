/root/repo/target/debug/deps/golden_capture-6b3c810eded9a655.d: tests/golden_capture.rs

/root/repo/target/debug/deps/libgolden_capture-6b3c810eded9a655.rmeta: tests/golden_capture.rs

tests/golden_capture.rs:
