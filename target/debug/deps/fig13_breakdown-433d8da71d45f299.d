/root/repo/target/debug/deps/fig13_breakdown-433d8da71d45f299.d: crates/bench/src/bin/fig13_breakdown.rs

/root/repo/target/debug/deps/libfig13_breakdown-433d8da71d45f299.rmeta: crates/bench/src/bin/fig13_breakdown.rs

crates/bench/src/bin/fig13_breakdown.rs:
