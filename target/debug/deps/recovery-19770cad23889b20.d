/root/repo/target/debug/deps/recovery-19770cad23889b20.d: tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-19770cad23889b20.rmeta: tests/recovery.rs Cargo.toml

tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
