/root/repo/target/debug/deps/portus_bench-f7d32ffc141bb972.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/debug/deps/libportus_bench-f7d32ffc141bb972.rmeta: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
