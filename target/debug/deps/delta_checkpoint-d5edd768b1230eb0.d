/root/repo/target/debug/deps/delta_checkpoint-d5edd768b1230eb0.d: tests/delta_checkpoint.rs

/root/repo/target/debug/deps/libdelta_checkpoint-d5edd768b1230eb0.rmeta: tests/delta_checkpoint.rs

tests/delta_checkpoint.rs:
