/root/repo/target/debug/deps/portusctl-9ac57368f043ba1f.d: crates/core/src/bin/portusctl.rs

/root/repo/target/debug/deps/libportusctl-9ac57368f043ba1f.rmeta: crates/core/src/bin/portusctl.rs

crates/core/src/bin/portusctl.rs:
