/root/repo/target/debug/deps/portus_bench-0d5fa8710c232666.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs Cargo.toml

/root/repo/target/debug/deps/libportus_bench-0d5fa8710c232666.rmeta: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
