/root/repo/target/debug/deps/daemon_loss-b90eac0735b5164c.d: tests/daemon_loss.rs

/root/repo/target/debug/deps/daemon_loss-b90eac0735b5164c: tests/daemon_loss.rs

tests/daemon_loss.rs:
