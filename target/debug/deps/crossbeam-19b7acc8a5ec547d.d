/root/repo/target/debug/deps/crossbeam-19b7acc8a5ec547d.d: .local-deps/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-19b7acc8a5ec547d.rmeta: .local-deps/crossbeam/src/lib.rs

.local-deps/crossbeam/src/lib.rs:
