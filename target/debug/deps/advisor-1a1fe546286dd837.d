/root/repo/target/debug/deps/advisor-1a1fe546286dd837.d: crates/bench/src/bin/advisor.rs

/root/repo/target/debug/deps/libadvisor-1a1fe546286dd837.rmeta: crates/bench/src/bin/advisor.rs

crates/bench/src/bin/advisor.rs:
