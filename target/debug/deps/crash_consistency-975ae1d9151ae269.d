/root/repo/target/debug/deps/crash_consistency-975ae1d9151ae269.d: tests/crash_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_consistency-975ae1d9151ae269.rmeta: tests/crash_consistency.rs Cargo.toml

tests/crash_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
