/root/repo/target/debug/deps/edge_cases-7fd9e4410ad13a71.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-7fd9e4410ad13a71: tests/edge_cases.rs

tests/edge_cases.rs:
