/root/repo/target/debug/deps/fig16_gpu_util-f03f8e45e71a867f.d: crates/bench/src/bin/fig16_gpu_util.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_gpu_util-f03f8e45e71a867f.rmeta: crates/bench/src/bin/fig16_gpu_util.rs Cargo.toml

crates/bench/src/bin/fig16_gpu_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
