/root/repo/target/debug/deps/fig9_timeline-125979eaa6f058c4.d: crates/bench/src/bin/fig9_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_timeline-125979eaa6f058c4.rmeta: crates/bench/src/bin/fig9_timeline.rs Cargo.toml

crates/bench/src/bin/fig9_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
