/root/repo/target/debug/deps/event_queue-804ef2df8707161c.d: tests/event_queue.rs

/root/repo/target/debug/deps/event_queue-804ef2df8707161c: tests/event_queue.rs

tests/event_queue.rs:
