/root/repo/target/debug/deps/fleet_sweep-543b6ba4146ce89e.d: crates/bench/src/bin/fleet_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_sweep-543b6ba4146ce89e.rmeta: crates/bench/src/bin/fleet_sweep.rs Cargo.toml

crates/bench/src/bin/fleet_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
