/root/repo/target/debug/deps/fault_injection-72aca1866312bf84.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-72aca1866312bf84.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
