/root/repo/target/debug/deps/proptest-e47e385f6be1cb2d.d: .local-deps/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e47e385f6be1cb2d.rmeta: .local-deps/proptest/src/lib.rs

.local-deps/proptest/src/lib.rs:
