/root/repo/target/debug/deps/portus-57ccde5c35f29ac5.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/daemon.rs crates/core/src/error.rs crates/core/src/index.rs crates/core/src/model_map.rs crates/core/src/portusctl.rs crates/core/src/proto.rs crates/core/src/repack.rs crates/core/src/replica.rs

/root/repo/target/debug/deps/portus-57ccde5c35f29ac5: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/daemon.rs crates/core/src/error.rs crates/core/src/index.rs crates/core/src/model_map.rs crates/core/src/portusctl.rs crates/core/src/proto.rs crates/core/src/repack.rs crates/core/src/replica.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/daemon.rs:
crates/core/src/error.rs:
crates/core/src/index.rs:
crates/core/src/model_map.rs:
crates/core/src/portusctl.rs:
crates/core/src/proto.rs:
crates/core/src/repack.rs:
crates/core/src/replica.rs:
