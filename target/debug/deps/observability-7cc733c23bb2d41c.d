/root/repo/target/debug/deps/observability-7cc733c23bb2d41c.d: tests/observability.rs

/root/repo/target/debug/deps/libobservability-7cc733c23bb2d41c.rmeta: tests/observability.rs

tests/observability.rs:
