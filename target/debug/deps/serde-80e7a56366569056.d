/root/repo/target/debug/deps/serde-80e7a56366569056.d: .local-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-80e7a56366569056.rlib: .local-deps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-80e7a56366569056.rmeta: .local-deps/serde/src/lib.rs

.local-deps/serde/src/lib.rs:
