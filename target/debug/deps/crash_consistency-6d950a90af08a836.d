/root/repo/target/debug/deps/crash_consistency-6d950a90af08a836.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-6d950a90af08a836: tests/crash_consistency.rs

tests/crash_consistency.rs:
