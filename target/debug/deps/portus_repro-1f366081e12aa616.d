/root/repo/target/debug/deps/portus_repro-1f366081e12aa616.d: src/lib.rs

/root/repo/target/debug/deps/libportus_repro-1f366081e12aa616.rmeta: src/lib.rs

src/lib.rs:
