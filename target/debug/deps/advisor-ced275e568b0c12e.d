/root/repo/target/debug/deps/advisor-ced275e568b0c12e.d: crates/bench/src/bin/advisor.rs Cargo.toml

/root/repo/target/debug/deps/libadvisor-ced275e568b0c12e.rmeta: crates/bench/src/bin/advisor.rs Cargo.toml

crates/bench/src/bin/advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
