/root/repo/target/debug/deps/optimizer_state-e9c711604c045e62.d: tests/optimizer_state.rs

/root/repo/target/debug/deps/optimizer_state-e9c711604c045e62: tests/optimizer_state.rs

tests/optimizer_state.rs:
