/root/repo/target/debug/deps/portus_format-092d6dce22360a48.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libportus_format-092d6dce22360a48.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs Cargo.toml

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
