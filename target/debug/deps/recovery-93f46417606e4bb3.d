/root/repo/target/debug/deps/recovery-93f46417606e4bb3.d: tests/recovery.rs

/root/repo/target/debug/deps/librecovery-93f46417606e4bb3.rmeta: tests/recovery.rs

tests/recovery.rs:
