/root/repo/target/debug/deps/fig15_throughput-55949a5165028702.d: crates/bench/src/bin/fig15_throughput.rs

/root/repo/target/debug/deps/libfig15_throughput-55949a5165028702.rmeta: crates/bench/src/bin/fig15_throughput.rs

crates/bench/src/bin/fig15_throughput.rs:
