/root/repo/target/debug/deps/fig10_datapath-9d15319db4a9bb27.d: crates/bench/benches/fig10_datapath.rs

/root/repo/target/debug/deps/libfig10_datapath-9d15319db4a9bb27.rmeta: crates/bench/benches/fig10_datapath.rs

crates/bench/benches/fig10_datapath.rs:
