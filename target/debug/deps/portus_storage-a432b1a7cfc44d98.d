/root/repo/target/debug/deps/portus_storage-a432b1a7cfc44d98.d: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

/root/repo/target/debug/deps/libportus_storage-a432b1a7cfc44d98.rmeta: crates/storage/src/lib.rs crates/storage/src/backend.rs crates/storage/src/beegfs.rs crates/storage/src/checkpointer.rs crates/storage/src/error.rs crates/storage/src/local.rs

crates/storage/src/lib.rs:
crates/storage/src/backend.rs:
crates/storage/src/beegfs.rs:
crates/storage/src/checkpointer.rs:
crates/storage/src/error.rs:
crates/storage/src/local.rs:
