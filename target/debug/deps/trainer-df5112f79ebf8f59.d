/root/repo/target/debug/deps/trainer-df5112f79ebf8f59.d: tests/trainer.rs

/root/repo/target/debug/deps/libtrainer-df5112f79ebf8f59.rmeta: tests/trainer.rs

tests/trainer.rs:
