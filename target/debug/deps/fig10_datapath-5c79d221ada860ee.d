/root/repo/target/debug/deps/fig10_datapath-5c79d221ada860ee.d: crates/bench/src/bin/fig10_datapath.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_datapath-5c79d221ada860ee.rmeta: crates/bench/src/bin/fig10_datapath.rs Cargo.toml

crates/bench/src/bin/fig10_datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
