/root/repo/target/debug/deps/portus_pmem-dc901a55e021faf7.d: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

/root/repo/target/debug/deps/libportus_pmem-dc901a55e021faf7.rlib: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

/root/repo/target/debug/deps/libportus_pmem-dc901a55e021faf7.rmeta: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

crates/pmem/src/lib.rs:
crates/pmem/src/alloc.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/image.rs:
crates/pmem/src/typed.rs:
