/root/repo/target/debug/deps/portus_sim-77b28f2d4a6b8237.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/plan.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libportus_sim-77b28f2d4a6b8237.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/plan.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/plan.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
