/root/repo/target/debug/deps/portusctl_cli-cb1cb1b964c03f27.d: crates/core/tests/portusctl_cli.rs Cargo.toml

/root/repo/target/debug/deps/libportusctl_cli-cb1cb1b964c03f27.rmeta: crates/core/tests/portusctl_cli.rs Cargo.toml

crates/core/tests/portusctl_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_portusctl=placeholder:portusctl
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
