/root/repo/target/debug/deps/portus_rdma-f25c726e4407df07.d: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

/root/repo/target/debug/deps/libportus_rdma-f25c726e4407df07.rlib: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

/root/repo/target/debug/deps/libportus_rdma-f25c726e4407df07.rmeta: crates/rdma/src/lib.rs crates/rdma/src/control.rs crates/rdma/src/cq.rs crates/rdma/src/error.rs crates/rdma/src/fabric.rs crates/rdma/src/fault.rs crates/rdma/src/mr.rs crates/rdma/src/qp.rs

crates/rdma/src/lib.rs:
crates/rdma/src/control.rs:
crates/rdma/src/cq.rs:
crates/rdma/src/error.rs:
crates/rdma/src/fabric.rs:
crates/rdma/src/fault.rs:
crates/rdma/src/mr.rs:
crates/rdma/src/qp.rs:
