/root/repo/target/debug/deps/portus_repro-aaf51155ac4af8d1.d: src/lib.rs

/root/repo/target/debug/deps/libportus_repro-aaf51155ac4af8d1.rlib: src/lib.rs

/root/repo/target/debug/deps/libportus_repro-aaf51155ac4af8d1.rmeta: src/lib.rs

src/lib.rs:
