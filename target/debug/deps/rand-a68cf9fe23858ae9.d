/root/repo/target/debug/deps/rand-a68cf9fe23858ae9.d: .local-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a68cf9fe23858ae9.rlib: .local-deps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a68cf9fe23858ae9.rmeta: .local-deps/rand/src/lib.rs

.local-deps/rand/src/lib.rs:
