/root/repo/target/debug/deps/fig12_restore-7d82207be70d0947.d: crates/bench/src/bin/fig12_restore.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_restore-7d82207be70d0947.rmeta: crates/bench/src/bin/fig12_restore.rs Cargo.toml

crates/bench/src/bin/fig12_restore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
