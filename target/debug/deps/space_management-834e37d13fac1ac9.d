/root/repo/target/debug/deps/space_management-834e37d13fac1ac9.d: tests/space_management.rs

/root/repo/target/debug/deps/libspace_management-834e37d13fac1ac9.rmeta: tests/space_management.rs

tests/space_management.rs:
