/root/repo/target/debug/deps/distributed-acc9211851834db4.d: tests/distributed.rs

/root/repo/target/debug/deps/distributed-acc9211851834db4: tests/distributed.rs

tests/distributed.rs:
