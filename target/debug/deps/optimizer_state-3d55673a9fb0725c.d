/root/repo/target/debug/deps/optimizer_state-3d55673a9fb0725c.d: tests/optimizer_state.rs

/root/repo/target/debug/deps/liboptimizer_state-3d55673a9fb0725c.rmeta: tests/optimizer_state.rs

tests/optimizer_state.rs:
