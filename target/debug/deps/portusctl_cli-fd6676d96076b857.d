/root/repo/target/debug/deps/portusctl_cli-fd6676d96076b857.d: crates/core/tests/portusctl_cli.rs

/root/repo/target/debug/deps/libportusctl_cli-fd6676d96076b857.rmeta: crates/core/tests/portusctl_cli.rs

crates/core/tests/portusctl_cli.rs:

# env-dep:CARGO_BIN_EXE_portusctl=placeholder:portusctl
