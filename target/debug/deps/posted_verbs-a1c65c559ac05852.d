/root/repo/target/debug/deps/posted_verbs-a1c65c559ac05852.d: tests/posted_verbs.rs

/root/repo/target/debug/deps/libposted_verbs-a1c65c559ac05852.rmeta: tests/posted_verbs.rs

tests/posted_verbs.rs:
