/root/repo/target/debug/deps/portusctl-bb3517d0f775ab97.d: crates/core/src/bin/portusctl.rs

/root/repo/target/debug/deps/libportusctl-bb3517d0f775ab97.rmeta: crates/core/src/bin/portusctl.rs

crates/core/src/bin/portusctl.rs:
