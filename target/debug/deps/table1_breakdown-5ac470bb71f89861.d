/root/repo/target/debug/deps/table1_breakdown-5ac470bb71f89861.d: crates/bench/src/bin/table1_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_breakdown-5ac470bb71f89861.rmeta: crates/bench/src/bin/table1_breakdown.rs Cargo.toml

crates/bench/src/bin/table1_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
