/root/repo/target/debug/deps/striping-42de78c920512545.d: tests/striping.rs tests/golden/single_qp_trace.json

/root/repo/target/debug/deps/striping-42de78c920512545: tests/striping.rs tests/golden/single_qp_trace.json

tests/striping.rs:
tests/golden/single_qp_trace.json:
