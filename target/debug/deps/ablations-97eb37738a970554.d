/root/repo/target/debug/deps/ablations-97eb37738a970554.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-97eb37738a970554: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
