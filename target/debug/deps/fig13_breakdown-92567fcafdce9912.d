/root/repo/target/debug/deps/fig13_breakdown-92567fcafdce9912.d: crates/bench/src/bin/fig13_breakdown.rs

/root/repo/target/debug/deps/fig13_breakdown-92567fcafdce9912: crates/bench/src/bin/fig13_breakdown.rs

crates/bench/src/bin/fig13_breakdown.rs:
