/root/repo/target/debug/deps/fleet_sweep-5c46dffbe64754d0.d: crates/bench/src/bin/fleet_sweep.rs

/root/repo/target/debug/deps/fleet_sweep-5c46dffbe64754d0: crates/bench/src/bin/fleet_sweep.rs

crates/bench/src/bin/fleet_sweep.rs:
