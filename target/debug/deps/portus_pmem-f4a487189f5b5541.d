/root/repo/target/debug/deps/portus_pmem-f4a487189f5b5541.d: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

/root/repo/target/debug/deps/portus_pmem-f4a487189f5b5541: crates/pmem/src/lib.rs crates/pmem/src/alloc.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/image.rs crates/pmem/src/typed.rs

crates/pmem/src/lib.rs:
crates/pmem/src/alloc.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/image.rs:
crates/pmem/src/typed.rs:
