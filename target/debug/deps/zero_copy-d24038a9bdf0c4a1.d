/root/repo/target/debug/deps/zero_copy-d24038a9bdf0c4a1.d: tests/zero_copy.rs

/root/repo/target/debug/deps/libzero_copy-d24038a9bdf0c4a1.rmeta: tests/zero_copy.rs

tests/zero_copy.rs:
