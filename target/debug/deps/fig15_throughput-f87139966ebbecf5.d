/root/repo/target/debug/deps/fig15_throughput-f87139966ebbecf5.d: crates/bench/src/bin/fig15_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_throughput-f87139966ebbecf5.rmeta: crates/bench/src/bin/fig15_throughput.rs Cargo.toml

crates/bench/src/bin/fig15_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
