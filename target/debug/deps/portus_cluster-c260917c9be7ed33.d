/root/repo/target/debug/deps/portus_cluster-c260917c9be7ed33.d: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libportus_cluster-c260917c9be7ed33.rmeta: crates/cluster/src/lib.rs crates/cluster/src/advisor.rs crates/cluster/src/event.rs crates/cluster/src/failure.rs crates/cluster/src/harness.rs crates/cluster/src/ops.rs crates/cluster/src/placement.rs crates/cluster/src/policy.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/advisor.rs:
crates/cluster/src/event.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/harness.rs:
crates/cluster/src/ops.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/trace.rs:
