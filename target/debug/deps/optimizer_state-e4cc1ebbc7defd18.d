/root/repo/target/debug/deps/optimizer_state-e4cc1ebbc7defd18.d: tests/optimizer_state.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_state-e4cc1ebbc7defd18.rmeta: tests/optimizer_state.rs Cargo.toml

tests/optimizer_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
