/root/repo/target/debug/deps/portusctl-705617199cdb7c73.d: crates/core/src/bin/portusctl.rs Cargo.toml

/root/repo/target/debug/deps/libportusctl-705617199cdb7c73.rmeta: crates/core/src/bin/portusctl.rs Cargo.toml

crates/core/src/bin/portusctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
