/root/repo/target/debug/deps/run_all-d8c689d63b91d4c7.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-d8c689d63b91d4c7.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
