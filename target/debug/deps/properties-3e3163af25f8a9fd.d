/root/repo/target/debug/deps/properties-3e3163af25f8a9fd.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3e3163af25f8a9fd.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
