/root/repo/target/debug/deps/advisor-50021705380d9c2a.d: crates/bench/src/bin/advisor.rs Cargo.toml

/root/repo/target/debug/deps/libadvisor-50021705380d9c2a.rmeta: crates/bench/src/bin/advisor.rs Cargo.toml

crates/bench/src/bin/advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
