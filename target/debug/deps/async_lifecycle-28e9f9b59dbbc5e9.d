/root/repo/target/debug/deps/async_lifecycle-28e9f9b59dbbc5e9.d: tests/async_lifecycle.rs

/root/repo/target/debug/deps/libasync_lifecycle-28e9f9b59dbbc5e9.rmeta: tests/async_lifecycle.rs

tests/async_lifecycle.rs:
