/root/repo/target/debug/deps/space_sweep-84e14cd863861342.d: crates/bench/src/bin/space_sweep.rs

/root/repo/target/debug/deps/libspace_sweep-84e14cd863861342.rmeta: crates/bench/src/bin/space_sweep.rs

crates/bench/src/bin/space_sweep.rs:
