/root/repo/target/debug/deps/portus_bench-ef1d59d4fb39857c.d: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

/root/repo/target/debug/deps/libportus_bench-ef1d59d4fb39857c.rmeta: crates/bench/src/lib.rs crates/bench/src/analytic.rs crates/bench/src/realplane.rs

crates/bench/src/lib.rs:
crates/bench/src/analytic.rs:
crates/bench/src/realplane.rs:
