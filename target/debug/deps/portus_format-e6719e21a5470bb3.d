/root/repo/target/debug/deps/portus_format-e6719e21a5470bb3.d: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

/root/repo/target/debug/deps/libportus_format-e6719e21a5470bb3.rmeta: crates/format/src/lib.rs crates/format/src/container.rs crates/format/src/cost.rs crates/format/src/error.rs

crates/format/src/lib.rs:
crates/format/src/container.rs:
crates/format/src/cost.rs:
crates/format/src/error.rs:
