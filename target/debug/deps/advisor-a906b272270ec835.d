/root/repo/target/debug/deps/advisor-a906b272270ec835.d: crates/bench/src/bin/advisor.rs

/root/repo/target/debug/deps/advisor-a906b272270ec835: crates/bench/src/bin/advisor.rs

crates/bench/src/bin/advisor.rs:
