/root/repo/target/debug/deps/space_sweep-66988247f2042aed.d: crates/bench/src/bin/space_sweep.rs

/root/repo/target/debug/deps/space_sweep-66988247f2042aed: crates/bench/src/bin/space_sweep.rs

crates/bench/src/bin/space_sweep.rs:
