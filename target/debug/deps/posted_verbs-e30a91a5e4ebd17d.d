/root/repo/target/debug/deps/posted_verbs-e30a91a5e4ebd17d.d: tests/posted_verbs.rs Cargo.toml

/root/repo/target/debug/deps/libposted_verbs-e30a91a5e4ebd17d.rmeta: tests/posted_verbs.rs Cargo.toml

tests/posted_verbs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
