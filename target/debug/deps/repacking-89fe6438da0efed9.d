/root/repo/target/debug/deps/repacking-89fe6438da0efed9.d: tests/repacking.rs

/root/repo/target/debug/deps/librepacking-89fe6438da0efed9.rmeta: tests/repacking.rs

tests/repacking.rs:
