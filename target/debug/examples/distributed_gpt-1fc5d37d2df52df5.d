/root/repo/target/debug/examples/distributed_gpt-1fc5d37d2df52df5.d: examples/distributed_gpt.rs

/root/repo/target/debug/examples/libdistributed_gpt-1fc5d37d2df52df5.rmeta: examples/distributed_gpt.rs

examples/distributed_gpt.rs:
