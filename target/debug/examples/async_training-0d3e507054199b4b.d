/root/repo/target/debug/examples/async_training-0d3e507054199b4b.d: examples/async_training.rs

/root/repo/target/debug/examples/libasync_training-0d3e507054199b4b.rmeta: examples/async_training.rs

examples/async_training.rs:
