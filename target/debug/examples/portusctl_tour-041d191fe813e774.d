/root/repo/target/debug/examples/portusctl_tour-041d191fe813e774.d: examples/portusctl_tour.rs

/root/repo/target/debug/examples/portusctl_tour-041d191fe813e774: examples/portusctl_tour.rs

examples/portusctl_tour.rs:
