/root/repo/target/debug/examples/crash_recovery-338f9c548685f021.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/libcrash_recovery-338f9c548685f021.rmeta: examples/crash_recovery.rs

examples/crash_recovery.rs:
