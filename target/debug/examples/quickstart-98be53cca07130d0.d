/root/repo/target/debug/examples/quickstart-98be53cca07130d0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-98be53cca07130d0.rmeta: examples/quickstart.rs

examples/quickstart.rs:
