/root/repo/target/debug/examples/async_training-25057be00b86d776.d: examples/async_training.rs

/root/repo/target/debug/examples/async_training-25057be00b86d776: examples/async_training.rs

examples/async_training.rs:
