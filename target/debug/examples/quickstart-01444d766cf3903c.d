/root/repo/target/debug/examples/quickstart-01444d766cf3903c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-01444d766cf3903c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
