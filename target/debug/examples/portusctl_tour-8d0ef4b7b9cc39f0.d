/root/repo/target/debug/examples/portusctl_tour-8d0ef4b7b9cc39f0.d: examples/portusctl_tour.rs

/root/repo/target/debug/examples/libportusctl_tour-8d0ef4b7b9cc39f0.rmeta: examples/portusctl_tour.rs

examples/portusctl_tour.rs:
