/root/repo/target/debug/examples/quickstart-c73670fded0778c5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c73670fded0778c5: examples/quickstart.rs

examples/quickstart.rs:
