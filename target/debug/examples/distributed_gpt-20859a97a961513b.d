/root/repo/target/debug/examples/distributed_gpt-20859a97a961513b.d: examples/distributed_gpt.rs

/root/repo/target/debug/examples/distributed_gpt-20859a97a961513b: examples/distributed_gpt.rs

examples/distributed_gpt.rs:
