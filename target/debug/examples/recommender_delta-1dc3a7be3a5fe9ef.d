/root/repo/target/debug/examples/recommender_delta-1dc3a7be3a5fe9ef.d: examples/recommender_delta.rs

/root/repo/target/debug/examples/librecommender_delta-1dc3a7be3a5fe9ef.rmeta: examples/recommender_delta.rs

examples/recommender_delta.rs:
