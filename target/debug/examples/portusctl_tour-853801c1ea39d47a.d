/root/repo/target/debug/examples/portusctl_tour-853801c1ea39d47a.d: examples/portusctl_tour.rs Cargo.toml

/root/repo/target/debug/examples/libportusctl_tour-853801c1ea39d47a.rmeta: examples/portusctl_tour.rs Cargo.toml

examples/portusctl_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
