/root/repo/target/debug/examples/async_training-a491072d536c7ee3.d: examples/async_training.rs Cargo.toml

/root/repo/target/debug/examples/libasync_training-a491072d536c7ee3.rmeta: examples/async_training.rs Cargo.toml

examples/async_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
