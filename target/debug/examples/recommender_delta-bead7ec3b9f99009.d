/root/repo/target/debug/examples/recommender_delta-bead7ec3b9f99009.d: examples/recommender_delta.rs Cargo.toml

/root/repo/target/debug/examples/librecommender_delta-bead7ec3b9f99009.rmeta: examples/recommender_delta.rs Cargo.toml

examples/recommender_delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
