/root/repo/target/debug/examples/recommender_delta-299ef828c33698c0.d: examples/recommender_delta.rs

/root/repo/target/debug/examples/recommender_delta-299ef828c33698c0: examples/recommender_delta.rs

examples/recommender_delta.rs:
