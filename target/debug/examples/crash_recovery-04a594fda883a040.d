/root/repo/target/debug/examples/crash_recovery-04a594fda883a040.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-04a594fda883a040: examples/crash_recovery.rs

examples/crash_recovery.rs:
