/root/repo/target/debug/examples/distributed_gpt-74c7fb25ff89dbb1.d: examples/distributed_gpt.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_gpt-74c7fb25ff89dbb1.rmeta: examples/distributed_gpt.rs Cargo.toml

examples/distributed_gpt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
