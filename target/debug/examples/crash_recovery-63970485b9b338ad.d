/root/repo/target/debug/examples/crash_recovery-63970485b9b338ad.d: examples/crash_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_recovery-63970485b9b338ad.rmeta: examples/crash_recovery.rs Cargo.toml

examples/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
