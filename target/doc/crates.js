window.ALL_CRATES = ["portus_repro"];
//{"start":21,"fragment_lengths":[14]}