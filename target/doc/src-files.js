createSrcSidebar('[["portus_repro",["",[],["lib.rs"]]]]');
//{"start":19,"fragment_lengths":[35]}