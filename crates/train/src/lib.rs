//! # portus-train
//!
//! The training-loop integration the paper promises as a "user-friendly
//! solution for DNN checkpointing" (§I): a [`Trainer`] owns a model
//! instance and a [`PortusClient`] connection and drives the
//! forward/backward/update cycle of Fig. 8, invoking the configured
//! [`TrainPolicy`] at the right phase boundaries:
//!
//! * synchronous — block for the pull at each checkpoint iteration;
//! * asynchronous — issue the pull at the iteration boundary, run
//!   forward/backward under it, and settle at the update-phase barrier
//!   ([`PortusClient::guard_update`]);
//! * incremental — track dirty tensors across iterations and send only
//!   the changed ones ([`PortusClient::checkpoint_delta`]).
//!
//! After a failure, [`Trainer::recover`] restores the latest complete
//! version and rewinds the iteration counter to the recovered
//! checkpoint, so training resumes exactly where durability left off.
//!
//! # Examples
//!
//! ```
//! use portus::{DaemonConfig, PortusClient, PortusDaemon};
//! use portus_dnn::{test_spec, IterationProfile, Materialization, ModelInstance};
//! use portus_mem::GpuDevice;
//! use portus_pmem::{PmemDevice, PmemMode};
//! use portus_rdma::{Fabric, NodeId};
//! use portus_sim::{SimContext, SimDuration};
//! use portus_train::{TrainPolicy, Trainer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = SimContext::icdcs24();
//! let fabric = Fabric::new(ctx.clone());
//! let compute = fabric.add_nic(NodeId(0));
//! fabric.add_nic(NodeId(1));
//! let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 64 << 20);
//! let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default())?;
//! let gpu = GpuDevice::new(ctx, 0, 1 << 30);
//!
//! let model = ModelInstance::materialize(
//!     &test_spec("toy", 4, 65536), &gpu, 1, Materialization::Owned)?;
//! let client = PortusClient::connect(&daemon, compute);
//! let profile = IterationProfile::from_total(SimDuration::from_millis(50));
//!
//! let mut trainer = Trainer::new(client, model, profile,
//!     TrainPolicy::Async { every: 5 })?;
//! let stats = trainer.run(20)?;
//! assert_eq!(stats.iterations, 20);
//! assert_eq!(stats.checkpoints_completed, 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sharded;

pub use sharded::ShardedTrainer;

use std::collections::BTreeMap;

use portus::{CheckpointReport, PortusClient, PortusResult};
use portus_dnn::{IterationProfile, ModelInstance};
use portus_sim::SimDuration;

/// How (and how often) the trainer checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainPolicy {
    /// Never checkpoint.
    None,
    /// Block for the full pull every `every` iterations (Fig. 9c).
    Sync {
        /// Checkpoint interval in iterations.
        every: u64,
    },
    /// Issue the pull and only settle at the update barrier (Fig. 9d).
    Async {
        /// Checkpoint interval in iterations.
        every: u64,
    },
    /// Incremental: send only tensors dirtied since the last
    /// checkpoint (extension; DESIGN.md §9).
    Delta {
        /// Checkpoint interval in iterations.
        every: u64,
    },
}

impl TrainPolicy {
    fn interval(self) -> Option<u64> {
        match self {
            TrainPolicy::None => None,
            TrainPolicy::Sync { every }
            | TrainPolicy::Async { every }
            | TrainPolicy::Delta { every } => Some(every.max(1)),
        }
    }
}

/// Counters accumulated by [`Trainer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainerStats {
    /// Iterations executed by this `run` call.
    pub iterations: u64,
    /// Checkpoints whose completion was confirmed.
    pub checkpoints_completed: u64,
    /// Bytes that crossed the fabric for checkpointing.
    pub bytes_checkpointed: u64,
    /// Bytes carried over device-locally (delta policy only).
    pub bytes_carried_over: u64,
    /// Virtual time spent blocked on checkpointing (sync pulls, async
    /// update barriers).
    pub checkpoint_stall: SimDuration,
    /// Virtual time charged for compute phases.
    pub compute_time: SimDuration,
}

/// A training driver bound to one model and one daemon connection.
///
/// See the crate docs for a complete example.
#[derive(Debug)]
pub struct Trainer {
    client: PortusClient,
    model: ModelInstance,
    profile: IterationProfile,
    policy: TrainPolicy,
    /// Global iteration counter (survives across `run` calls; rewound
    /// by `recover`).
    step: u64,
    /// Iteration covered by the last *completed* checkpoint.
    last_durable_step: u64,
    /// Version loaded by the most recent recover, if any.
    last_restored_version: Option<u64>,
    /// Completed checkpoint versions → the iteration each one covers.
    /// Version numbers count *successful* checkpoints, so after a
    /// failed round they stop tracking `step / interval`; this map is
    /// the ground truth sharded recovery uses to translate a common
    /// version back into a step.
    durable_versions: BTreeMap<u64, u64>,
    stats: TrainerStats,
}

impl Trainer {
    /// Registers `model` with the daemon behind `client` and builds the
    /// trainer.
    ///
    /// # Errors
    ///
    /// Registration failures (structure mismatch, table full).
    pub fn new(
        client: PortusClient,
        model: ModelInstance,
        profile: IterationProfile,
        policy: TrainPolicy,
    ) -> PortusResult<Trainer> {
        client.register_model(&model)?;
        Ok(Trainer {
            client,
            model,
            profile,
            policy,
            step: 0,
            last_durable_step: 0,
            last_restored_version: None,
            durable_versions: BTreeMap::new(),
            stats: TrainerStats::default(),
        })
    }

    /// The model name this trainer drives.
    pub fn model_name(&self) -> &str {
        &self.model.spec().name
    }

    /// Global iteration counter.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The last iteration whose state is durable on PMem.
    pub fn last_durable_step(&self) -> u64 {
        self.last_durable_step
    }

    /// The model (e.g. to inspect or checksum between runs).
    pub fn model(&self) -> &ModelInstance {
        &self.model
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> TrainerStats {
        self.stats
    }

    /// The policy's checkpoint interval, if it checkpoints.
    pub fn policy_interval(&self) -> Option<u64> {
        self.policy.interval()
    }

    /// The version loaded by the most recent [`Trainer::recover`] /
    /// [`Trainer::recover_to`], if any.
    pub fn last_restored_version(&self) -> Option<u64> {
        self.last_restored_version
    }

    fn ctx(&self) -> &portus_sim::SimContext {
        self.client.ctx()
    }

    fn charge_compute(&mut self, d: SimDuration) {
        self.ctx().charge(d);
        self.stats.compute_time += d;
    }

    fn note_completed(&mut self, report: &CheckpointReport, covered_step: u64) {
        self.stats.checkpoints_completed += 1;
        self.stats.bytes_checkpointed += report.bytes;
        self.last_durable_step = self.last_durable_step.max(covered_step);
        self.durable_versions.insert(report.version, covered_step);
    }

    /// Runs `iterations` training iterations under the policy.
    ///
    /// # Errors
    ///
    /// Checkpoint/restore failures surfaced by the daemon.
    pub fn run(&mut self, iterations: u64) -> PortusResult<TrainerStats> {
        let start_stats = self.stats;
        let name = self.model.spec().name.clone();
        // Maps an in-flight async pull to the step it covers.
        let mut inflight_covers: Option<u64> = None;

        for _ in 0..iterations {
            self.step += 1;
            self.stats.iterations += 1;
            let trigger = self
                .policy
                .interval()
                .is_some_and(|k| self.step.is_multiple_of(k));

            // Forward + backward: parameters are read-only; an async
            // pull proceeds underneath.
            self.charge_compute(self.profile.forward + self.profile.backward);

            // Update barrier: settle any in-flight pull before mutating
            // parameters (Fig. 8).
            if let Some(covered) = inflight_covers.take() {
                let t0 = self.ctx().clock.now();
                if let Some(report) = self.client.guard_update(&name)? {
                    let stall = self.ctx().clock.now().saturating_since(t0);
                    self.stats.checkpoint_stall += stall;
                    self.note_completed(&report, covered);
                }
            }

            // Update phase.
            self.model.train_step();
            self.charge_compute(self.profile.update);

            if !trigger {
                continue;
            }
            match self.policy {
                TrainPolicy::None => {}
                TrainPolicy::Sync { .. } => {
                    let t0 = self.ctx().clock.now();
                    let report = self.client.checkpoint(&name)?;
                    let stall = self.ctx().clock.now().saturating_since(t0);
                    self.stats.checkpoint_stall += stall;
                    self.model.take_dirty();
                    self.note_completed(&report, self.step);
                }
                TrainPolicy::Async { .. } => {
                    self.client.checkpoint_async(&name)?;
                    self.model.take_dirty();
                    inflight_covers = Some(self.step);
                }
                TrainPolicy::Delta { .. } => {
                    let dirty = self.model.take_dirty();
                    let t0 = self.ctx().clock.now();
                    let report = self.client.checkpoint_delta(&name, &dirty)?;
                    let stall = self.ctx().clock.now().saturating_since(t0);
                    self.stats.checkpoint_stall += stall;
                    self.stats.bytes_checkpointed += report.pulled_bytes;
                    self.stats.bytes_carried_over += report.copied_bytes;
                    self.stats.checkpoints_completed += 1;
                    self.last_durable_step = self.step;
                    self.durable_versions.insert(report.version, self.step);
                }
            }
        }

        // Settle a pull still in flight at the end of the run.
        if let Some(covered) = inflight_covers {
            let t0 = self.ctx().clock.now();
            if let Some(report) = self.client.guard_update(&name)? {
                let stall = self.ctx().clock.now().saturating_since(t0);
                self.stats.checkpoint_stall += stall;
                self.note_completed(&report, covered);
            }
        }

        Ok(TrainerStats {
            iterations: self.stats.iterations - start_stats.iterations,
            checkpoints_completed: self.stats.checkpoints_completed
                - start_stats.checkpoints_completed,
            bytes_checkpointed: self.stats.bytes_checkpointed - start_stats.bytes_checkpointed,
            bytes_carried_over: self.stats.bytes_carried_over - start_stats.bytes_carried_over,
            checkpoint_stall: self.stats.checkpoint_stall - start_stats.checkpoint_stall,
            compute_time: self.stats.compute_time - start_stats.compute_time,
        })
    }

    /// Recovers after a (simulated) failure: restores the latest
    /// complete version into the model and rewinds the iteration
    /// counter to the step that version covered. Returns the number of
    /// iterations of lost work.
    ///
    /// # Errors
    ///
    /// `NoValidCheckpoint` (wrapped by the daemon) if nothing durable
    /// exists, and restore failures.
    pub fn recover(&mut self) -> PortusResult<u64> {
        let target = self.last_durable_step;
        self.recover_to(target)
    }

    /// Like [`Trainer::recover`], but rewinds the iteration counter to
    /// an explicit `target_step` (used by sharded jobs, whose
    /// whole-model recovery point is the *minimum* durable step across
    /// shards). The daemon always serves its latest complete version;
    /// `target_step` only affects the local counter.
    ///
    /// # Errors
    ///
    /// Restore failures.
    pub fn recover_to(&mut self, target_step: u64) -> PortusResult<u64> {
        self.recover_version_to(None, target_step)
    }

    /// Every `Done` version the daemon can currently serve for this
    /// model, ascending. Sharded recovery intersects these across
    /// shards to find the newest version *every* shard still holds.
    ///
    /// # Errors
    ///
    /// Listing failures (daemon unreachable).
    pub fn available_versions(&self) -> PortusResult<Vec<u64>> {
        let name = &self.model.spec().name;
        Ok(self
            .client
            .list_models()?
            .into_iter()
            .find(|m| &m.name == name)
            .map(|m| m.done_versions)
            .unwrap_or_default())
    }

    /// The iteration a completed checkpoint version covers, if this
    /// trainer observed it complete.
    pub fn covered_step_of(&self, version: u64) -> Option<u64> {
        self.durable_versions.get(&version).copied()
    }

    /// Like [`Trainer::recover_to`], but pinned to a specific `Done`
    /// `version` (`None` = the daemon's latest). Sharded recovery pins
    /// every shard to the newest *common* version this way, so no
    /// restore can mix versions across shards.
    ///
    /// # Errors
    ///
    /// Restore failures; `NoValidCheckpoint` if `version` is no longer
    /// on PMem.
    pub fn recover_version_to(
        &mut self,
        version: Option<u64>,
        target_step: u64,
    ) -> PortusResult<u64> {
        let report = self.client.restore_version(&self.model, version)?;
        self.last_restored_version = Some(report.version);
        let lost = self.step.saturating_sub(target_step);
        self.step = target_step;
        self.last_durable_step = self.last_durable_step.min(target_step);
        // Everything is clean relative to the restored checkpoint.
        self.model.take_dirty();
        Ok(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus::{DaemonConfig, PortusDaemon};
    use portus_dnn::{test_spec, Materialization};
    use portus_mem::GpuDevice;
    use portus_pmem::{PmemDevice, PmemMode};
    use portus_rdma::{Fabric, NodeId};
    use portus_sim::SimContext;

    fn trainer(policy: TrainPolicy, layers: usize) -> Trainer {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 128 << 20);
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx, 0, 1 << 30);
        let model = ModelInstance::materialize(
            &test_spec("trainee", layers, 64 * 1024),
            &gpu,
            7,
            Materialization::Owned,
        )
        .unwrap();
        let client = PortusClient::connect(&daemon, compute);
        let profile = IterationProfile::from_total(SimDuration::from_millis(40));
        Trainer::new(client, model, profile, policy).unwrap()
    }

    #[test]
    fn sync_policy_checkpoints_on_schedule() {
        let mut t = trainer(TrainPolicy::Sync { every: 5 }, 6);
        let stats = t.run(23).unwrap();
        assert_eq!(stats.iterations, 23);
        assert_eq!(stats.checkpoints_completed, 4); // at 5, 10, 15, 20
        assert_eq!(t.last_durable_step(), 20);
        assert!(stats.checkpoint_stall > SimDuration::ZERO);
        assert_eq!(stats.bytes_checkpointed, 4 * 6 * 64 * 1024);
    }

    #[test]
    fn async_policy_completes_all_pulls() {
        let mut t = trainer(TrainPolicy::Async { every: 4 }, 6);
        let stats = t.run(16).unwrap();
        assert_eq!(stats.checkpoints_completed, 4);
        assert_eq!(t.last_durable_step(), 16);
    }

    #[test]
    fn delta_policy_sends_fewer_bytes_than_sync() {
        // Sparse workload via delta: after the first full version, each
        // interval only the tensors touched by train_step (all, here) —
        // so run a second trainer where updates are implicit; instead
        // compare against the carried-over accounting directly.
        let mut t = trainer(TrainPolicy::Delta { every: 3 }, 8);
        let stats = t.run(9).unwrap();
        assert_eq!(stats.checkpoints_completed, 3);
        // train_step dirties everything, so carry-over only helps when a
        // tensor was untouched — exercised via the sparse API below.
        assert_eq!(stats.bytes_carried_over, 0);
        assert!(stats.bytes_checkpointed > 0);
        let _ = t;
    }

    #[test]
    fn recover_rewinds_to_last_durable_step() {
        let mut t = trainer(TrainPolicy::Sync { every: 10 }, 4);
        t.run(25).unwrap();
        assert_eq!(t.step(), 25);
        assert_eq!(t.last_durable_step(), 20);
        let durable_state_unknown_here = t.model().model_checksum();
        let lost = t.recover().unwrap();
        assert_eq!(lost, 5);
        assert_eq!(t.step(), 20);
        // Restored content differs from the step-25 state.
        assert_ne!(t.model().model_checksum(), durable_state_unknown_here);
        // Training continues; the next checkpoint is version 3.
        let stats = t.run(10).unwrap();
        assert_eq!(stats.checkpoints_completed, 1);
        assert_eq!(t.last_durable_step(), 30);
    }

    #[test]
    fn recover_without_checkpoints_fails() {
        let mut t = trainer(TrainPolicy::None, 3);
        t.run(5).unwrap();
        assert!(t.recover().is_err());
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut t = trainer(TrainPolicy::Sync { every: 2 }, 3);
        t.run(4).unwrap();
        t.run(4).unwrap();
        assert_eq!(t.stats().iterations, 8);
        assert_eq!(t.stats().checkpoints_completed, 4);
        assert_eq!(t.step(), 8);
    }
}
