//! Sharded training: the §V-E scenario through the Trainer layer.
//!
//! A [`ShardedTrainer`] drives one [`Trainer`] per Megatron shard in
//! lockstep — the way a model-parallel job steps all ranks together —
//! and checkpoints all shards at the same iteration boundaries, issuing
//! the pulls concurrently (asynchronously) and settling them all at the
//! barrier. Restore brings every shard back to the same version, which
//! is the aggregation requirement Motivation 1 of the paper calls out.

use std::collections::BTreeSet;

use portus::{PortusClient, PortusError, PortusResult, ShardFailure};
use portus_dnn::{IterationProfile, ModelInstance};
use portus_sim::SimDuration;

use crate::{TrainPolicy, Trainer, TrainerStats};

/// A set of shard trainers stepped in lockstep.
#[derive(Debug)]
pub struct ShardedTrainer {
    shards: Vec<Trainer>,
}

impl ShardedTrainer {
    /// Builds one trainer per `(client, shard instance)` pair; all
    /// shards share the profile and policy.
    ///
    /// # Errors
    ///
    /// Registration failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(
        shards: Vec<(PortusClient, ModelInstance)>,
        profile: IterationProfile,
        policy: TrainPolicy,
    ) -> PortusResult<ShardedTrainer> {
        assert!(!shards.is_empty(), "a sharded job needs at least one shard");
        let shards = shards
            .into_iter()
            .map(|(client, model)| Trainer::new(client, model, profile, policy))
            .collect::<PortusResult<Vec<_>>>()?;
        Ok(ShardedTrainer { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard trainers (e.g. to checksum individual shards).
    pub fn shards(&self) -> &[Trainer] {
        &self.shards
    }

    /// Global iteration counter (identical across shards by
    /// construction).
    pub fn step(&self) -> u64 {
        self.shards[0].step()
    }

    /// The last iteration durable on PMem across **all** shards — the
    /// whole-model recovery point (a version only counts when every
    /// shard has it).
    pub fn last_durable_step(&self) -> u64 {
        self.shards
            .iter()
            .map(Trainer::last_durable_step)
            .min()
            .unwrap_or(0)
    }

    /// Runs `iterations` lockstep iterations on every shard. Returns
    /// per-shard stats.
    ///
    /// Shards run their iteration batches sequentially here (one driver
    /// thread); the *checkpoint pulls* still interleave on the daemon
    /// side under the async policy because each shard has its own
    /// connection/worker.
    ///
    /// Every shard is driven all the way to the barrier iteration even
    /// when some shards' checkpoints fail — a shard that errors keeps
    /// stepping (its checkpoint rounds may keep failing) so no shard
    /// silently falls behind the others' iteration counter. The
    /// failures are collected and surfaced together once the barrier
    /// is reached.
    ///
    /// # Errors
    ///
    /// [`PortusError::ShardBarrier`] when one or more shards failed a
    /// checkpoint on the way to the barrier; every shard is still at
    /// the barrier step when it is returned.
    pub fn run(&mut self, iterations: u64) -> PortusResult<Vec<TrainerStats>> {
        let start: Vec<TrainerStats> = self.shards.iter().map(Trainer::stats).collect();
        let start_step = self.shards[0].step();
        let barrier_step = start_step + iterations;
        let interval = self.shards[0].policy_interval();
        // First failure per shard; later rounds on a sick shard
        // usually repeat the same error.
        let mut failures: Vec<Option<ShardFailure>> = vec![None; self.shards.len()];

        // Step in interval-sized batches so shards stay aligned at
        // checkpoint boundaries.
        let mut cursor = start_step;
        while cursor < barrier_step {
            let batch = (barrier_step - cursor)
                .min(interval.unwrap_or(barrier_step - cursor))
                .max(1);
            let next = cursor + batch;
            for (shard, trainer) in self.shards.iter_mut().enumerate() {
                while trainer.step() < next {
                    let before = trainer.step();
                    if let Err(e) = trainer.run(next - trainer.step()) {
                        if failures[shard].is_none() {
                            failures[shard] = Some(ShardFailure {
                                shard,
                                model: trainer.model_name().to_string(),
                                error: e.to_string(),
                            });
                        }
                        // `Trainer::run` completes the iteration's
                        // compute before its checkpoint can fail, so
                        // the counter must have moved — otherwise the
                        // realignment loop could not terminate.
                        assert!(
                            trainer.step() > before,
                            "shard {shard} made no progress after a failure"
                        );
                    }
                }
            }
            cursor = next;
        }

        let out = self
            .shards
            .iter()
            .zip(&start)
            .map(|(t, s0)| {
                let s = t.stats();
                TrainerStats {
                    iterations: s.iterations - s0.iterations,
                    checkpoints_completed: s.checkpoints_completed - s0.checkpoints_completed,
                    bytes_checkpointed: s.bytes_checkpointed - s0.bytes_checkpointed,
                    bytes_carried_over: s.bytes_carried_over - s0.bytes_carried_over,
                    checkpoint_stall: s.checkpoint_stall - s0.checkpoint_stall,
                    compute_time: s.compute_time - s0.compute_time,
                }
            })
            .collect::<Vec<_>>();
        let failures: Vec<ShardFailure> = failures.into_iter().flatten().collect();
        if failures.is_empty() {
            Ok(out)
        } else {
            Err(PortusError::ShardBarrier {
                barrier_step,
                failures,
            })
        }
    }

    /// Recovers every shard to the newest checkpoint version **every**
    /// shard still holds — the whole-model recovery point. The common
    /// version is computed by intersecting each daemon's `Done`
    /// versions and each shard's restore is *pinned* to it, so no
    /// interleaving of crashes and partially completed checkpoint
    /// rounds can mix versions across shards.
    ///
    /// Returns the largest number of lost iterations across shards.
    ///
    /// # Errors
    ///
    /// [`PortusError::Daemon`] when no version is durable on every
    /// shard, plus restore/listing failures.
    pub fn recover(&mut self) -> PortusResult<u64> {
        // Intersect the versions every shard's daemon can still serve.
        let mut common: Option<BTreeSet<u64>> = None;
        for trainer in &self.shards {
            let held: BTreeSet<u64> = trainer.available_versions()?.into_iter().collect();
            common = Some(match common {
                None => held,
                Some(c) => c.intersection(&held).copied().collect(),
            });
        }
        let version = common
            .unwrap_or_default()
            .into_iter()
            .next_back()
            .ok_or_else(|| {
                PortusError::Daemon(
                    "sharded recovery: no checkpoint version is durable on every shard".into(),
                )
            })?;
        // Translate the version back to the iteration it covers; any
        // shard that watched it complete knows (after a failed round
        // the counters can disagree, in which case the *latest*
        // observation wins — all shards checkpoint at the same
        // barrier, so completions of one version cover one step).
        let target = self
            .shards
            .iter()
            .filter_map(|t| t.covered_step_of(version))
            .max()
            .unwrap_or_else(|| self.last_durable_step());
        let mut lost_max = 0;
        for trainer in &mut self.shards {
            lost_max = lost_max.max(trainer.recover_version_to(Some(version), target)?);
        }
        Ok(lost_max)
    }

    /// Total virtual stall across shards (diagnostic).
    pub fn total_stall(&self) -> SimDuration {
        self.shards.iter().map(|t| t.stats().checkpoint_stall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus::{DaemonConfig, PortusDaemon};
    use portus_dnn::{shard_model, zoo, Materialization, ParallelConfig};
    use portus_mem::GpuDevice;
    use portus_pmem::{PmemDevice, PmemMode};
    use portus_rdma::{Fabric, FaultSpec, NodeId};
    use portus_sim::SimContext;

    fn sharded(policy: TrainPolicy) -> ShardedTrainer {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        fabric.add_nic(NodeId(100));
        let spec = zoo::gpt_with("sharded-gpt", 64, 2, 512);
        let shards = shard_model(&spec, ParallelConfig::grid(2, 2));
        let pmem = PmemDevice::new(
            ctx.clone(),
            PmemMode::DevDax,
            4 * spec.total_bytes() + (64 << 20),
        );
        let daemon =
            PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();
        let pairs = shards
            .iter()
            .enumerate()
            .map(|(rank, shard)| {
                let node = NodeId(rank as u32);
                let nic = fabric.nic(node).unwrap_or_else(|_| fabric.add_nic(node));
                let gpu = GpuDevice::new(ctx.clone(), rank as u32, 1 << 30);
                let model = ModelInstance::materialize(
                    &shard.spec,
                    &gpu,
                    rank as u64,
                    Materialization::Owned,
                )
                .unwrap();
                (PortusClient::connect(&daemon, nic), model)
            })
            .collect();
        ShardedTrainer::new(
            pairs,
            IterationProfile::from_total(SimDuration::from_millis(30)),
            policy,
        )
        .unwrap()
    }

    #[test]
    fn lockstep_run_keeps_shards_aligned() {
        let mut st = sharded(TrainPolicy::Sync { every: 4 });
        let stats = st.run(12).unwrap();
        assert_eq!(st.shard_count(), 4);
        assert!(stats.iter().all(|s| s.iterations == 12));
        assert!(stats.iter().all(|s| s.checkpoints_completed == 3));
        assert_eq!(st.step(), 12);
        assert_eq!(st.last_durable_step(), 12);
    }

    #[test]
    fn whole_model_recovery_point_is_the_minimum() {
        let mut st = sharded(TrainPolicy::Sync { every: 5 });
        st.run(13).unwrap();
        assert_eq!(st.last_durable_step(), 10, "13 iters, ckpt at 5 and 10");
    }

    #[test]
    fn sharded_recover_restores_a_consistent_version() {
        let mut st = sharded(TrainPolicy::Sync { every: 5 });
        st.run(12).unwrap();
        let lost = st.recover().unwrap();
        assert_eq!(lost, 2, "iterations 11-12 are lost");
        assert_eq!(st.step(), 10);
        // Training resumes cleanly across all shards.
        st.run(5).unwrap();
        assert_eq!(st.last_durable_step(), 15);
    }

    /// Like `sharded`, but spreads the four shards across two daemons
    /// (rank % 2) and hands back the fabric so tests can arm faults on
    /// one daemon's NIC.
    fn sharded_fleet(policy: TrainPolicy) -> (Fabric, ShardedTrainer) {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let spec = zoo::gpt_with("fleet-gpt", 64, 2, 512);
        let shards = shard_model(&spec, ParallelConfig::grid(2, 2));
        let daemons: Vec<_> = (0..2u32)
            .map(|d| {
                fabric.add_nic(NodeId(100 + d));
                let pmem = PmemDevice::new(
                    ctx.clone(),
                    PmemMode::DevDax,
                    4 * spec.total_bytes() + (64 << 20),
                );
                PortusDaemon::start(&fabric, NodeId(100 + d), pmem, DaemonConfig::default())
                    .unwrap()
            })
            .collect();
        let pairs = shards
            .iter()
            .enumerate()
            .map(|(rank, shard)| {
                let node = NodeId(rank as u32);
                let nic = fabric.nic(node).unwrap_or_else(|_| fabric.add_nic(node));
                let gpu = GpuDevice::new(ctx.clone(), rank as u32, 1 << 30);
                let model = ModelInstance::materialize(
                    &shard.spec,
                    &gpu,
                    rank as u64,
                    Materialization::Owned,
                )
                .unwrap();
                (PortusClient::connect(&daemons[rank % 2], nic), model)
            })
            .collect();
        let st = ShardedTrainer::new(
            pairs,
            IterationProfile::from_total(SimDuration::from_millis(30)),
            policy,
        )
        .unwrap();
        (fabric, st)
    }

    #[test]
    fn barrier_drives_every_shard_through_a_daemon_outage() {
        let (fabric, mut st) = sharded_fleet(TrainPolicy::Sync { every: 4 });
        st.run(4).unwrap(); // one clean round: version 1 everywhere

        // Daemon 1 (shards 1 and 3) loses its datapath; the pulls it
        // initiates all fail.
        fabric.arm_faults(NodeId(101), FaultSpec::All).expect("arm");
        let err = st.run(8).expect_err("half the shards lost their daemon");
        match err {
            PortusError::ShardBarrier {
                barrier_step,
                failures,
            } => {
                assert_eq!(barrier_step, 12);
                let shards: Vec<usize> = failures.iter().map(|f| f.shard).collect();
                assert_eq!(shards, vec![1, 3]);
                assert!(failures[0].error.contains("datapath"));
            }
            other => panic!("expected ShardBarrier, got {other}"),
        }
        // Nobody fell behind: every shard is at the barrier iteration.
        assert!(st.shards().iter().all(|t| t.step() == 12));
        // Survivors kept checkpointing; the sick shards kept their
        // last durable round.
        assert_eq!(st.shards()[0].last_durable_step(), 12);
        assert_eq!(st.shards()[1].last_durable_step(), 4);
        assert_eq!(st.last_durable_step(), 4);
    }

    #[test]
    fn recover_pins_all_shards_to_the_newest_common_version() {
        let (fabric, mut st) = sharded_fleet(TrainPolicy::Sync { every: 4 });
        st.run(4).unwrap(); // version 1 everywhere
        fabric.arm_faults(NodeId(101), FaultSpec::All).expect("arm");
        // Version 2 lands only on daemon 0's shards; 1 and 3 fail.
        assert!(st.run(4).is_err());

        // The outage heals; recovery must settle on version 1 — the
        // newest version *every* shard still holds — not daemon 0's
        // version 2.
        fabric.nic(NodeId(101)).unwrap().clear_faults();
        let lost = st.recover().unwrap();
        assert_eq!(lost, 4, "iterations 5-8 roll back");
        assert_eq!(st.step(), 4);
        assert!(st
            .shards()
            .iter()
            .all(|t| t.last_restored_version() == Some(1)));

        // Training resumes in lockstep from the common version.
        st.run(4).unwrap();
        assert!(st.shards().iter().all(|t| t.step() == 8));
        assert_eq!(st.last_durable_step(), 8);
    }

    #[test]
    fn recover_with_no_common_version_is_a_typed_error() {
        let (fabric, mut st) = sharded_fleet(TrainPolicy::Sync { every: 4 });
        st.run(4).unwrap();
        fabric.arm_faults(NodeId(101), FaultSpec::All).expect("arm");
        // Two more successful rounds on daemon 0 cycle its double
        // mapping past version 1, so the survivors hold {2, 3} while
        // the sick shards hold only {1}: no common version remains.
        assert!(st.run(8).is_err());
        fabric.nic(NodeId(101)).unwrap().clear_faults();
        match st.recover() {
            Err(PortusError::Daemon(msg)) => {
                assert!(msg.contains("no checkpoint version is durable on every shard"))
            }
            other => panic!("expected Daemon error, got {other:?}"),
        }
    }

    #[test]
    fn async_sharded_run_completes_all_pulls() {
        let mut st = sharded(TrainPolicy::Async { every: 3 });
        let stats = st.run(9).unwrap();
        assert!(stats.iter().all(|s| s.checkpoints_completed == 3));
        assert_eq!(st.last_durable_step(), 9);
    }
}
