//! Sharded training: the §V-E scenario through the Trainer layer.
//!
//! A [`ShardedTrainer`] drives one [`Trainer`] per Megatron shard in
//! lockstep — the way a model-parallel job steps all ranks together —
//! and checkpoints all shards at the same iteration boundaries, issuing
//! the pulls concurrently (asynchronously) and settling them all at the
//! barrier. Restore brings every shard back to the same version, which
//! is the aggregation requirement Motivation 1 of the paper calls out.

use portus::{PortusClient, PortusError, PortusResult};
use portus_dnn::{IterationProfile, ModelInstance};
use portus_sim::SimDuration;

use crate::{TrainPolicy, Trainer, TrainerStats};

/// A set of shard trainers stepped in lockstep.
#[derive(Debug)]
pub struct ShardedTrainer {
    shards: Vec<Trainer>,
}

impl ShardedTrainer {
    /// Builds one trainer per `(client, shard instance)` pair; all
    /// shards share the profile and policy.
    ///
    /// # Errors
    ///
    /// Registration failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(
        shards: Vec<(PortusClient, ModelInstance)>,
        profile: IterationProfile,
        policy: TrainPolicy,
    ) -> PortusResult<ShardedTrainer> {
        assert!(!shards.is_empty(), "a sharded job needs at least one shard");
        let shards = shards
            .into_iter()
            .map(|(client, model)| Trainer::new(client, model, profile, policy))
            .collect::<PortusResult<Vec<_>>>()?;
        Ok(ShardedTrainer { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard trainers (e.g. to checksum individual shards).
    pub fn shards(&self) -> &[Trainer] {
        &self.shards
    }

    /// Global iteration counter (identical across shards by
    /// construction).
    pub fn step(&self) -> u64 {
        self.shards[0].step()
    }

    /// The last iteration durable on PMem across **all** shards — the
    /// whole-model recovery point (a version only counts when every
    /// shard has it).
    pub fn last_durable_step(&self) -> u64 {
        self.shards
            .iter()
            .map(Trainer::last_durable_step)
            .min()
            .unwrap_or(0)
    }

    /// Runs `iterations` lockstep iterations on every shard. Returns
    /// per-shard stats.
    ///
    /// Shards run their iteration batches sequentially here (one driver
    /// thread); the *checkpoint pulls* still interleave on the daemon
    /// side under the async policy because each shard has its own
    /// connection/worker.
    ///
    /// # Errors
    ///
    /// The first shard failure aborts the step (as a real synchronous
    /// job would).
    pub fn run(&mut self, iterations: u64) -> PortusResult<Vec<TrainerStats>> {
        // Step in interval-sized batches so shards stay aligned at
        // checkpoint boundaries.
        let mut out = vec![TrainerStats::default(); self.shards.len()];
        let mut remaining = iterations;
        while remaining > 0 {
            let batch = remaining.min(1.max(
                self.shards[0]
                    .policy_interval()
                    .unwrap_or(remaining),
            ));
            for (trainer, acc) in self.shards.iter_mut().zip(&mut out) {
                let s = trainer.run(batch)?;
                acc.iterations += s.iterations;
                acc.checkpoints_completed += s.checkpoints_completed;
                acc.bytes_checkpointed += s.bytes_checkpointed;
                acc.bytes_carried_over += s.bytes_carried_over;
                acc.checkpoint_stall += s.checkpoint_stall;
                acc.compute_time += s.compute_time;
            }
            remaining -= batch;
        }
        Ok(out)
    }

    /// Recovers every shard to the whole-model recovery point. All
    /// shards must restore the *same* version; a mismatch (possible if
    /// a crash interleaved with a partially completed multi-shard
    /// checkpoint round) is surfaced as an error rather than silently
    /// mixing versions.
    ///
    /// # Errors
    ///
    /// Restore failures, or [`PortusError::Daemon`] on a version
    /// mismatch across shards.
    pub fn recover(&mut self) -> PortusResult<u64> {
        let target = self.last_durable_step();
        let mut lost_max = 0;
        let mut versions = Vec::with_capacity(self.shards.len());
        for trainer in &mut self.shards {
            let lost = trainer.recover_to(target)?;
            lost_max = lost_max.max(lost);
            versions.push(trainer.last_restored_version());
        }
        if let (Some(first), true) = (
            versions.first().copied().flatten(),
            versions.windows(2).all(|w| w[0] == w[1]),
        ) {
            let _ = first;
            Ok(lost_max)
        } else {
            Err(PortusError::Daemon(format!(
                "shards restored mismatched versions: {versions:?}"
            )))
        }
    }

    /// Total virtual stall across shards (diagnostic).
    pub fn total_stall(&self) -> SimDuration {
        self.shards
            .iter()
            .map(|t| t.stats().checkpoint_stall)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus::{DaemonConfig, PortusDaemon};
    use portus_dnn::{shard_model, zoo, Materialization, ParallelConfig};
    use portus_mem::GpuDevice;
    use portus_pmem::{PmemDevice, PmemMode};
    use portus_rdma::{Fabric, NodeId};
    use portus_sim::SimContext;

    fn sharded(policy: TrainPolicy) -> ShardedTrainer {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        fabric.add_nic(NodeId(100));
        let spec = zoo::gpt_with("sharded-gpt", 64, 2, 512);
        let shards = shard_model(&spec, ParallelConfig::grid(2, 2));
        let pmem = PmemDevice::new(
            ctx.clone(),
            PmemMode::DevDax,
            4 * spec.total_bytes() + (64 << 20),
        );
        let daemon =
            PortusDaemon::start(&fabric, NodeId(100), pmem, DaemonConfig::default()).unwrap();
        let pairs = shards
            .iter()
            .enumerate()
            .map(|(rank, shard)| {
                let node = NodeId(rank as u32);
                let nic = fabric.nic(node).unwrap_or_else(|_| fabric.add_nic(node));
                let gpu = GpuDevice::new(ctx.clone(), rank as u32, 1 << 30);
                let model = ModelInstance::materialize(
                    &shard.spec,
                    &gpu,
                    rank as u64,
                    Materialization::Owned,
                )
                .unwrap();
                (PortusClient::connect(&daemon, nic), model)
            })
            .collect();
        ShardedTrainer::new(
            pairs,
            IterationProfile::from_total(SimDuration::from_millis(30)),
            policy,
        )
        .unwrap()
    }

    #[test]
    fn lockstep_run_keeps_shards_aligned() {
        let mut st = sharded(TrainPolicy::Sync { every: 4 });
        let stats = st.run(12).unwrap();
        assert_eq!(st.shard_count(), 4);
        assert!(stats.iter().all(|s| s.iterations == 12));
        assert!(stats.iter().all(|s| s.checkpoints_completed == 3));
        assert_eq!(st.step(), 12);
        assert_eq!(st.last_durable_step(), 12);
    }

    #[test]
    fn whole_model_recovery_point_is_the_minimum() {
        let mut st = sharded(TrainPolicy::Sync { every: 5 });
        st.run(13).unwrap();
        assert_eq!(st.last_durable_step(), 10, "13 iters, ckpt at 5 and 10");
    }

    #[test]
    fn sharded_recover_restores_a_consistent_version() {
        let mut st = sharded(TrainPolicy::Sync { every: 5 });
        st.run(12).unwrap();
        let lost = st.recover().unwrap();
        assert_eq!(lost, 2, "iterations 11-12 are lost");
        assert_eq!(st.step(), 10);
        // Training resumes cleanly across all shards.
        st.run(5).unwrap();
        assert_eq!(st.last_durable_step(), 15);
    }

    #[test]
    fn async_sharded_run_completes_all_pulls() {
        let mut st = sharded(TrainPolicy::Async { every: 3 });
        let stats = st.run(9).unwrap();
        assert!(stats.iter().all(|s| s.checkpoints_completed == 3));
        assert_eq!(st.last_durable_step(), 9);
    }
}
