//! Calibrated cost accounting for (de)serialization.
//!
//! The container codec in [`crate::write_checkpoint`] does the real byte
//! work; these helpers charge the *calibrated* virtual time the paper
//! measured for `torch.save`-style pickling (41.7 % of the baseline
//! checkpoint, Table I), and bump the structural counters the zero-copy
//! assertions read.

use portus_sim::{SimContext, SimDuration};

/// Charges one serializer invocation over `payload_bytes` and returns
/// the virtual time charged. Also counts one data copy: serialization
/// materializes the container in a staging buffer.
pub fn charge_serialize(ctx: &SimContext, payload_bytes: u64) -> SimDuration {
    let d = ctx.model.serialize(payload_bytes);
    ctx.charge(d);
    ctx.stats.record_serialization();
    ctx.stats.record_copy(payload_bytes);
    d
}

/// Charges one deserializer invocation over `payload_bytes` and returns
/// the virtual time charged.
pub fn charge_deserialize(ctx: &SimContext, payload_bytes: u64) -> SimDuration {
    let d = ctx.model.deserialize(payload_bytes);
    ctx.charge(d);
    ctx.stats.record_deserialization();
    ctx.stats.record_copy(payload_bytes);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_charges_time_and_counters() {
        let ctx = SimContext::icdcs24();
        let d = charge_serialize(&ctx, 1 << 30);
        // 1 GiB at 1.6 GB/s ≈ 0.67 s.
        assert!((0.6..0.8).contains(&d.as_secs_f64()), "{d}");
        let snap = ctx.stats.snapshot();
        assert_eq!(snap.serializations, 1);
        assert_eq!(snap.data_copies, 1);
    }

    #[test]
    fn deserialize_is_faster_than_serialize() {
        let ctx = SimContext::icdcs24();
        let ser = charge_serialize(&ctx, 1 << 30);
        let de = charge_deserialize(&ctx, 1 << 30);
        assert!(de < ser);
        assert_eq!(ctx.stats.snapshot().deserializations, 1);
    }
}
