//! Error types for the checkpoint container.

use std::error::Error;
use std::fmt;
use std::io;

/// Result alias for container operations.
pub type FormatResult<T> = Result<T, FormatError>;

/// Errors raised while encoding or decoding checkpoint containers.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid container (bad magic, version, dtype, or
    /// inconsistent sizes).
    Malformed(String),
    /// The trailer hash does not match the content.
    ChecksumMismatch {
        /// Hash computed over the decoded content.
        expected: u64,
        /// Hash found in the trailer.
        found: u64,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            FormatError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: computed {expected:#018x}, trailer {found:#018x}"
            ),
        }
    }
}

impl Error for FormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FormatError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.to_string().contains("eof"));
        assert!(Error::source(&e).is_some());
        let m = FormatError::ChecksumMismatch {
            expected: 1,
            found: 2,
        };
        assert!(m.to_string().contains("mismatch"));
    }
}
