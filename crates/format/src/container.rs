//! The checkpoint container format.
//!
//! This is the stand-in for `torch.save`'s pickled container: a tagged
//! binary file holding, per tensor, a metadata header (name, dtype,
//! shape — what "the DNN training framework adds ... to the tensors in
//! each layer", Fig. 3 step 2) followed by the raw payload, with an
//! FNV-1a trailer protecting the whole file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8  "PORTUSCK"
//! version  4
//! name     2+n  (u16 length prefix, UTF-8)
//! count    4  number of tensors
//! per tensor:
//!   name   2+n
//!   dtype  1  (DType::code)
//!   ndim   1
//!   dims   8*ndim
//!   len    8  payload bytes
//!   data   len
//! trailer  8  FNV-1a of everything above
//! ```

use std::io::{self, Read, Write};
use std::sync::Arc;

use portus_dnn::{DType, TensorMeta};
use portus_mem::Buffer;

use crate::{FormatError, FormatResult};

const MAGIC: &[u8; 8] = b"PORTUSCK";
/// Decode-side sanity cap on a single tensor payload (1 TiB).
const MAX_TENSOR_BYTES: u64 = 1 << 40;
const VERSION: u32 = 1;

/// Where a tensor payload comes from during encoding.
#[derive(Debug, Clone)]
pub enum PayloadSource {
    /// Raw bytes already in host memory.
    Bytes(Vec<u8>),
    /// A (possibly synthetic) buffer, streamed in chunks.
    Buffer(Arc<Buffer>),
}

impl PayloadSource {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            PayloadSource::Bytes(v) => v.len() as u64,
            PayloadSource::Buffer(b) => b.len(),
        }
    }

    /// `true` for empty payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One entry to encode: tensor metadata plus its payload.
#[derive(Debug, Clone)]
pub struct CheckpointEntry {
    /// The tensor's metadata header.
    pub meta: TensorMeta,
    /// The payload.
    pub data: PayloadSource,
}

/// A fully decoded checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// The model name recorded in the container.
    pub model_name: String,
    /// Decoded tensors in file order.
    pub tensors: Vec<(TensorMeta, Vec<u8>)>,
}

impl CheckpointFile {
    /// Total payload bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.tensors.iter().map(|(_, d)| d.len() as u64).sum()
    }

    /// Finds a tensor's payload by name.
    pub fn tensor(&self, name: &str) -> Option<&(TensorMeta, Vec<u8>)> {
        self.tensors.iter().find(|(m, _)| m.name == name)
    }
}

struct HashingWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> FormatResult<()> {
        self.inner.read_exact(buf).map_err(FormatError::from)?;
        for &b in buf.iter() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(())
    }
}

fn write_str<W: Write>(w: &mut W, s: &str) -> FormatResult<()> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(FormatError::Malformed("name longer than u16".into()));
    }
    w.write_all(&(bytes.len() as u16).to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

/// Encodes a checkpoint into `w`. Note that a reference `&mut W` also
/// works as the writer.
///
/// # Errors
///
/// I/O errors from the writer, and [`FormatError::Malformed`] if a
/// payload length disagrees with its metadata.
pub fn write_checkpoint<W: Write>(
    w: W,
    model_name: &str,
    entries: &[CheckpointEntry],
) -> FormatResult<()> {
    let mut w = HashingWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_str(&mut w, model_name)?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for e in entries {
        if e.data.len() != e.meta.size_bytes() {
            return Err(FormatError::Malformed(format!(
                "tensor {}: payload {} bytes vs metadata {} bytes",
                e.meta.name,
                e.data.len(),
                e.meta.size_bytes()
            )));
        }
        write_str(&mut w, &e.meta.name)?;
        w.write_all(&[e.meta.dtype.code()])?;
        w.write_all(&[e.meta.shape.len() as u8])?;
        for d in &e.meta.shape {
            w.write_all(&d.to_le_bytes())?;
        }
        w.write_all(&e.data.len().to_le_bytes())?;
        match &e.data {
            PayloadSource::Bytes(v) => w.write_all(v)?,
            PayloadSource::Buffer(b) => {
                let mut chunk = [0u8; 64 * 1024];
                let mut pos = 0u64;
                while pos < b.len() {
                    let n = ((b.len() - pos) as usize).min(chunk.len());
                    b.read_at(pos, &mut chunk[..n])
                        .map_err(|e| FormatError::Malformed(e.to_string()))?;
                    w.write_all(&chunk[..n])?;
                    pos += n as u64;
                }
            }
        }
    }
    let trailer = w.hash;
    w.write_all(&trailer.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Decodes a checkpoint from `r`, verifying the trailer. A `&mut R`
/// also works as the reader.
///
/// # Errors
///
/// [`FormatError::Malformed`] on bad magic/version/dtype,
/// [`FormatError::ChecksumMismatch`] on a corrupt trailer, and I/O
/// errors from the reader.
pub fn read_checkpoint<R: Read>(r: R) -> FormatResult<CheckpointFile> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact_hashed(&mut magic)?;
    if &magic != MAGIC {
        return Err(FormatError::Malformed("bad checkpoint magic".into()));
    }
    let mut u32b = [0u8; 4];
    r.read_exact_hashed(&mut u32b)?;
    if u32::from_le_bytes(u32b) != VERSION {
        return Err(FormatError::Malformed("unsupported version".into()));
    }
    let model_name = read_str(&mut r)?;
    r.read_exact_hashed(&mut u32b)?;
    let count = u32::from_le_bytes(u32b);

    let mut tensors = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = read_str(&mut r)?;
        let mut byte = [0u8; 1];
        r.read_exact_hashed(&mut byte)?;
        let dtype = DType::from_code(byte[0])
            .ok_or_else(|| FormatError::Malformed(format!("bad dtype code {}", byte[0])))?;
        r.read_exact_hashed(&mut byte)?;
        let ndim = byte[0] as usize;
        let mut shape = Vec::with_capacity(ndim);
        let mut u64b = [0u8; 8];
        for _ in 0..ndim {
            r.read_exact_hashed(&mut u64b)?;
            shape.push(u64::from_le_bytes(u64b));
        }
        r.read_exact_hashed(&mut u64b)?;
        let len = u64::from_le_bytes(u64b);
        let meta = TensorMeta::new(name, dtype, shape);
        // Sanity cap before any allocation: protects against corrupted
        // headers that happen to keep metadata and length consistent.
        if len > MAX_TENSOR_BYTES {
            return Err(FormatError::Malformed(format!(
                "tensor {}: implausible payload of {len} bytes",
                meta.name
            )));
        }
        if meta.size_bytes() != len {
            return Err(FormatError::Malformed(format!(
                "tensor {}: payload {len} bytes vs metadata {}",
                meta.name,
                meta.size_bytes()
            )));
        }
        let mut data = vec![0u8; len as usize];
        r.read_exact_hashed(&mut data)?;
        tensors.push((meta, data));
    }
    let expected = r.hash;
    let mut trailer = [0u8; 8];
    r.inner
        .read_exact(&mut trailer)
        .map_err(FormatError::from)?;
    let found = u64::from_le_bytes(trailer);
    if found != expected {
        return Err(FormatError::ChecksumMismatch { expected, found });
    }
    Ok(CheckpointFile {
        model_name,
        tensors,
    })
}

fn read_str<R: Read>(r: &mut HashingReader<R>) -> FormatResult<String> {
    let mut lbuf = [0u8; 2];
    r.read_exact_hashed(&mut lbuf)?;
    let len = u16::from_le_bytes(lbuf) as usize;
    let mut sbuf = vec![0u8; len];
    r.read_exact_hashed(&mut sbuf)?;
    String::from_utf8(sbuf).map_err(|_| FormatError::Malformed("name not UTF-8".into()))
}

/// The exact encoded size of a checkpoint with the given entries
/// (headers + payloads + trailer), without encoding it.
pub fn encoded_size(model_name: &str, metas: &[TensorMeta]) -> u64 {
    let mut size = 8 + 4 + 2 + model_name.len() as u64 + 4;
    for m in metas {
        size += 2 + m.name.len() as u64 + 1 + 1 + 8 * m.shape.len() as u64 + 8 + m.size_bytes();
    }
    size + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_mem::MemorySegment;
    use portus_sim::MemoryKind;

    fn sample_entries() -> Vec<CheckpointEntry> {
        vec![
            CheckpointEntry {
                meta: TensorMeta::new("a.weight", DType::F32, vec![4, 2]),
                data: PayloadSource::Bytes((0..32u8).collect()),
            },
            CheckpointEntry {
                meta: TensorMeta::new("a.bias", DType::F16, vec![3]),
                data: PayloadSource::Bytes(vec![9; 6]),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut out = Vec::new();
        write_checkpoint(&mut out, "toy", &sample_entries()).unwrap();
        let file = read_checkpoint(&out[..]).unwrap();
        assert_eq!(file.model_name, "toy");
        assert_eq!(file.tensors.len(), 2);
        assert_eq!(file.tensors[0].0.name, "a.weight");
        assert_eq!(file.tensors[0].1, (0..32u8).collect::<Vec<_>>());
        assert_eq!(file.tensor("a.bias").unwrap().1, vec![9; 6]);
        assert_eq!(
            out.len() as u64,
            encoded_size(
                "toy",
                &[file.tensors[0].0.clone(), file.tensors[1].0.clone(),]
            )
        );
    }

    #[test]
    fn buffer_payloads_stream() {
        let buf = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(256 * 1024, 5));
        let entries = vec![CheckpointEntry {
            meta: TensorMeta::new("big", DType::U8, vec![256 * 1024]),
            data: PayloadSource::Buffer(buf.clone()),
        }];
        let mut out = Vec::new();
        write_checkpoint(&mut out, "m", &entries).unwrap();
        let file = read_checkpoint(&out[..]).unwrap();
        assert_eq!(file.tensors[0].1, buf.to_vec());
    }

    #[test]
    fn corruption_is_detected() {
        let mut out = Vec::new();
        write_checkpoint(&mut out, "toy", &sample_entries()).unwrap();
        let mid = out.len() / 2;
        out[mid] ^= 0xFF;
        assert!(matches!(
            read_checkpoint(&out[..]),
            Err(FormatError::ChecksumMismatch { .. }) | Err(FormatError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut out = Vec::new();
        write_checkpoint(&mut out, "toy", &sample_entries()).unwrap();
        out.truncate(out.len() - 3);
        assert!(read_checkpoint(&out[..]).is_err());
    }

    #[test]
    fn size_mismatch_is_rejected_on_encode() {
        let entries = vec![CheckpointEntry {
            meta: TensorMeta::new("w", DType::F32, vec![4]),
            data: PayloadSource::Bytes(vec![0; 3]), // 16 expected
        }];
        let mut out = Vec::new();
        assert!(matches!(
            write_checkpoint(&mut out, "m", &entries),
            Err(FormatError::Malformed(_))
        ));
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let mut out = Vec::new();
        write_checkpoint(&mut out, "empty", &[]).unwrap();
        let file = read_checkpoint(&out[..]).unwrap();
        assert_eq!(file.model_name, "empty");
        assert!(file.tensors.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            read_checkpoint(&b"NOTACKPT........."[..]),
            Err(FormatError::Malformed(_))
        ));
    }
}
