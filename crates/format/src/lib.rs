//! # portus-format
//!
//! The `torch.save`-style checkpoint container: a tagged binary format
//! with per-tensor metadata headers and an integrity trailer
//! ([`write_checkpoint`] / [`read_checkpoint`]), plus the calibrated
//! serializer cost accounting ([`charge_serialize`] /
//! [`charge_deserialize`]) that reproduces the 41.7 % serialization
//! share of Table I.
//!
//! This format serves three roles, mirroring the paper:
//! 1. the baseline datapath serializes through it (Fig. 3 step 2);
//! 2. `portusctl dump` exports PMem-resident checkpoints to it for
//!    sharing (§IV-b);
//! 3. restore baselines deserialize from it.
//!
//! # Examples
//!
//! ```
//! use portus_dnn::{DType, TensorMeta};
//! use portus_format::{read_checkpoint, write_checkpoint, CheckpointEntry, PayloadSource};
//!
//! let entries = vec![CheckpointEntry {
//!     meta: TensorMeta::new("fc.weight", DType::F32, vec![2, 2]),
//!     data: PayloadSource::Bytes(vec![0u8; 16]),
//! }];
//! let mut file = Vec::new();
//! write_checkpoint(&mut file, "tiny", &entries)?;
//! let decoded = read_checkpoint(&file[..])?;
//! assert_eq!(decoded.model_name, "tiny");
//! # Ok::<(), portus_format::FormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
mod cost;
mod error;

pub use container::{
    encoded_size, read_checkpoint, write_checkpoint, CheckpointEntry, CheckpointFile, PayloadSource,
};
pub use cost::{charge_deserialize, charge_serialize};
pub use error::{FormatError, FormatResult};
