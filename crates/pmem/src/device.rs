//! The simulated persistent-memory device.
//!
//! Models the persistence domain of Intel Optane DC PMem the way
//! persistent-memory programming actually experiences it (Rudoff,
//! ";login: 2017"): CPU stores land in volatile cache lines and are only
//! *guaranteed* durable after an explicit flush (`clwb`) of each line
//! followed by a fence (`sfence`). On power failure, unflushed lines may
//! or may not have reached media — the hardware is free to have evicted
//! any of them. [`PmemDevice::crash`] reproduces exactly that
//! non-determinism, which is what the crash-consistency tests of the
//! Portus double-mapping scheme need to be meaningful.
//!
//! Two representation choices keep multi-gigabyte checkpoints tractable:
//! the durable media is a sparse page store (memory proportional to
//! bytes written), and page-aligned full-page stores are tracked as
//! page-granular overlay entries instead of 64 separate cache lines —
//! the simulated analogue of the streaming non-temporal stores a real
//! daemon would use for bulk data. One documented approximation: a
//! store into a page holding flushed-but-unfenced *lines* re-dirties
//! that page. Portus's on-media layout keeps bulk data page-aligned and
//! metadata in separate lines, so the approximation is never exercised
//! by the protocols under test.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use portus_sim::SimContext;

use crate::{PmemError, PmemResult};

/// Cache-line size: the granularity of flushes and of crash loss.
pub const CACHE_LINE: u64 = 64;
/// Page size of the sparse persistent store and of bulk overlay entries.
pub const PAGE: u64 = 4096;

type Line = [u8; CACHE_LINE as usize];
type Page = [u8; PAGE as usize];

/// How the namespace is exposed to software (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmemMode {
    /// Device DAX: raw byte-addressable access, no file system. This is
    /// the mode Portus uses ("users can perform direct access to PMEM via
    /// mmap and detour kernel file systems").
    DevDax,
    /// File-system DAX: an ext4-DAX file system (and BeeGFS above it)
    /// owns the namespace.
    FsDax,
}

#[derive(Debug, Default)]
struct Media {
    /// Durable content, sparse by page. Absent pages read as zero.
    pages: BTreeMap<u64, Box<Page>>,
}

impl Media {
    fn read(&self, offset: u64, out: &mut [u8]) {
        let mut pos = 0usize;
        while pos < out.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / PAGE;
            let in_page = (abs % PAGE) as usize;
            let chunk = (out.len() - pos).min(PAGE as usize - in_page);
            match self.pages.get(&page_idx) {
                Some(p) => out[pos..pos + chunk].copy_from_slice(&p[in_page..in_page + chunk]),
                None => out[pos..pos + chunk].fill(0),
            }
            pos += chunk;
        }
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / PAGE;
            let in_page = (abs % PAGE) as usize;
            let chunk = (data.len() - pos).min(PAGE as usize - in_page);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| Box::new([0u8; PAGE as usize]));
            page[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
            pos += chunk;
        }
    }

    fn write_page(&mut self, page_idx: u64, content: Box<Page>) {
        self.pages.insert(page_idx, content);
    }
}

#[derive(Debug, Default)]
struct Volatile {
    /// Dirty cache lines not yet flushed.
    dirty_lines: BTreeMap<u64, Box<Line>>,
    /// Lines flushed (`clwb`) but not fenced: durable after the next
    /// fence; on a crash each may or may not have reached media.
    pending_lines: BTreeMap<u64, Box<Line>>,
    /// Dirty full pages (bulk stores), not yet flushed.
    dirty_pages: BTreeMap<u64, Box<Page>>,
    /// Full pages flushed but not fenced.
    pending_pages: BTreeMap<u64, Box<Page>>,
}

#[derive(Debug)]
struct Inner {
    media: Media,
    volatile: Volatile,
}

impl Inner {
    /// Coherent (CPU-view) read: overlays over media, newest first.
    fn read_coherent(&self, offset: u64, out: &mut [u8]) {
        self.media.read(offset, out);
        if self.volatile.pending_pages.is_empty()
            && self.volatile.dirty_pages.is_empty()
            && self.volatile.pending_lines.is_empty()
            && self.volatile.dirty_lines.is_empty()
        {
            return;
        }
        overlay_pages(offset, out, &self.volatile.pending_pages);
        overlay_pages(offset, out, &self.volatile.dirty_pages);
        overlay_lines(offset, out, &self.volatile.pending_lines);
        overlay_lines(offset, out, &self.volatile.dirty_lines);
    }

    fn write_coherent(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / PAGE;
            let in_page = (abs % PAGE) as usize;
            let chunk = (data.len() - pos).min(PAGE as usize - in_page);
            if in_page == 0 && chunk == PAGE as usize {
                // Full-page bulk store: supersede any finer-grained state.
                let first_line = page_idx * (PAGE / CACHE_LINE);
                let last_line = first_line + PAGE / CACHE_LINE - 1;
                retain_outside(&mut self.volatile.dirty_lines, first_line, last_line);
                retain_outside(&mut self.volatile.pending_lines, first_line, last_line);
                self.volatile.pending_pages.remove(&page_idx);
                let mut content = Box::new([0u8; PAGE as usize]);
                content.copy_from_slice(&data[pos..pos + chunk]);
                self.volatile.dirty_pages.insert(page_idx, content);
            } else if let Some(page) = self.volatile.dirty_pages.get_mut(&page_idx) {
                // The page is already a dirty bulk entry: write into it.
                page[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
            } else if let Some(mut page) = self.volatile.pending_pages.remove(&page_idx) {
                // Documented approximation: a store into a page with a
                // flushed-but-unfenced bulk entry re-dirties the page.
                page[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
                self.volatile.dirty_pages.insert(page_idx, page);
            } else {
                self.write_lines(abs, &data[pos..pos + chunk]);
            }
            pos += chunk;
        }
    }

    /// Line-granular RMW store.
    fn write_lines(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let line = abs / CACHE_LINE;
            let in_line = (abs % CACHE_LINE) as usize;
            let chunk = (data.len() - pos).min(CACHE_LINE as usize - in_line);
            let mut content = if let Some(c) = self.volatile.dirty_lines.remove(&line) {
                c
            } else if let Some(c) = self.volatile.pending_lines.remove(&line) {
                // A new store re-dirties a flushed-but-unfenced line.
                c
            } else {
                let mut c = Box::new([0u8; CACHE_LINE as usize]);
                self.read_coherent(line * CACHE_LINE, &mut c[..]);
                c
            };
            content[in_line..in_line + chunk].copy_from_slice(&data[pos..pos + chunk]);
            self.volatile.dirty_lines.insert(line, content);
            pos += chunk;
        }
    }
}

fn retain_outside<V>(map: &mut BTreeMap<u64, V>, first: u64, last: u64) {
    let keys: Vec<u64> = map.range(first..=last).map(|(k, _)| *k).collect();
    for k in keys {
        map.remove(&k);
    }
}

/// Controls which in-flight data survives a simulated power failure.
#[derive(Debug, Clone, Copy)]
pub enum CrashSpec {
    /// Everything volatile is lost; only explicitly persisted data
    /// survives. The most pessimistic (and simplest) adversary.
    LoseAll,
    /// Each in-flight line — and each in-flight bulk page — independently
    /// survives with probability ~1/2, decided by the given seed. Models
    /// random cache evictions and in-flight `clwb`s: the adversary
    /// crash-consistency schemes must defeat.
    Random {
        /// Seed for the per-entry survival coin flips.
        seed: u64,
    },
}

/// A simulated PMem namespace.
///
/// All operations are thread-safe; the device is shared via `Arc`.
///
/// # Examples
///
/// ```
/// use portus_pmem::{PmemDevice, PmemMode};
/// use portus_sim::SimContext;
///
/// let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
/// pm.write(0, b"hello")?;
/// pm.persist(0, 5)?; // clwb + sfence: now durable
/// let mut out = [0u8; 5];
/// pm.read(0, &mut out)?;
/// assert_eq!(&out, b"hello");
/// # Ok::<(), portus_pmem::PmemError>(())
/// ```
#[derive(Debug)]
pub struct PmemDevice {
    ctx: SimContext,
    mode: PmemMode,
    capacity: u64,
    inner: Mutex<Inner>,
}

impl PmemDevice {
    /// Creates a namespace of `capacity` bytes in the given `mode`.
    pub fn new(ctx: SimContext, mode: PmemMode, capacity: u64) -> Arc<PmemDevice> {
        Arc::new(PmemDevice {
            ctx,
            mode,
            capacity,
            inner: Mutex::new(Inner {
                media: Media::default(),
                volatile: Volatile::default(),
            }),
        })
    }

    /// The namespace mode.
    pub fn mode(&self) -> PmemMode {
        self.mode
    }

    /// Namespace capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The shared simulation context this device charges time against.
    pub fn ctx(&self) -> &SimContext {
        &self.ctx
    }

    fn check(&self, offset: u64, len: u64) -> PmemResult<()> {
        let end = offset.checked_add(len).ok_or(PmemError::OutOfBounds {
            offset,
            len,
            capacity: self.capacity,
        })?;
        if end > self.capacity {
            return Err(PmemError::OutOfBounds {
                offset,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Reads the *coherent* view (CPU perspective): volatile overlays
    /// over durable media.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> PmemResult<()> {
        self.check(offset, out.len() as u64)?;
        self.inner.lock().read_coherent(offset, out);
        Ok(())
    }

    /// Stores `data` at `offset` through the (volatile) cache. The data
    /// is *not* durable until flushed and fenced.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&self, offset: u64, data: &[u8]) -> PmemResult<()> {
        self.check(offset, data.len() as u64)?;
        self.inner.lock().write_coherent(offset, data);
        Ok(())
    }

    /// Flushes every cache line (and bulk page) overlapping
    /// `[offset, offset+len)` (`clwb`): moves them to the pending set.
    /// Durable after the next [`PmemDevice::fence`]. Bulk pages are
    /// flushed whole even when only partially covered (flushing more
    /// than asked is always safe).
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds capacity.
    pub fn flush(&self, offset: u64, len: u64) -> PmemResult<()> {
        let d = self.flush_internal(offset, len)?;
        if !d.is_zero() {
            self.ctx.charge(d);
        }
        Ok(())
    }

    /// [`PmemDevice::flush`] minus the clock charge: performs the same
    /// dirty→pending transitions and flush accounting, but returns the
    /// `clwb` cost instead of advancing the clock.
    fn flush_internal(&self, offset: u64, len: u64) -> PmemResult<portus_sim::SimDuration> {
        self.check(offset, len)?;
        if len == 0 {
            return Ok(portus_sim::SimDuration::ZERO);
        }
        let first_line = offset / CACHE_LINE;
        let last_line = (offset + len - 1) / CACHE_LINE;
        let first_page = offset / PAGE;
        let last_page = (offset + len - 1) / PAGE;
        let mut inner = self.inner.lock();
        let mut flushed_lines = 0u64;
        let line_keys: Vec<u64> = inner
            .volatile
            .dirty_lines
            .range(first_line..=last_line)
            .map(|(k, _)| *k)
            .collect();
        for line in line_keys {
            if let Some(content) = inner.volatile.dirty_lines.remove(&line) {
                inner.volatile.pending_lines.insert(line, content);
                flushed_lines += 1;
            }
        }
        let page_keys: Vec<u64> = inner
            .volatile
            .dirty_pages
            .range(first_page..=last_page)
            .map(|(k, _)| *k)
            .collect();
        for page in page_keys {
            if let Some(content) = inner.volatile.dirty_pages.remove(&page) {
                inner.volatile.pending_pages.insert(page, content);
                flushed_lines += PAGE / CACHE_LINE;
            }
        }
        drop(inner);
        if flushed_lines == 0 {
            return Ok(portus_sim::SimDuration::ZERO);
        }
        self.ctx.stats.record_pmem_flushes(flushed_lines);
        Ok(portus_sim::SimDuration::from_nanos(
            self.ctx.model.clwb_ns * flushed_lines.min(1024),
        ))
    }

    /// Persistence fence (`sfence`): everything previously flushed is now
    /// durable on media.
    pub fn fence(&self) {
        let d = self.fence_internal();
        self.ctx.charge(d);
    }

    /// [`PmemDevice::fence`] minus the clock charge: pending data
    /// reaches media and the fence is counted, but the `sfence` cost is
    /// returned instead of advancing the clock.
    fn fence_internal(&self) -> portus_sim::SimDuration {
        let mut inner = self.inner.lock();
        let pending_lines = std::mem::take(&mut inner.volatile.pending_lines);
        for (line, content) in pending_lines {
            inner.media.write(line * CACHE_LINE, &content[..]);
        }
        let pending_pages = std::mem::take(&mut inner.volatile.pending_pages);
        for (page, content) in pending_pages {
            inner.media.write_page(page, content);
        }
        drop(inner);
        self.ctx.stats.record_pmem_fence();
        portus_sim::SimDuration::from_nanos(self.ctx.model.sfence_ns)
    }

    /// Convenience: flush the range and fence.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds capacity.
    pub fn persist(&self, offset: u64, len: u64) -> PmemResult<()> {
        self.flush(offset, len)?;
        self.fence();
        Ok(())
    }

    /// [`PmemDevice::persist`] for pipelined callers: the range becomes
    /// durable (same state transitions and flush/fence accounting), but
    /// the `clwb + sfence` cost is *returned* instead of charged so the
    /// caller can schedule it on its own timeline — e.g. overlapped
    /// with an in-flight fabric transfer — and advance the shared clock
    /// once, when the whole pipeline drains.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range exceeds capacity.
    pub fn persist_deferred(&self, offset: u64, len: u64) -> PmemResult<portus_sim::SimDuration> {
        let flush = self.flush_internal(offset, len)?;
        Ok(flush + self.fence_internal())
    }

    /// Atomic 8-byte compare-and-swap at `offset` (must be 8-aligned),
    /// acting on the coherent view. On success the new value is written
    /// through the cache (call [`PmemDevice::persist`] to make it
    /// durable, or use [`PmemDevice::cas_u64_persist`]).
    ///
    /// This is the primitive behind the paper's "compare & swap intrinsic
    /// to ensure the lock-free of the whole system".
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::Unaligned`] for misaligned offsets and
    /// [`PmemError::OutOfBounds`] past capacity. A failed comparison
    /// returns `Ok(Err(actual))`.
    pub fn cas_u64(&self, offset: u64, expected: u64, new: u64) -> PmemResult<Result<(), u64>> {
        if !offset.is_multiple_of(8) {
            return Err(PmemError::Unaligned { offset, align: 8 });
        }
        self.check(offset, 8)?;
        let mut inner = self.inner.lock();
        let mut cur = [0u8; 8];
        inner.read_coherent(offset, &mut cur);
        let actual = u64::from_le_bytes(cur);
        if actual != expected {
            return Ok(Err(actual));
        }
        inner.write_coherent(offset, &new.to_le_bytes());
        Ok(Ok(()))
    }

    /// [`PmemDevice::cas_u64`] followed by persist of the word on
    /// success.
    ///
    /// # Errors
    ///
    /// As [`PmemDevice::cas_u64`].
    pub fn cas_u64_persist(
        &self,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> PmemResult<Result<(), u64>> {
        let r = self.cas_u64(offset, expected, new)?;
        if r.is_ok() {
            self.persist(offset, 8)?;
        }
        Ok(r)
    }

    /// Simulates a power failure: volatile state is destroyed according
    /// to `spec`. Durable media is untouched. After this call the device
    /// behaves like a freshly rebooted machine.
    pub fn crash(&self, spec: CrashSpec) {
        let mut inner = self.inner.lock();
        let dirty_lines = std::mem::take(&mut inner.volatile.dirty_lines);
        let pending_lines = std::mem::take(&mut inner.volatile.pending_lines);
        let dirty_pages = std::mem::take(&mut inner.volatile.dirty_pages);
        let pending_pages = std::mem::take(&mut inner.volatile.pending_pages);
        match spec {
            CrashSpec::LoseAll => {}
            CrashSpec::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                // Any in-flight line may independently have reached media:
                // pending lines (clwb'd, fence outstanding) and dirty
                // lines (spontaneous cache eviction) alike. Bulk pages
                // survive or vanish per page.
                for (line, content) in pending_lines.into_iter().chain(dirty_lines) {
                    if rng.gen::<bool>() {
                        inner.media.write(line * CACHE_LINE, &content[..]);
                    }
                }
                for (page, content) in pending_pages.into_iter().chain(dirty_pages) {
                    if rng.gen::<bool>() {
                        inner.media.write_page(page, content);
                    }
                }
            }
        }
    }

    /// Number of in-flight (not yet durable) cache lines; diagnostic.
    pub fn inflight_lines(&self) -> u64 {
        let inner = self.inner.lock();
        let v = &inner.volatile;
        v.dirty_lines.len() as u64
            + v.pending_lines.len() as u64
            + (v.dirty_pages.len() as u64 + v.pending_pages.len() as u64) * (PAGE / CACHE_LINE)
    }

    /// Bytes of durable media actually materialized (sparse pages ×
    /// page size); diagnostic.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().media.pages.len() as u64 * PAGE
    }

    /// Snapshot of durable pages for imaging (page index → content).
    pub(crate) fn durable_pages(&self) -> Vec<(u64, Box<Page>)> {
        self.inner
            .lock()
            .media
            .pages
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Restores durable pages from an image (replaces current media).
    pub(crate) fn restore_pages(&self, pages: Vec<(u64, Box<Page>)>) {
        let mut inner = self.inner.lock();
        inner.volatile = Volatile::default();
        inner.media.pages = pages.into_iter().collect();
    }
}

fn overlay_lines(offset: u64, out: &mut [u8], lines: &BTreeMap<u64, Box<Line>>) {
    if out.is_empty() || lines.is_empty() {
        return;
    }
    let first = offset / CACHE_LINE;
    let last = (offset + out.len() as u64 - 1) / CACHE_LINE;
    for (&line, content) in lines.range(first..=last) {
        let line_start = line * CACHE_LINE;
        let start = line_start.max(offset);
        let end = (line_start + CACHE_LINE).min(offset + out.len() as u64);
        for abs in start..end {
            out[(abs - offset) as usize] = content[(abs - line_start) as usize];
        }
    }
}

fn overlay_pages(offset: u64, out: &mut [u8], pages: &BTreeMap<u64, Box<Page>>) {
    if out.is_empty() || pages.is_empty() {
        return;
    }
    let first = offset / PAGE;
    let last = (offset + out.len() as u64 - 1) / PAGE;
    for (&page, content) in pages.range(first..=last) {
        let page_start = page * PAGE;
        let start = page_start.max(offset);
        let end = (page_start + PAGE).min(offset + out.len() as u64);
        out[(start - offset) as usize..(end - offset) as usize]
            .copy_from_slice(&content[(start - page_start) as usize..(end - page_start) as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Arc<PmemDevice> {
        PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 24)
    }

    #[test]
    fn write_is_visible_before_persist() {
        let pm = dev();
        pm.write(100, b"abc").unwrap();
        let mut out = [0u8; 3];
        pm.read(100, &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn unpersisted_write_lost_on_crash() {
        let pm = dev();
        pm.write(0, b"doomed").unwrap();
        pm.crash(CrashSpec::LoseAll);
        let mut out = [0u8; 6];
        pm.read(0, &mut out).unwrap();
        assert_eq!(out, [0u8; 6]);
    }

    #[test]
    fn persisted_write_survives_crash() {
        let pm = dev();
        pm.write(4096, b"durable").unwrap();
        pm.persist(4096, 7).unwrap();
        pm.crash(CrashSpec::LoseAll);
        let mut out = [0u8; 7];
        pm.read(4096, &mut out).unwrap();
        assert_eq!(&out, b"durable");
    }

    #[test]
    fn flush_without_fence_is_not_guaranteed() {
        let pm = dev();
        pm.write(0, b"limbo").unwrap();
        pm.flush(0, 5).unwrap();
        pm.crash(CrashSpec::LoseAll);
        let mut out = [0u8; 5];
        pm.read(0, &mut out).unwrap();
        assert_eq!(out, [0u8; 5]);
    }

    #[test]
    fn bulk_page_writes_round_trip_and_persist() {
        let pm = dev();
        let payload: Vec<u8> = (0..3 * PAGE as usize + 123).map(|i| i as u8).collect();
        pm.write(PAGE, &payload).unwrap(); // page-aligned start, ragged end
        let mut out = vec![0u8; payload.len()];
        pm.read(PAGE, &mut out).unwrap();
        assert_eq!(out, payload);
        pm.persist(PAGE, payload.len() as u64).unwrap();
        pm.crash(CrashSpec::LoseAll);
        pm.read(PAGE, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn small_write_over_bulk_page_takes_precedence() {
        let pm = dev();
        pm.write(0, &[0xAA; PAGE as usize]).unwrap(); // bulk
        pm.write(10, &[0x55; 4]).unwrap(); // fine-grained on top
        let mut out = [0u8; 16];
        pm.read(4, &mut out).unwrap();
        assert_eq!(&out[..6], &[0xAA; 6]);
        assert_eq!(&out[6..10], &[0x55; 4]);
        assert_eq!(&out[10..], &[0xAA; 6]);
    }

    #[test]
    fn bulk_overlay_is_page_granular_not_line_blowup() {
        let pm = dev();
        pm.write(0, &vec![1u8; 8 * PAGE as usize]).unwrap();
        // 8 pages as bulk entries = 8 * 64 line-equivalents.
        assert_eq!(pm.inflight_lines(), 8 * (PAGE / CACHE_LINE));
    }

    #[test]
    fn random_crash_preserves_line_granularity() {
        for seed in 0..16 {
            let pm = dev();
            pm.write(0, &[0xAA; 64]).unwrap();
            pm.persist(0, 64).unwrap();
            pm.write(64, &[0xBB; 64]).unwrap();
            pm.crash(CrashSpec::Random { seed });
            let mut first = [0u8; 64];
            pm.read(0, &mut first).unwrap();
            assert_eq!(first, [0xAA; 64], "persisted line damaged (seed {seed})");
            let mut second = [0u8; 64];
            pm.read(64, &mut second).unwrap();
            assert!(
                second == [0xBB; 64] || second == [0u8; 64],
                "unflushed line must be all-or-nothing at line granularity"
            );
        }
    }

    #[test]
    fn rewrite_of_pending_line_redirties_it() {
        let pm = dev();
        pm.write(0, b"one").unwrap();
        pm.flush(0, 3).unwrap();
        pm.write(0, b"two").unwrap(); // re-dirty before the fence
        pm.fence(); // fence persists nothing for this line
        pm.crash(CrashSpec::LoseAll);
        let mut out = [0u8; 3];
        pm.read(0, &mut out).unwrap();
        assert_eq!(out, [0u8; 3], "re-dirtied line must not be durable");
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let pm = dev();
        pm.write(8, &7u64.to_le_bytes()).unwrap();
        assert_eq!(pm.cas_u64(8, 7, 9).unwrap(), Ok(()));
        assert_eq!(pm.cas_u64(8, 7, 11).unwrap(), Err(9));
        assert!(matches!(
            pm.cas_u64(5, 0, 1),
            Err(PmemError::Unaligned { .. })
        ));
    }

    #[test]
    fn cas_persist_survives_crash() {
        let pm = dev();
        pm.cas_u64_persist(0, 0, 42).unwrap().unwrap();
        pm.crash(CrashSpec::LoseAll);
        let mut out = [0u8; 8];
        pm.read(0, &mut out).unwrap();
        assert_eq!(u64::from_le_bytes(out), 42);
    }

    #[test]
    fn cas_sees_bulk_written_values() {
        let pm = dev();
        let mut page = vec![0u8; PAGE as usize];
        page[0..8].copy_from_slice(&33u64.to_le_bytes());
        pm.write(0, &page).unwrap(); // bulk path
        assert_eq!(pm.cas_u64(0, 33, 44).unwrap(), Ok(()));
        let mut out = [0u8; 8];
        pm.read(0, &mut out).unwrap();
        assert_eq!(u64::from_le_bytes(out), 44);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let pm = dev();
        assert!(pm.write(1 << 24, &[1]).is_err());
        assert!(pm.flush(u64::MAX, 2).is_err());
    }

    #[test]
    fn sparse_media_stays_small() {
        let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 40);
        pm.write(1 << 39, b"far away").unwrap();
        pm.persist(1 << 39, 8).unwrap();
        assert!(pm.resident_bytes() <= 8192);
    }

    #[test]
    fn flush_and_fence_are_counted() {
        let pm = dev();
        let before = pm.ctx().stats.snapshot();
        pm.write(0, &[1u8; 256]).unwrap();
        pm.persist(0, 256).unwrap();
        let delta = pm.ctx().stats.snapshot().since(&before);
        assert_eq!(delta.pmem_flushes, 4); // 256 bytes = 4 lines
        assert_eq!(delta.pmem_fences, 1);
    }

    #[test]
    fn concurrent_writers_do_not_corrupt() {
        let pm = dev();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let pm = pm.clone();
                s.spawn(move || {
                    let base = t as u64 * 4 * PAGE;
                    pm.write(base, &vec![t; 3 * PAGE as usize]).unwrap();
                    pm.persist(base, 3 * PAGE).unwrap();
                });
            }
        });
        pm.crash(CrashSpec::LoseAll);
        for t in 0..4u8 {
            let mut out = vec![0u8; 3 * PAGE as usize];
            pm.read(t as u64 * 4 * PAGE, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == t), "writer {t} corrupted");
        }
    }
}
