//! Content-addressed extent store with persistent refcounts.
//!
//! The dedup tier (ROADMAP item 5) chunks TensorData into fixed-size
//! extents addressed by a splitmix64-keyed content hash. Each extent is
//! one 64-byte record on media — a single cache line, so a record
//! update followed by one persist is crash-atomic under the device
//! model. The insert protocol is ordered like the allocator's:
//!
//! 1. write the extent payload, persist;
//! 2. write `{chash, off, stored, logical, flags, refcount = 1}` into
//!    the record, persist;
//! 3. set `state = LIVE`, persist.
//!
//! A crash between any two steps leaves the record dead and the payload
//! allocation unreferenced; index recovery garbage-collects it by
//! reachability. Refcounts are persisted on every bump/drop but are
//! **advisory**: recovery recounts them from the live slot extent maps,
//! so a torn refcount update can never free a referenced extent nor
//! leak an unreferenced one.
//!
//! Cold extents may be RLE-recompressed in place via a relocation
//! journal in the table header (valid → apply → clear); replaying the
//! journal is idempotent, so any crash point resolves to exactly one of
//! the two locations. Decompression is paid on the restore path at
//! DAX-read cost.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::typed::{read_u32, read_u64, write_u64};
use crate::{PmemAllocator, PmemDevice, PmemError, PmemResult};

const XT_MAGIC: u64 = 0x5458_5355_5452_4F50; // "PORTUSXT"
const HEADER_SIZE: u64 = 64;
const REC_SIZE: u64 = 64;

// Header layout (one cache line).
const H_MAGIC: u64 = 0;
const H_MAX_EXTENTS: u64 = 12;
const H_JSTATE: u64 = 16;
const H_JSLOT: u64 = 24;
const H_JNEW_OFF: u64 = 32;
const H_JNEW_STORED: u64 = 40;
const H_JFLAGS: u64 = 48;

// Record layout (one cache line per extent).
const REC_STATE: u64 = 0;
const REC_CHASH: u64 = 8;
const REC_OFF: u64 = 16;
const REC_STORED: u64 = 24;
const REC_LOGICAL: u64 = 32;
const REC_REFCOUNT: u64 = 40;
const REC_FLAGS: u64 = 48;

const STATE_FREE: u64 = 0;
const STATE_LIVE: u64 = 1;

const JOURNAL_IDLE: u64 = 0;
const JOURNAL_VALID: u64 = 1;

/// Extent flag: payload is RLE-compressed on media.
pub const EXTENT_FLAG_COMPRESSED: u64 = 1;

/// Allocator tag for extent payload regions. Distinct from every
/// `name_hash` tag (model names hash through FNV-1a; this constant is
/// reserved), so per-model allocation views never claim extent data.
pub const EXTENT_DATA_TAG: u64 = 0x5854_4E54_4E45_5458; // "XTENTNTX"

/// One durable extent record, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentRecord {
    /// Content hash of the logical bytes.
    pub chash: u64,
    /// Device offset of the stored payload.
    pub data_off: u64,
    /// Stored payload length (compressed size if compressed).
    pub stored_len: u64,
    /// Logical (uncompressed) length.
    pub logical_len: u64,
    /// Persistent (advisory) reference count.
    pub refcount: u64,
    /// [`EXTENT_FLAG_COMPRESSED`] et al.
    pub flags: u64,
}

/// Outcome of [`ExtentStore::insert_or_ref`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentRef {
    /// Record slot holding the extent.
    pub slot: u32,
    /// True when the bytes deduplicated against an existing extent.
    pub shared: bool,
    /// Stored payload length (what a restore will DAX-read).
    pub stored_len: u64,
}

/// Space accounting over the live extents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentStats {
    /// Live extent records.
    pub live: u64,
    /// Live extents with `refcount > 1` (actually shared).
    pub shared: u64,
    /// Live extents stored compressed.
    pub compressed: u64,
    /// Sum of logical lengths over live extents.
    pub logical_bytes: u64,
    /// Sum of stored lengths over live extents (physical payload).
    pub stored_bytes: u64,
    /// Sum of `refcount * logical_len` — the logical bytes the live
    /// checkpoints collectively reference.
    pub referenced_logical: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// content hash -> record slot (first writer wins; a verify-failed
    /// collision stays unshared and unmapped).
    by_hash: HashMap<u64, u32>,
    free_slots: Vec<u32>,
    /// Monotonic access clock for cold-extent detection (volatile).
    touch_counter: u64,
    last_touch: HashMap<u32, u64>,
}

/// Content-addressed extent table at `table_base` on a [`PmemDevice`].
///
/// Payload regions come from the shared [`PmemAllocator`], tagged
/// [`EXTENT_DATA_TAG`]; the store itself only owns the record table.
#[derive(Debug)]
pub struct ExtentStore {
    dev: Arc<PmemDevice>,
    table_base: u64,
    max_extents: u32,
    inner: Mutex<Inner>,
}

impl ExtentStore {
    fn rec_off(&self, slot: u32) -> u64 {
        self.table_base + HEADER_SIZE + slot as u64 * REC_SIZE
    }

    /// Size on media of a table with `max_extents` records (header
    /// included).
    pub fn table_size(max_extents: u32) -> u64 {
        HEADER_SIZE + max_extents as u64 * REC_SIZE
    }

    /// Number of record slots.
    pub fn max_extents(&self) -> u32 {
        self.max_extents
    }

    /// Formats a fresh extent table: header plus zeroed records.
    ///
    /// # Errors
    ///
    /// Device bounds errors if the table exceeds capacity.
    pub fn format(
        dev: Arc<PmemDevice>,
        table_base: u64,
        max_extents: u32,
    ) -> PmemResult<ExtentStore> {
        let mut header = Vec::with_capacity(HEADER_SIZE as usize);
        header.extend_from_slice(&XT_MAGIC.to_le_bytes());
        header.extend_from_slice(&1u32.to_le_bytes()); // version
        header.extend_from_slice(&max_extents.to_le_bytes());
        header.resize(HEADER_SIZE as usize, 0);
        dev.write(table_base, &header)?;
        let zeros = vec![0u8; (max_extents as u64 * REC_SIZE) as usize];
        dev.write(table_base + HEADER_SIZE, &zeros)?;
        dev.persist(table_base, Self::table_size(max_extents))?;
        Ok(ExtentStore {
            dev,
            table_base,
            max_extents,
            inner: Mutex::new(Inner {
                free_slots: (0..max_extents).rev().collect(),
                ..Inner::default()
            }),
        })
    }

    /// Recovers a previously formatted table: replays the relocation
    /// journal, then rebuilds the hash map from the live records.
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] on bad magic or malformed records.
    pub fn recover(dev: Arc<PmemDevice>, table_base: u64) -> PmemResult<ExtentStore> {
        let magic = read_u64(&dev, table_base + H_MAGIC)?;
        if magic != XT_MAGIC {
            return Err(PmemError::Corrupt(format!(
                "bad extent table magic {magic:#018x}"
            )));
        }
        let max_extents = read_u32(&dev, table_base + H_MAX_EXTENTS)?;
        let store = ExtentStore {
            dev,
            table_base,
            max_extents,
            inner: Mutex::new(Inner::default()),
        };
        store.replay_journal()?;
        let mut inner = store.inner.lock();
        for slot in (0..max_extents).rev() {
            let rec_off = store.rec_off(slot);
            if read_u64(&store.dev, rec_off + REC_STATE)? == STATE_LIVE {
                let chash = read_u64(&store.dev, rec_off + REC_CHASH)?;
                // First live record wins; a duplicate hash (verify-failed
                // collision survivor) stays reachable but unshared.
                inner.by_hash.entry(chash).or_insert(slot);
            } else {
                inner.free_slots.push(slot);
            }
        }
        drop(inner);
        Ok(store)
    }

    /// Applies (or discards) the relocation journal. Idempotent: the
    /// record write and the journal clear are each single-line persists,
    /// so any crash point replays to exactly one location.
    fn replay_journal(&self) -> PmemResult<()> {
        if read_u64(&self.dev, self.table_base + H_JSTATE)? != JOURNAL_VALID {
            return Ok(());
        }
        let slot = read_u64(&self.dev, self.table_base + H_JSLOT)? as u32;
        let new_off = read_u64(&self.dev, self.table_base + H_JNEW_OFF)?;
        let new_stored = read_u64(&self.dev, self.table_base + H_JNEW_STORED)?;
        let flags = read_u64(&self.dev, self.table_base + H_JFLAGS)?;
        if slot < self.max_extents {
            let rec_off = self.rec_off(slot);
            if read_u64(&self.dev, rec_off + REC_STATE)? == STATE_LIVE
                && read_u64(&self.dev, rec_off + REC_OFF)? != new_off
            {
                write_u64(&self.dev, rec_off + REC_OFF, new_off)?;
                write_u64(&self.dev, rec_off + REC_STORED, new_stored)?;
                write_u64(&self.dev, rec_off + REC_FLAGS, flags)?;
                self.dev.persist(rec_off, REC_SIZE)?;
            }
        }
        write_u64(&self.dev, self.table_base + H_JSTATE, JOURNAL_IDLE)?;
        self.dev.persist(self.table_base + H_JSTATE, 8)?;
        Ok(())
    }

    fn read_record(&self, slot: u32) -> PmemResult<ExtentRecord> {
        let rec_off = self.rec_off(slot);
        if read_u64(&self.dev, rec_off + REC_STATE)? != STATE_LIVE {
            return Err(PmemError::Corrupt(format!(
                "extent slot {slot} is not live"
            )));
        }
        Ok(ExtentRecord {
            chash: read_u64(&self.dev, rec_off + REC_CHASH)?,
            data_off: read_u64(&self.dev, rec_off + REC_OFF)?,
            stored_len: read_u64(&self.dev, rec_off + REC_STORED)?,
            logical_len: read_u64(&self.dev, rec_off + REC_LOGICAL)?,
            refcount: read_u64(&self.dev, rec_off + REC_REFCOUNT)?,
            flags: read_u64(&self.dev, rec_off + REC_FLAGS)?,
        })
    }

    /// Decodes a live record.
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if `slot` is not live.
    pub fn record(&self, slot: u32) -> PmemResult<ExtentRecord> {
        self.read_record(slot)
    }

    /// Stores `bytes` as an extent, deduplicating against an existing
    /// extent with the same content. On a hash hit the stored payload is
    /// byte-compared (reads cost no simulated time); a true collision
    /// falls back to an unshared insert. With `compress` set, the
    /// payload is RLE-compressed when that is smaller.
    ///
    /// # Errors
    ///
    /// [`PmemError::TableFull`] when all records are live; allocator
    /// errors for the payload region.
    pub fn insert_or_ref(
        &self,
        bytes: &[u8],
        alloc: &PmemAllocator,
        compress: bool,
    ) -> PmemResult<ExtentRef> {
        assert!(!bytes.is_empty(), "extent payload must be non-empty");
        let chash = content_hash(bytes);
        let mut inner = self.inner.lock();
        inner.touch_counter += 1;
        let now = inner.touch_counter;
        if let Some(&slot) = inner.by_hash.get(&chash) {
            let rec = self.read_record(slot)?;
            if rec.logical_len == bytes.len() as u64 && self.payload_matches(&rec, bytes)? {
                let rec_off = self.rec_off(slot);
                write_u64(&self.dev, rec_off + REC_REFCOUNT, rec.refcount + 1)?;
                self.dev.persist(rec_off + REC_REFCOUNT, 8)?;
                inner.last_touch.insert(slot, now);
                return Ok(ExtentRef {
                    slot,
                    shared: true,
                    stored_len: rec.stored_len,
                });
            }
            // A genuine content-hash collision: insert unshared below,
            // leaving the map pointing at the first writer.
        }
        let slot = inner.free_slots.pop().ok_or(PmemError::TableFull)?;
        let (payload, flags) = if compress {
            let packed = rle_compress(bytes);
            if packed.len() < bytes.len() {
                (packed, EXTENT_FLAG_COMPRESSED)
            } else {
                (bytes.to_vec(), 0)
            }
        } else {
            (bytes.to_vec(), 0)
        };
        let region = match alloc.alloc(payload.len() as u64, EXTENT_DATA_TAG) {
            Ok(region) => region,
            Err(e) => {
                inner.free_slots.push(slot);
                return Err(e);
            }
        };
        // Crash order: payload, then record fields (refcount = 1), then
        // the state word. A crash short of step 3 leaves the payload
        // region unreferenced for recovery's reachability GC.
        self.dev.write(region.offset, &payload)?;
        self.dev.persist(region.offset, payload.len() as u64)?;
        let rec_off = self.rec_off(slot);
        write_u64(&self.dev, rec_off + REC_CHASH, chash)?;
        write_u64(&self.dev, rec_off + REC_OFF, region.offset)?;
        write_u64(&self.dev, rec_off + REC_STORED, payload.len() as u64)?;
        write_u64(&self.dev, rec_off + REC_LOGICAL, bytes.len() as u64)?;
        write_u64(&self.dev, rec_off + REC_REFCOUNT, 1)?;
        write_u64(&self.dev, rec_off + REC_FLAGS, flags)?;
        self.dev
            .persist(rec_off + REC_CHASH, REC_SIZE - REC_CHASH)?;
        write_u64(&self.dev, rec_off + REC_STATE, STATE_LIVE)?;
        self.dev.persist(rec_off + REC_STATE, 8)?;
        inner.by_hash.entry(chash).or_insert(slot);
        inner.last_touch.insert(slot, now);
        Ok(ExtentRef {
            slot,
            shared: false,
            stored_len: payload.len() as u64,
        })
    }

    /// Byte-compares `bytes` against the stored payload of `rec`.
    fn payload_matches(&self, rec: &ExtentRecord, bytes: &[u8]) -> PmemResult<bool> {
        let mut stored = vec![0u8; rec.stored_len as usize];
        self.dev.read(rec.data_off, &mut stored)?;
        if rec.flags & EXTENT_FLAG_COMPRESSED != 0 {
            let logical = rle_decompress(&stored, rec.logical_len as usize)?;
            Ok(logical == bytes)
        } else {
            Ok(stored == bytes)
        }
    }

    /// Durably bumps the refcount of a live extent; returns the new
    /// count.
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if `slot` is not live.
    pub fn incref(&self, slot: u32) -> PmemResult<u64> {
        let rec = self.read_record(slot)?;
        let rec_off = self.rec_off(slot);
        write_u64(&self.dev, rec_off + REC_REFCOUNT, rec.refcount + 1)?;
        self.dev.persist(rec_off + REC_REFCOUNT, 8)?;
        let mut inner = self.inner.lock();
        inner.touch_counter += 1;
        let now = inner.touch_counter;
        inner.last_touch.insert(slot, now);
        Ok(rec.refcount + 1)
    }

    /// Durably drops one reference; returns the new count. Never frees
    /// the payload — a refcount-0 extent waits for
    /// [`ExtentStore::sweep_unreferenced`].
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if `slot` is not live.
    pub fn decref(&self, slot: u32) -> PmemResult<u64> {
        let rec = self.read_record(slot)?;
        let next = rec.refcount.saturating_sub(1);
        let rec_off = self.rec_off(slot);
        write_u64(&self.dev, rec_off + REC_REFCOUNT, next)?;
        self.dev.persist(rec_off + REC_REFCOUNT, 8)?;
        Ok(next)
    }

    /// Overwrites the persistent refcount (recovery fixup after a
    /// recount from the live extent maps).
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if `slot` is not live.
    pub fn set_refcount(&self, slot: u32, count: u64) -> PmemResult<()> {
        self.read_record(slot)?;
        let rec_off = self.rec_off(slot);
        write_u64(&self.dev, rec_off + REC_REFCOUNT, count)?;
        self.dev.persist(rec_off + REC_REFCOUNT, 8)?;
        Ok(())
    }

    /// Reads an extent's logical bytes into `out` (decompressing if
    /// needed); returns the stored length actually read off media, for
    /// DAX-read cost accounting.
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if `slot` is not live or the payload fails
    /// to decompress to the recorded logical length.
    pub fn read_into(&self, slot: u32, out: &mut Vec<u8>) -> PmemResult<u64> {
        let rec = self.read_record(slot)?;
        let mut stored = vec![0u8; rec.stored_len as usize];
        self.dev.read(rec.data_off, &mut stored)?;
        if rec.flags & EXTENT_FLAG_COMPRESSED != 0 {
            *out = rle_decompress(&stored, rec.logical_len as usize)?;
        } else {
            *out = stored;
        }
        let mut inner = self.inner.lock();
        inner.touch_counter += 1;
        let now = inner.touch_counter;
        inner.last_touch.insert(slot, now);
        Ok(rec.stored_len)
    }

    /// All live extents `(slot, record)` in slot order.
    ///
    /// # Errors
    ///
    /// Device bounds errors only.
    pub fn live_extents(&self) -> PmemResult<Vec<(u32, ExtentRecord)>> {
        let mut out = Vec::new();
        for slot in 0..self.max_extents {
            if read_u64(&self.dev, self.rec_off(slot) + REC_STATE)? == STATE_LIVE {
                out.push((slot, self.read_record(slot)?));
            }
        }
        Ok(out)
    }

    /// Frees every live extent whose refcount is 0: record first
    /// (`state = FREE`, persisted), then the payload region. Returns
    /// `(extents, payload_bytes)` swept.
    ///
    /// # Errors
    ///
    /// [`PmemError::Corrupt`] if a swept extent's payload is unknown to
    /// the allocator.
    pub fn sweep_unreferenced(&self, alloc: &PmemAllocator) -> PmemResult<(usize, u64)> {
        let by_offset: HashMap<u64, crate::PmemAlloc> = alloc
            .live_allocations()?
            .into_iter()
            .filter(|a| a.tag == EXTENT_DATA_TAG)
            .map(|a| (a.offset, a))
            .collect();
        let mut inner = self.inner.lock();
        let mut swept = 0usize;
        let mut bytes = 0u64;
        for slot in 0..self.max_extents {
            let rec_off = self.rec_off(slot);
            if read_u64(&self.dev, rec_off + REC_STATE)? != STATE_LIVE {
                continue;
            }
            if read_u64(&self.dev, rec_off + REC_REFCOUNT)? != 0 {
                continue;
            }
            let rec = self.read_record(slot)?;
            let region = by_offset.get(&rec.data_off).ok_or_else(|| {
                PmemError::Corrupt(format!(
                    "extent {slot} payload at {} unknown to the allocator",
                    rec.data_off
                ))
            })?;
            // Record dies before the payload region is reusable, so a
            // crash mid-sweep never leaves a live record over freed
            // space.
            write_u64(&self.dev, rec_off + REC_STATE, STATE_FREE)?;
            self.dev.persist(rec_off + REC_STATE, 8)?;
            alloc.free(region)?;
            if inner.by_hash.get(&rec.chash) == Some(&slot) {
                inner.by_hash.remove(&rec.chash);
            }
            inner.free_slots.push(slot);
            inner.last_touch.remove(&slot);
            swept += 1;
            bytes += rec.stored_len;
        }
        Ok((swept, bytes))
    }

    /// RLE-recompresses live, referenced, uncompressed extents that
    /// have not been touched for `min_idle` accesses, via the
    /// relocation journal. Returns `(extents, bytes_saved)`.
    ///
    /// # Errors
    ///
    /// Allocator and device errors; a crash at any point is repaired by
    /// [`ExtentStore::recover`]'s journal replay plus reachability GC.
    pub fn compress_cold(&self, alloc: &PmemAllocator, min_idle: u64) -> PmemResult<(usize, u64)> {
        let by_offset: HashMap<u64, crate::PmemAlloc> = alloc
            .live_allocations()?
            .into_iter()
            .filter(|a| a.tag == EXTENT_DATA_TAG)
            .map(|a| (a.offset, a))
            .collect();
        let inner = self.inner.lock();
        let now = inner.touch_counter;
        let mut compressed = 0usize;
        let mut saved = 0u64;
        for slot in 0..self.max_extents {
            let rec_off = self.rec_off(slot);
            if read_u64(&self.dev, rec_off + REC_STATE)? != STATE_LIVE {
                continue;
            }
            let rec = self.read_record(slot)?;
            if rec.refcount == 0 || rec.flags & EXTENT_FLAG_COMPRESSED != 0 {
                continue;
            }
            let idle = now.saturating_sub(inner.last_touch.get(&slot).copied().unwrap_or(0));
            if idle < min_idle {
                continue;
            }
            let mut payload = vec![0u8; rec.logical_len as usize];
            self.dev.read(rec.data_off, &mut payload)?;
            let packed = rle_compress(&payload);
            if packed.len() >= payload.len() {
                continue;
            }
            let old = by_offset.get(&rec.data_off).ok_or_else(|| {
                PmemError::Corrupt(format!(
                    "extent {slot} payload at {} unknown to the allocator",
                    rec.data_off
                ))
            })?;
            let new_region = alloc.alloc(packed.len() as u64, EXTENT_DATA_TAG)?;
            self.dev.write(new_region.offset, &packed)?;
            self.dev.persist(new_region.offset, packed.len() as u64)?;
            // Journal: fields then the valid word, one header line.
            write_u64(&self.dev, self.table_base + H_JSLOT, slot as u64)?;
            write_u64(&self.dev, self.table_base + H_JNEW_OFF, new_region.offset)?;
            write_u64(
                &self.dev,
                self.table_base + H_JNEW_STORED,
                packed.len() as u64,
            )?;
            write_u64(
                &self.dev,
                self.table_base + H_JFLAGS,
                rec.flags | EXTENT_FLAG_COMPRESSED,
            )?;
            write_u64(&self.dev, self.table_base + H_JSTATE, JOURNAL_VALID)?;
            self.dev.persist(self.table_base, HEADER_SIZE)?;
            // Apply to the record (one line), clear the journal, then
            // free the old payload.
            write_u64(&self.dev, rec_off + REC_OFF, new_region.offset)?;
            write_u64(&self.dev, rec_off + REC_STORED, packed.len() as u64)?;
            write_u64(
                &self.dev,
                rec_off + REC_FLAGS,
                rec.flags | EXTENT_FLAG_COMPRESSED,
            )?;
            self.dev.persist(rec_off, REC_SIZE)?;
            write_u64(&self.dev, self.table_base + H_JSTATE, JOURNAL_IDLE)?;
            self.dev.persist(self.table_base + H_JSTATE, 8)?;
            alloc.free(old)?;
            compressed += 1;
            saved += rec.stored_len - packed.len() as u64;
        }
        Ok((compressed, saved))
    }

    /// Space accounting over the live extents.
    ///
    /// # Errors
    ///
    /// Device bounds errors only.
    pub fn stats(&self) -> PmemResult<ExtentStats> {
        let mut stats = ExtentStats::default();
        for (_slot, rec) in self.live_extents()? {
            stats.live += 1;
            if rec.refcount > 1 {
                stats.shared += 1;
            }
            if rec.flags & EXTENT_FLAG_COMPRESSED != 0 {
                stats.compressed += 1;
            }
            stats.logical_bytes += rec.logical_len;
            stats.stored_bytes += rec.stored_len;
            stats.referenced_logical += rec.refcount * rec.logical_len;
        }
        Ok(stats)
    }
}

/// splitmix64 finalizer (Steele et al.), the keyed mixing step of
/// [`content_hash`].
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content hash of an extent payload: a splitmix64-keyed fold over the
/// bytes, length-finalized so prefixes of each other differ.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0x5058_5420_4841_5348; // "PXT HASH"
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    splitmix64(h ^ bytes.len() as u64)
}

/// Byte-oriented RLE: control byte `c < 0x80` introduces `c + 1`
/// literal bytes; `c >= 0x80` repeats the next byte `(c & 0x7F) + 3`
/// times (runs of 3..=130).
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == data[i] && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x80 | (run as u8 - 3));
            out.push(data[i]);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lit: &[u8]) {
    while !lit.is_empty() {
        let take = lit.len().min(128);
        out.push(take as u8 - 1);
        out.extend_from_slice(&lit[..take]);
        lit = &lit[take..];
    }
}

/// Inverse of [`rle_compress`]; the output must decode to exactly
/// `logical_len` bytes.
///
/// # Errors
///
/// [`PmemError::Corrupt`] on a truncated stream or length mismatch.
pub fn rle_decompress(data: &[u8], logical_len: usize) -> PmemResult<Vec<u8>> {
    let mut out = Vec::with_capacity(logical_len);
    let mut i = 0usize;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            let take = c as usize + 1;
            if i + take > data.len() {
                return Err(PmemError::Corrupt("truncated RLE literal run".into()));
            }
            out.extend_from_slice(&data[i..i + take]);
            i += take;
        } else {
            if i >= data.len() {
                return Err(PmemError::Corrupt("truncated RLE repeat run".into()));
            }
            let count = (c & 0x7F) as usize + 3;
            out.extend(std::iter::repeat_n(data[i], count));
            i += 1;
        }
        if out.len() > logical_len {
            return Err(PmemError::Corrupt(
                "RLE stream overruns logical length".into(),
            ));
        }
    }
    if out.len() != logical_len {
        return Err(PmemError::Corrupt(format!(
            "RLE stream decoded {} bytes, expected {logical_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrashSpec, PmemMode};
    use portus_sim::SimContext;

    fn setup() -> (Arc<PmemDevice>, PmemAllocator, ExtentStore) {
        let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 21);
        // AllocTable at 0, extent table after it, heap after that.
        let xt_base = PmemAllocator::table_size(128);
        let heap_base = (xt_base + ExtentStore::table_size(64) + 4095) & !4095;
        let alloc = PmemAllocator::format(pm.clone(), 0, 128, heap_base, 1 << 21).unwrap();
        let store = ExtentStore::format(pm.clone(), xt_base, 64).unwrap();
        (pm, alloc, store)
    }

    #[test]
    fn rle_round_trips() {
        for data in [
            vec![0u8; 4096],
            (0..=255u8).cycle().take(1000).collect::<Vec<_>>(),
            b"aaabbbbbbbbccdddddddddddddddddddddddd".to_vec(),
            vec![7u8; 1],
            vec![7u8; 2],
            vec![7u8; 3],
            vec![7u8; 131],
            (0..4096).map(|i| (i % 5 == 0) as u8 * 9).collect(),
        ] {
            let packed = rle_compress(&data);
            assert_eq!(rle_decompress(&packed, data.len()).unwrap(), data);
        }
        // All-same input collapses hard.
        assert!(rle_compress(&vec![0u8; 4096]).len() < 100);
    }

    #[test]
    fn rle_rejects_truncation_and_length_mismatch() {
        let packed = rle_compress(&[5u8; 64]);
        assert!(rle_decompress(&packed[..packed.len() - 1], 64).is_err());
        assert!(rle_decompress(&packed, 63).is_err());
        assert!(rle_decompress(&packed, 65).is_err());
    }

    #[test]
    fn content_hash_distinguishes_lengths_and_bytes() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(&[0u8; 8]), content_hash(&[0u8; 9]));
    }

    #[test]
    fn identical_payloads_share_one_extent() {
        let (_pm, alloc, store) = setup();
        let a = store.insert_or_ref(&[7u8; 1024], &alloc, false).unwrap();
        let b = store.insert_or_ref(&[7u8; 1024], &alloc, false).unwrap();
        assert!(!a.shared);
        assert!(b.shared);
        assert_eq!(a.slot, b.slot);
        let rec = store.record(a.slot).unwrap();
        assert_eq!(rec.refcount, 2);
        let stats = store.stats().unwrap();
        assert_eq!(stats.live, 1);
        assert_eq!(stats.shared, 1);
        assert_eq!(stats.referenced_logical, 2048);
    }

    #[test]
    fn compressed_extents_read_back_logical_bytes() {
        let (_pm, alloc, store) = setup();
        let payload = vec![0u8; 64 * 1024];
        let r = store.insert_or_ref(&payload, &alloc, true).unwrap();
        assert!(r.stored_len < payload.len() as u64);
        let rec = store.record(r.slot).unwrap();
        assert_ne!(rec.flags & EXTENT_FLAG_COMPRESSED, 0);
        let mut out = Vec::new();
        let stored = store.read_into(r.slot, &mut out).unwrap();
        assert_eq!(stored, r.stored_len);
        assert_eq!(out, payload);
    }

    #[test]
    fn decref_then_sweep_frees_the_payload() {
        let (_pm, alloc, store) = setup();
        let free0 = alloc.free_bytes();
        let r = store.insert_or_ref(&[9u8; 4096], &alloc, false).unwrap();
        store.incref(r.slot).unwrap();
        store.decref(r.slot).unwrap();
        // Still referenced: sweep must not touch it.
        assert_eq!(store.sweep_unreferenced(&alloc).unwrap(), (0, 0));
        store.decref(r.slot).unwrap();
        let (n, bytes) = store.sweep_unreferenced(&alloc).unwrap();
        assert_eq!(n, 1);
        assert_eq!(bytes, 4096);
        assert_eq!(alloc.free_bytes(), free0);
        assert!(store.record(r.slot).is_err());
        // The slot and hash are reusable.
        let again = store.insert_or_ref(&[9u8; 4096], &alloc, false).unwrap();
        assert!(!again.shared);
    }

    #[test]
    fn recovery_rebuilds_the_hash_map() {
        let (pm, alloc, store) = setup();
        let a = store.insert_or_ref(&[1u8; 512], &alloc, false).unwrap();
        store.insert_or_ref(&[2u8; 512], &alloc, false).unwrap();
        let xt_base = PmemAllocator::table_size(128);
        drop(store);

        let rec = ExtentStore::recover(pm, xt_base).unwrap();
        assert_eq!(rec.live_extents().unwrap().len(), 2);
        let again = rec.insert_or_ref(&[1u8; 512], &alloc, false).unwrap();
        assert!(again.shared);
        assert_eq!(again.slot, a.slot);
        assert_eq!(rec.record(a.slot).unwrap().refcount, 2);
    }

    #[test]
    fn torn_insert_leaves_no_live_record() {
        let (pm, alloc, store) = setup();
        store.insert_or_ref(&[3u8; 256], &alloc, false).unwrap();
        // Forge a torn second insert: fields persisted, state not.
        let xt_base = PmemAllocator::table_size(128);
        let rec_off = xt_base + HEADER_SIZE + REC_SIZE; // slot 1
        write_u64(&pm, rec_off + REC_CHASH, 0x1234).unwrap();
        write_u64(&pm, rec_off + REC_REFCOUNT, 1).unwrap();
        pm.persist(rec_off + REC_CHASH, REC_SIZE - REC_CHASH)
            .unwrap();
        pm.crash(CrashSpec::LoseAll);

        let rec = ExtentStore::recover(pm, xt_base).unwrap();
        assert_eq!(rec.live_extents().unwrap().len(), 1);
    }

    #[test]
    fn journal_replay_finishes_an_interrupted_relocation() {
        let (pm, alloc, store) = setup();
        let payload = vec![0u8; 8192];
        let r = store.insert_or_ref(&payload, &alloc, false).unwrap();
        let old = store.record(r.slot).unwrap();
        // Stage the compressed copy and a valid journal, then crash
        // before the record update — as compress_cold would.
        let packed = rle_compress(&payload);
        let new_region = alloc.alloc(packed.len() as u64, EXTENT_DATA_TAG).unwrap();
        pm.write(new_region.offset, &packed).unwrap();
        pm.persist(new_region.offset, packed.len() as u64).unwrap();
        let xt_base = PmemAllocator::table_size(128);
        write_u64(&pm, xt_base + H_JSLOT, r.slot as u64).unwrap();
        write_u64(&pm, xt_base + H_JNEW_OFF, new_region.offset).unwrap();
        write_u64(&pm, xt_base + H_JNEW_STORED, packed.len() as u64).unwrap();
        write_u64(&pm, xt_base + H_JFLAGS, EXTENT_FLAG_COMPRESSED).unwrap();
        write_u64(&pm, xt_base + H_JSTATE, JOURNAL_VALID).unwrap();
        pm.persist(xt_base, HEADER_SIZE).unwrap();
        pm.crash(CrashSpec::LoseAll);

        let rec = ExtentStore::recover(pm.clone(), xt_base).unwrap();
        let after = rec.record(r.slot).unwrap();
        assert_eq!(after.data_off, new_region.offset);
        assert_eq!(after.stored_len, packed.len() as u64);
        assert_ne!(after.flags & EXTENT_FLAG_COMPRESSED, 0);
        assert_ne!(after.data_off, old.data_off);
        // Journal is idle again and replay is idempotent.
        assert_eq!(read_u64(&pm, xt_base + H_JSTATE).unwrap(), JOURNAL_IDLE);
        let mut out = Vec::new();
        rec.read_into(r.slot, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn compress_cold_relocates_idle_extents() {
        let (_pm, alloc, store) = setup();
        let cold = store
            .insert_or_ref(&vec![0u8; 16384], &alloc, false)
            .unwrap();
        // Touch a second extent repeatedly so only the first is idle.
        let hot = store
            .insert_or_ref(&vec![1u8; 16384], &alloc, false)
            .unwrap();
        let mut out = Vec::new();
        for _ in 0..8 {
            store.read_into(hot.slot, &mut out).unwrap();
        }
        let (n, saved) = store.compress_cold(&alloc, 5).unwrap();
        assert_eq!(n, 1);
        assert!(saved > 0);
        let rec = store.record(cold.slot).unwrap();
        assert_ne!(rec.flags & EXTENT_FLAG_COMPRESSED, 0);
        assert_eq!(
            store.record(hot.slot).unwrap().flags & EXTENT_FLAG_COMPRESSED,
            0
        );
        store.read_into(cold.slot, &mut out).unwrap();
        assert_eq!(out, vec![0u8; 16384]);
    }

    #[test]
    fn table_full_is_reported() {
        let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
        let xt_base = PmemAllocator::table_size(32);
        let heap_base = (xt_base + ExtentStore::table_size(2) + 4095) & !4095;
        let alloc = PmemAllocator::format(pm.clone(), 0, 32, heap_base, 1 << 20).unwrap();
        let store = ExtentStore::format(pm, xt_base, 2).unwrap();
        store.insert_or_ref(&[1u8; 64], &alloc, false).unwrap();
        store.insert_or_ref(&[2u8; 64], &alloc, false).unwrap();
        assert!(matches!(
            store.insert_or_ref(&[3u8; 64], &alloc, false),
            Err(PmemError::TableFull)
        ));
    }
}
