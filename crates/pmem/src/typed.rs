//! Little-endian typed accessors over a [`PmemDevice`].
//!
//! The persistent index structures (ModelTable, MIndex) are laid out by
//! hand; these helpers keep the encode/decode sites short and uniform.

use crate::{PmemDevice, PmemResult};

/// Reads a little-endian `u64` at `offset`.
///
/// # Errors
///
/// Propagates device bounds errors.
pub fn read_u64(dev: &PmemDevice, offset: u64) -> PmemResult<u64> {
    let mut buf = [0u8; 8];
    dev.read(offset, &mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a little-endian `u64` at `offset` (volatile until persisted).
///
/// # Errors
///
/// Propagates device bounds errors.
pub fn write_u64(dev: &PmemDevice, offset: u64, value: u64) -> PmemResult<()> {
    dev.write(offset, &value.to_le_bytes())
}

/// Reads a little-endian `u32` at `offset`.
///
/// # Errors
///
/// Propagates device bounds errors.
pub fn read_u32(dev: &PmemDevice, offset: u64) -> PmemResult<u32> {
    let mut buf = [0u8; 4];
    dev.read(offset, &mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a little-endian `u32` at `offset` (volatile until persisted).
///
/// # Errors
///
/// Propagates device bounds errors.
pub fn write_u32(dev: &PmemDevice, offset: u64, value: u32) -> PmemResult<()> {
    dev.write(offset, &value.to_le_bytes())
}

/// Reads a length-prefixed (u16) UTF-8 string at `offset`; returns the
/// string and the number of bytes consumed.
///
/// # Errors
///
/// Propagates device bounds errors; invalid UTF-8 is replaced.
pub fn read_str(dev: &PmemDevice, offset: u64) -> PmemResult<(String, u64)> {
    let mut lbuf = [0u8; 2];
    dev.read(offset, &mut lbuf)?;
    let len = u16::from_le_bytes(lbuf) as usize;
    let mut sbuf = vec![0u8; len];
    dev.read(offset + 2, &mut sbuf)?;
    Ok((String::from_utf8_lossy(&sbuf).into_owned(), 2 + len as u64))
}

/// Writes a length-prefixed (u16) UTF-8 string at `offset`; returns the
/// number of bytes written.
///
/// # Errors
///
/// Propagates device bounds errors.
///
/// # Panics
///
/// Panics if the string exceeds `u16::MAX` bytes.
pub fn write_str(dev: &PmemDevice, offset: u64, s: &str) -> PmemResult<u64> {
    let bytes = s.as_bytes();
    assert!(
        bytes.len() <= u16::MAX as usize,
        "string too long for u16 prefix"
    );
    dev.write(offset, &(bytes.len() as u16).to_le_bytes())?;
    dev.write(offset + 2, bytes)?;
    Ok(2 + bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemMode;
    use portus_sim::SimContext;

    #[test]
    fn u64_and_u32_round_trip() {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 4096);
        write_u64(&dev, 0, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        write_u32(&dev, 8, 77).unwrap();
        assert_eq!(read_u64(&dev, 0).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(read_u32(&dev, 8).unwrap(), 77);
    }

    #[test]
    fn strings_round_trip() {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 4096);
        let n = write_str(&dev, 100, "bert.embedding.weight").unwrap();
        let (s, consumed) = read_str(&dev, 100).unwrap();
        assert_eq!(s, "bert.embedding.weight");
        assert_eq!(n, consumed);
    }
}
