//! A persistent region allocator with an on-media allocation table.
//!
//! This is the reproduction of the paper's *Allocator* which "records the
//! allocation status of each PMEM region in AllocTable" (§III-B). The
//! table is a fixed array of 32-byte slots on PMem; each live slot
//! records `{offset, len, tag}` of one region. Slot state transitions are
//! ordered so that recovery after any crash sees either the old or the
//! new state, never a torn one:
//!
//! 1. write `offset/len/tag` fields, persist;
//! 2. set `state = LIVE`, persist (8-byte atomic).
//!
//! Free is the reverse: `state = FREE`, persist. The free-extent map is
//! volatile and rebuilt from the table on [`PmemAllocator::recover`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{PmemDevice, PmemError, PmemResult};

const TABLE_MAGIC: u64 = 0x504F_5254_5553_4154; // "PORTUSAT"
const ENTRY_SIZE: u64 = 32;
const HEADER_SIZE: u64 = 64;

const STATE_FREE: u64 = 0;
const STATE_LIVE: u64 = 1;

/// A live persistent allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmemAlloc {
    /// Byte offset of the region on the device.
    pub offset: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Caller-chosen tag (e.g. a model id) recorded durably with the
    /// region; lets recovery attribute regions to owners.
    pub tag: u64,
    slot: u32,
}

impl PmemAlloc {
    /// The table slot backing this allocation (diagnostic).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

#[derive(Debug)]
struct Inner {
    /// offset -> len of free extents, coalesced.
    free: BTreeMap<u64, u64>,
    /// Table slots not currently live.
    free_slots: Vec<u32>,
}

/// Persistent allocator over a `[heap_base, heap_end)` region of a
/// [`PmemDevice`], with its AllocTable at `table_base`.
///
/// # Examples
///
/// ```
/// use portus_pmem::{PmemAllocator, PmemDevice, PmemMode};
/// use portus_sim::SimContext;
///
/// let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
/// let alloc = PmemAllocator::format(pm.clone(), 0, 128, 1 << 16, 1 << 20)?;
/// let region = alloc.alloc(4096, 7)?;
/// assert_eq!(region.len, 4096);
/// alloc.free(&region)?;
/// # Ok::<(), portus_pmem::PmemError>(())
/// ```
#[derive(Debug)]
pub struct PmemAllocator {
    dev: Arc<PmemDevice>,
    table_base: u64,
    max_entries: u32,
    heap_base: u64,
    heap_end: u64,
    inner: Mutex<Inner>,
}

impl PmemAllocator {
    fn entry_offset(&self, slot: u32) -> u64 {
        self.table_base + HEADER_SIZE + slot as u64 * ENTRY_SIZE
    }

    /// Size on media of a table with `max_entries` slots (header
    /// included); lay the heap out after this.
    pub fn table_size(max_entries: u32) -> u64 {
        HEADER_SIZE + max_entries as u64 * ENTRY_SIZE
    }

    /// Formats a fresh allocator: writes the header, zeroes the table,
    /// and declares `[heap_base, heap_end)` free.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::Corrupt`] if the layout is inconsistent
    /// (table overlapping heap, zero-sized heap) and device bounds
    /// errors if the ranges exceed capacity.
    pub fn format(
        dev: Arc<PmemDevice>,
        table_base: u64,
        max_entries: u32,
        heap_base: u64,
        heap_end: u64,
    ) -> PmemResult<PmemAllocator> {
        let table_end = table_base + Self::table_size(max_entries);
        if heap_base < table_end || heap_end <= heap_base {
            return Err(PmemError::Corrupt(format!(
                "bad layout: table [{table_base}, {table_end}) vs heap [{heap_base}, {heap_end})"
            )));
        }
        let mut header = Vec::with_capacity(HEADER_SIZE as usize);
        header.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        header.extend_from_slice(&1u32.to_le_bytes()); // version
        header.extend_from_slice(&max_entries.to_le_bytes());
        header.extend_from_slice(&heap_base.to_le_bytes());
        header.extend_from_slice(&heap_end.to_le_bytes());
        header.resize(HEADER_SIZE as usize, 0);
        dev.write(table_base, &header)?;
        // Zero the whole entry table.
        let zeros = vec![0u8; (max_entries as u64 * ENTRY_SIZE) as usize];
        dev.write(table_base + HEADER_SIZE, &zeros)?;
        dev.persist(table_base, Self::table_size(max_entries))?;

        let inner = Inner {
            free: BTreeMap::from([(heap_base, heap_end - heap_base)]),
            free_slots: (0..max_entries).rev().collect(),
        };
        Ok(PmemAllocator {
            dev,
            table_base,
            max_entries,
            heap_base,
            heap_end,
            inner: Mutex::new(inner),
        })
    }

    /// Recovers an allocator from a previously formatted table,
    /// rebuilding the free map from the live entries. Survivor of any
    /// crash point thanks to the two-step slot protocol.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::Corrupt`] on bad magic or on live entries
    /// that overlap each other or fall outside the heap.
    pub fn recover(dev: Arc<PmemDevice>, table_base: u64) -> PmemResult<PmemAllocator> {
        let mut header = [0u8; HEADER_SIZE as usize];
        dev.read(table_base, &mut header)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("slice of 8"));
        if magic != TABLE_MAGIC {
            return Err(PmemError::Corrupt(format!(
                "bad AllocTable magic {magic:#018x}"
            )));
        }
        let max_entries = u32::from_le_bytes(header[12..16].try_into().expect("slice of 4"));
        let heap_base = u64::from_le_bytes(header[16..24].try_into().expect("slice of 8"));
        let heap_end = u64::from_le_bytes(header[24..32].try_into().expect("slice of 8"));

        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut free_slots = Vec::new();
        for slot in 0..max_entries {
            let off = table_base + HEADER_SIZE + slot as u64 * ENTRY_SIZE;
            let mut entry = [0u8; ENTRY_SIZE as usize];
            dev.read(off, &mut entry)?;
            let state = u64::from_le_bytes(entry[0..8].try_into().expect("slice of 8"));
            if state == STATE_LIVE {
                let offset = u64::from_le_bytes(entry[8..16].try_into().expect("slice of 8"));
                let len = u64::from_le_bytes(entry[16..24].try_into().expect("slice of 8"));
                if offset < heap_base || offset + len > heap_end || len == 0 {
                    return Err(PmemError::Corrupt(format!(
                        "live entry {slot} [{offset}, +{len}) outside heap"
                    )));
                }
                live.push((offset, len));
            } else {
                free_slots.push(slot);
            }
        }
        free_slots.reverse();

        // Rebuild the free map as heap minus live regions.
        live.sort_unstable();
        for pair in live.windows(2) {
            if pair[0].0 + pair[0].1 > pair[1].0 {
                return Err(PmemError::Corrupt(format!(
                    "live regions overlap: [{}, +{}) and [{}, +{})",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                )));
            }
        }
        let mut free = BTreeMap::new();
        let mut cursor = heap_base;
        for (offset, len) in &live {
            if *offset > cursor {
                free.insert(cursor, offset - cursor);
            }
            cursor = offset + len;
        }
        if cursor < heap_end {
            free.insert(cursor, heap_end - cursor);
        }

        Ok(PmemAllocator {
            dev,
            table_base,
            max_entries,
            heap_base,
            heap_end,
            inner: Mutex::new(Inner { free, free_slots }),
        })
    }

    /// Allocates `len` bytes (64-byte aligned) tagged `tag`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfSpace`] if no extent fits, [`PmemError::TableFull`]
    /// if all slots are live.
    pub fn alloc(&self, len: u64, tag: u64) -> PmemResult<PmemAlloc> {
        self.alloc_aligned(len, 64, tag)
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    ///
    /// # Errors
    ///
    /// As [`PmemAllocator::alloc`]; also [`PmemError::Unaligned`] if
    /// `align` is not a power of two.
    pub fn alloc_aligned(&self, len: u64, align: u64, tag: u64) -> PmemResult<PmemAlloc> {
        if len == 0 || !align.is_power_of_two() {
            return Err(PmemError::Unaligned { offset: len, align });
        }
        let mut inner = self.inner.lock();
        // First-fit over the free map, honoring alignment.
        let mut choice = None;
        for (&off, &flen) in inner.free.iter() {
            let aligned = (off + align - 1) & !(align - 1);
            let pad = aligned - off;
            if flen >= pad + len {
                choice = Some((off, flen, aligned, pad));
                break;
            }
        }
        let (off, flen, aligned, pad) = choice.ok_or_else(|| PmemError::OutOfSpace {
            requested: len,
            largest_free: inner.free.values().copied().max().unwrap_or(0),
        })?;
        let slot = inner.free_slots.pop().ok_or(PmemError::TableFull)?;

        // Persist the slot: fields first, then the state word.
        let entry_off = self.entry_offset(slot);
        let mut fields = [0u8; 24];
        fields[0..8].copy_from_slice(&aligned.to_le_bytes());
        fields[8..16].copy_from_slice(&len.to_le_bytes());
        fields[16..24].copy_from_slice(&tag.to_le_bytes());
        self.dev.write(entry_off + 8, &fields)?;
        self.dev.persist(entry_off + 8, 24)?;
        self.dev.write(entry_off, &STATE_LIVE.to_le_bytes())?;
        self.dev.persist(entry_off, 8)?;

        // Update the volatile free map.
        inner.free.remove(&off);
        if pad > 0 {
            inner.free.insert(off, pad);
        }
        let rem = flen - pad - len;
        if rem > 0 {
            inner.free.insert(aligned + len, rem);
        }
        Ok(PmemAlloc {
            offset: aligned,
            len,
            tag,
            slot,
        })
    }

    /// Frees a region, durably clearing its slot and coalescing the free
    /// map.
    ///
    /// # Errors
    ///
    /// Device bounds errors only (a double free is caught by a debug
    /// assertion on the free map).
    pub fn free(&self, alloc: &PmemAlloc) -> PmemResult<()> {
        let entry_off = self.entry_offset(alloc.slot);
        self.dev.write(entry_off, &STATE_FREE.to_le_bytes())?;
        self.dev.persist(entry_off, 8)?;

        let mut inner = self.inner.lock();
        inner.free_slots.push(alloc.slot);
        insert_coalesced(&mut inner.free, alloc.offset, alloc.len);
        Ok(())
    }

    /// All live allocations, in offset order (from the durable table).
    pub fn live_allocations(&self) -> PmemResult<Vec<PmemAlloc>> {
        let mut out = Vec::new();
        for slot in 0..self.max_entries {
            let off = self.entry_offset(slot);
            let mut entry = [0u8; ENTRY_SIZE as usize];
            self.dev.read(off, &mut entry)?;
            if u64::from_le_bytes(entry[0..8].try_into().expect("slice of 8")) == STATE_LIVE {
                out.push(PmemAlloc {
                    offset: u64::from_le_bytes(entry[8..16].try_into().expect("slice of 8")),
                    len: u64::from_le_bytes(entry[16..24].try_into().expect("slice of 8")),
                    tag: u64::from_le_bytes(entry[24..32].try_into().expect("slice of 8")),
                    slot,
                });
            }
        }
        out.sort_by_key(|a| a.offset);
        Ok(out)
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.inner.lock().free.values().sum()
    }

    /// Largest contiguous free extent.
    pub fn largest_free_extent(&self) -> u64 {
        self.inner.lock().free.values().copied().max().unwrap_or(0)
    }

    /// Bytes of the heap span currently allocated (span minus free).
    pub fn used_bytes(&self) -> u64 {
        (self.heap_end - self.heap_base).saturating_sub(self.free_bytes())
    }

    /// Heap bounds `[base, end)`.
    pub fn heap_bounds(&self) -> (u64, u64) {
        (self.heap_base, self.heap_end)
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }
}

fn insert_coalesced(free: &mut BTreeMap<u64, u64>, offset: u64, len: u64) {
    let mut start = offset;
    let mut end = offset + len;
    // Merge with predecessor.
    if let Some((&poff, &plen)) = free.range(..offset).next_back() {
        debug_assert!(poff + plen <= offset, "double free or overlap at {offset}");
        if poff + plen == offset {
            start = poff;
            free.remove(&poff);
        }
    }
    // Merge with successor.
    if let Some((&soff, &slen)) = free.range(offset..).next() {
        debug_assert!(soff >= end, "double free or overlap at {offset}");
        if soff == end {
            end += slen;
            free.remove(&soff);
        }
    }
    free.insert(start, end - start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemMode;
    use portus_sim::SimContext;

    fn setup() -> (Arc<PmemDevice>, PmemAllocator) {
        let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
        let alloc = PmemAllocator::format(pm.clone(), 0, 64, 1 << 14, 1 << 20).unwrap();
        (pm, alloc)
    }

    #[test]
    fn alloc_free_round_trip() {
        let (_pm, alloc) = setup();
        let total = alloc.free_bytes();
        let a = alloc.alloc(1000, 1).unwrap();
        assert_eq!(a.len, 1000);
        assert_eq!(a.offset % 64, 0);
        alloc.free(&a).unwrap();
        assert_eq!(alloc.free_bytes(), total);
        assert_eq!(alloc.largest_free_extent(), total);
    }

    #[test]
    fn used_bytes_tracks_the_heap_span() {
        let (_pm, alloc) = setup();
        let (base, end) = alloc.heap_bounds();
        assert_eq!(alloc.used_bytes(), (end - base) - alloc.free_bytes());
        let a = alloc.alloc(4096, 1).unwrap();
        let used = alloc.used_bytes();
        assert!(used >= 4096);
        alloc.free(&a).unwrap();
        assert_eq!(alloc.used_bytes(), used - 4096);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (_pm, alloc) = setup();
        let regions: Vec<_> = (0..16)
            .map(|i| alloc.alloc(100 + i * 7, i).unwrap())
            .collect();
        let mut sorted = regions.clone();
        sorted.sort_by_key(|a| a.offset);
        for pair in sorted.windows(2) {
            assert!(pair[0].offset + pair[0].len <= pair[1].offset);
        }
    }

    #[test]
    fn alignment_is_honored() {
        let (_pm, alloc) = setup();
        alloc.alloc(10, 0).unwrap();
        let a = alloc.alloc_aligned(100, 4096, 0).unwrap();
        assert_eq!(a.offset % 4096, 0);
    }

    #[test]
    fn out_of_space_reports_largest_extent() {
        let (_pm, alloc) = setup();
        let err = alloc.alloc(1 << 21, 0).unwrap_err();
        match err {
            PmemError::OutOfSpace { largest_free, .. } => {
                assert_eq!(largest_free, (1 << 20) - (1 << 14));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn table_full_is_reported() {
        let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
        let alloc = PmemAllocator::format(pm, 0, 2, 1 << 14, 1 << 20).unwrap();
        alloc.alloc(64, 0).unwrap();
        alloc.alloc(64, 0).unwrap();
        assert!(matches!(alloc.alloc(64, 0), Err(PmemError::TableFull)));
    }

    #[test]
    fn recovery_rebuilds_free_map() {
        let (pm, alloc) = setup();
        let a = alloc.alloc(4096, 11).unwrap();
        let b = alloc.alloc(8192, 22).unwrap();
        alloc.free(&a).unwrap();
        let free_before = alloc.free_bytes();
        drop(alloc);

        let rec = PmemAllocator::recover(pm, 0).unwrap();
        assert_eq!(rec.free_bytes(), free_before);
        let live = rec.live_allocations().unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].offset, b.offset);
        assert_eq!(live[0].tag, 22);
        // New allocations must not collide with the survivor.
        let c = rec.alloc(1 << 15, 33).unwrap();
        assert!(c.offset + c.len <= b.offset || c.offset >= b.offset + b.len);
    }

    #[test]
    fn recovery_after_crash_mid_alloc_never_leaks_torn_entries() {
        // Crash between writing fields and setting LIVE: slot must read
        // as free after recovery.
        let (pm, alloc) = setup();
        let _keep = alloc.alloc(128, 5).unwrap();
        // Simulate the torn state by hand: write fields without state.
        let entry_off = HEADER_SIZE + ENTRY_SIZE; // slot 1 is next
        pm.write(entry_off + 8, &999u64.to_le_bytes()).unwrap();
        pm.persist(entry_off + 8, 8).unwrap();
        pm.crash(crate::CrashSpec::LoseAll);

        let rec = PmemAllocator::recover(pm, 0).unwrap();
        assert_eq!(rec.live_allocations().unwrap().len(), 1);
    }

    #[test]
    fn recovery_detects_overlap_corruption() {
        let (pm, alloc) = setup();
        let a = alloc.alloc(4096, 0).unwrap();
        // Forge a second live entry overlapping `a`.
        let entry_off = HEADER_SIZE + ENTRY_SIZE;
        let mut forged = [0u8; 32];
        forged[0..8].copy_from_slice(&STATE_LIVE.to_le_bytes());
        forged[8..16].copy_from_slice(&a.offset.to_le_bytes());
        forged[16..24].copy_from_slice(&1024u64.to_le_bytes());
        pm.write(entry_off, &forged).unwrap();
        pm.persist(entry_off, 32).unwrap();
        assert!(matches!(
            PmemAllocator::recover(pm, 0),
            Err(PmemError::Corrupt(_))
        ));
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (_pm, alloc) = setup();
        let a = alloc.alloc(64, 0).unwrap();
        let b = alloc.alloc(64, 0).unwrap();
        let c = alloc.alloc(64, 0).unwrap();
        alloc.free(&a).unwrap();
        alloc.free(&c).unwrap();
        alloc.free(&b).unwrap(); // middle last: must merge into one extent
        assert_eq!(alloc.largest_free_extent(), alloc.free_bytes());
    }
}
