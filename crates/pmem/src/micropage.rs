//! Sorted variable-length micro-pages for the on-PMem model catalog.
//!
//! A micro-page is a fixed-size (~4 KiB) PMem region holding a sorted
//! run of `name → offset` entries. Pages are immutable once published:
//! catalog mutations copy-on-write a fresh page and swing a pointer, so
//! a torn write can only corrupt a page nothing references yet. The
//! codec here is deliberately dumb — a 16-byte header followed by
//! length-prefixed entries — because all ordering/learned-index logic
//! lives above it (`portus-core::catalog`).
//!
//! Layout (little-endian):
//!
//! ```text
//! +0   u32  magic  "CPGE"
//! +4   u32  entry count
//! +8   u32  used bytes (header included)
//! +12  u32  reserved (zero)
//! +16  entries: [len u16][name bytes][mindex_off u64] ...
//! ```

use crate::{typed, PmemDevice, PmemError, PmemResult};

/// Magic stamped on every catalog micro-page ("CPGE").
pub const PAGE_MAGIC: u32 = 0x4350_4745;

/// Fixed page header size in bytes.
pub const PAGE_HEADER: u64 = 16;

/// Encoded size of one `(name, offset)` entry inside a page.
pub fn entry_encoded_len(name: &str) -> u64 {
    2 + name.len() as u64 + 8
}

/// Splits an ascending entry run into page-sized chunks.
///
/// Each returned chunk fits in `page_bytes` (header included). Entries
/// are not reordered; the caller guarantees sortedness. A single entry
/// larger than a page gets a page of its own — the device write will
/// then fail loudly rather than silently truncate.
pub fn pack_pages(entries: &[(String, u64)], page_bytes: u64) -> Vec<&[(String, u64)]> {
    let mut pages = Vec::new();
    let mut start = 0usize;
    let mut used = PAGE_HEADER;
    for (i, (name, _)) in entries.iter().enumerate() {
        let el = entry_encoded_len(name);
        if i > start && used + el > page_bytes {
            pages.push(&entries[start..i]);
            start = i;
            used = PAGE_HEADER;
        }
        used += el;
    }
    if start < entries.len() {
        pages.push(&entries[start..]);
    }
    pages
}

/// Writes a full page image at `page_off` (volatile until persisted).
///
/// Returns the used byte count. The caller persists the whole region and
/// only then publishes a pointer to it.
///
/// # Errors
///
/// Fails with [`PmemError::Bounds`]-style device errors, or
/// `PmemError::Corrupt` if the entries overflow `page_bytes`.
pub fn write_page(
    dev: &PmemDevice,
    page_off: u64,
    page_bytes: u64,
    entries: &[(String, u64)],
) -> PmemResult<u64> {
    let mut used = PAGE_HEADER;
    for (name, _) in entries {
        used += entry_encoded_len(name);
    }
    if used > page_bytes {
        return Err(PmemError::Corrupt(format!(
            "micro-page overflow: {used} bytes of entries into a {page_bytes}-byte page"
        )));
    }
    typed::write_u32(dev, page_off, PAGE_MAGIC)?;
    typed::write_u32(dev, page_off + 4, entries.len() as u32)?;
    typed::write_u32(dev, page_off + 8, used as u32)?;
    typed::write_u32(dev, page_off + 12, 0)?;
    let mut cur = page_off + PAGE_HEADER;
    for (name, off) in entries {
        cur += typed::write_str(dev, cur, name)?;
        typed::write_u64(dev, cur, *off)?;
        cur += 8;
    }
    Ok(used)
}

/// Reads the header of the page at `page_off`: `(count, used)`.
///
/// # Errors
///
/// `PmemError::Corrupt` when the magic does not match (torn or stale
/// page), plus device bounds errors.
pub fn read_page_header(dev: &PmemDevice, page_off: u64) -> PmemResult<(u32, u32)> {
    let magic = typed::read_u32(dev, page_off)?;
    if magic != PAGE_MAGIC {
        return Err(PmemError::Corrupt(format!(
            "bad micro-page magic {magic:#x} at {page_off:#x}"
        )));
    }
    let count = typed::read_u32(dev, page_off + 4)?;
    let used = typed::read_u32(dev, page_off + 8)?;
    Ok((count, used))
}

/// Decodes every entry of the page at `page_off`, in stored order.
///
/// # Errors
///
/// `PmemError::Corrupt` on a bad magic, plus device bounds errors.
pub fn read_page(dev: &PmemDevice, page_off: u64) -> PmemResult<Vec<(String, u64)>> {
    let (count, _) = read_page_header(dev, page_off)?;
    let mut out = Vec::with_capacity(count as usize);
    let mut cur = page_off + PAGE_HEADER;
    for _ in 0..count {
        let (name, consumed) = typed::read_str(dev, cur)?;
        cur += consumed;
        let off = typed::read_u64(dev, cur)?;
        cur += 8;
        out.push((name, off));
    }
    Ok(out)
}

/// Reads only the first (smallest) key of the page at `page_off`.
///
/// Used by the catalog to resolve derived-key ties without decoding the
/// whole page. Returns `None` for an empty page.
///
/// # Errors
///
/// `PmemError::Corrupt` on a bad magic, plus device bounds errors.
pub fn read_first_key(dev: &PmemDevice, page_off: u64) -> PmemResult<Option<String>> {
    let (count, _) = read_page_header(dev, page_off)?;
    if count == 0 {
        return Ok(None);
    }
    let (name, _) = typed::read_str(dev, page_off + PAGE_HEADER)?;
    Ok(Some(name))
}

/// Binary-searches the page at `page_off` for `name`.
///
/// Decodes the page once (one DAX read pass) and searches the decoded
/// run; returns the stored offset when present.
///
/// # Errors
///
/// `PmemError::Corrupt` on a bad magic, plus device bounds errors.
pub fn search_page(dev: &PmemDevice, page_off: u64, name: &str) -> PmemResult<Option<u64>> {
    let entries = read_page(dev, page_off)?;
    match entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
        Ok(i) => Ok(Some(entries[i].1)),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemMode;
    use portus_sim::SimContext;

    fn dev() -> std::sync::Arc<PmemDevice> {
        PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20)
    }

    fn entries(n: usize) -> Vec<(String, u64)> {
        (0..n)
            .map(|i| (format!("model-{i:06}"), 1000 + i as u64))
            .collect()
    }

    #[test]
    fn page_round_trips() {
        let dev = dev();
        let ents = entries(50);
        let used = write_page(&dev, 4096, 4096, &ents).unwrap();
        assert!(used <= 4096);
        let (count, used2) = read_page_header(&dev, 4096).unwrap();
        assert_eq!(count, 50);
        assert_eq!(u64::from(used2), used);
        assert_eq!(read_page(&dev, 4096).unwrap(), ents);
        assert_eq!(
            read_first_key(&dev, 4096).unwrap().as_deref(),
            Some("model-000000")
        );
    }

    #[test]
    fn search_hits_and_misses() {
        let dev = dev();
        let ents = entries(64);
        write_page(&dev, 0, 4096, &ents).unwrap();
        assert_eq!(search_page(&dev, 0, "model-000031").unwrap(), Some(1031));
        assert_eq!(search_page(&dev, 0, "model-999999").unwrap(), None);
        assert_eq!(search_page(&dev, 0, "").unwrap(), None);
    }

    #[test]
    fn pack_respects_page_budget() {
        let ents = entries(1000);
        let pages = pack_pages(&ents, 4096);
        assert!(pages.len() > 1);
        let mut total = 0;
        for page in &pages {
            let used: u64 =
                PAGE_HEADER + page.iter().map(|(n, _)| entry_encoded_len(n)).sum::<u64>();
            assert!(used <= 4096, "packed page overflows: {used}");
            total += page.len();
        }
        assert_eq!(total, 1000);
        // Order preserved across page boundaries.
        let flat: Vec<_> = pages.iter().flat_map(|p| p.iter().cloned()).collect();
        assert_eq!(flat, ents);
    }

    #[test]
    fn overflowing_write_is_rejected() {
        let dev = dev();
        let ents = entries(300);
        let err = write_page(&dev, 0, 4096, &ents).unwrap_err();
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let dev = dev();
        assert!(read_page_header(&dev, 512).is_err());
    }
}
