//! Device images: save/load the durable content of a [`PmemDevice`] to a
//! file.
//!
//! `portusctl` operates on these images the way the real tool operates on
//! a `/dev/dax` device: `portusctl view IMAGE` lists the models stored on
//! it, `portusctl dump` extracts a checkpoint. Only *durable* content is
//! imaged — anything still in flight in the simulated cache is lost,
//! exactly like pulling the plug.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use portus_sim::SimContext;

use crate::{PmemDevice, PmemError, PmemMode, PmemResult};

const IMAGE_MAGIC: &[u8; 8] = b"PORTUSPM";
const IMAGE_VERSION: u32 = 1;
const PAGE: usize = 4096;

fn io_err(e: std::io::Error) -> PmemError {
    PmemError::Image(e.to_string())
}

/// Writes the durable pages of `dev` to `path`.
///
/// # Errors
///
/// Returns [`PmemError::Image`] on I/O failure.
pub fn save_image(dev: &PmemDevice, path: &Path) -> PmemResult<()> {
    let pages = dev.durable_pages();
    let file = File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    w.write_all(IMAGE_MAGIC).map_err(io_err)?;
    w.write_all(&IMAGE_VERSION.to_le_bytes()).map_err(io_err)?;
    let mode: u8 = match dev.mode() {
        PmemMode::DevDax => 0,
        PmemMode::FsDax => 1,
    };
    w.write_all(&[mode]).map_err(io_err)?;
    w.write_all(&dev.capacity().to_le_bytes()).map_err(io_err)?;
    w.write_all(&(pages.len() as u64).to_le_bytes())
        .map_err(io_err)?;
    for (idx, content) in pages {
        w.write_all(&idx.to_le_bytes()).map_err(io_err)?;
        w.write_all(&content[..]).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Loads a device image from `path` into a fresh [`PmemDevice`] sharing
/// `ctx`.
///
/// # Errors
///
/// Returns [`PmemError::Image`] on I/O failure or a malformed image.
pub fn load_image(ctx: SimContext, path: &Path) -> PmemResult<Arc<PmemDevice>> {
    let file = File::open(path).map_err(io_err)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != IMAGE_MAGIC {
        return Err(PmemError::Image("bad image magic".into()));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf).map_err(io_err)?;
    if u32::from_le_bytes(u32buf) != IMAGE_VERSION {
        return Err(PmemError::Image("unsupported image version".into()));
    }
    let mut mode_buf = [0u8; 1];
    r.read_exact(&mut mode_buf).map_err(io_err)?;
    let mode = match mode_buf[0] {
        0 => PmemMode::DevDax,
        1 => PmemMode::FsDax,
        other => return Err(PmemError::Image(format!("unknown mode byte {other}"))),
    };
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf).map_err(io_err)?;
    let capacity = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf).map_err(io_err)?;
    let n_pages = u64::from_le_bytes(u64buf);

    let dev = PmemDevice::new(ctx, mode, capacity);
    let mut pages = Vec::with_capacity(n_pages as usize);
    for _ in 0..n_pages {
        r.read_exact(&mut u64buf).map_err(io_err)?;
        let idx = u64::from_le_bytes(u64buf);
        let mut content = Box::new([0u8; PAGE]);
        r.read_exact(&mut content[..]).map_err(io_err)?;
        pages.push((idx, content));
    }
    dev.restore_pages(pages);
    Ok(dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trips_durable_content_only() {
        let dir = std::env::temp_dir().join("portus-pmem-image-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.img");

        let ctx = SimContext::icdcs24();
        let dev = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 30);
        dev.write(8192, b"durable data").unwrap();
        dev.persist(8192, 12).unwrap();
        dev.write(0, b"volatile").unwrap(); // never persisted

        save_image(&dev, &path).unwrap();
        let loaded = load_image(ctx, &path).unwrap();
        assert_eq!(loaded.capacity(), 1 << 30);
        assert_eq!(loaded.mode(), PmemMode::DevDax);

        let mut out = [0u8; 12];
        loaded.read(8192, &mut out).unwrap();
        assert_eq!(&out, b"durable data");
        let mut lost = [0u8; 8];
        loaded.read(0, &mut lost).unwrap();
        assert_eq!(lost, [0u8; 8], "volatile content must not be imaged");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("portus-pmem-image-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.img");
        std::fs::write(&path, b"not an image at all").unwrap();
        assert!(matches!(
            load_image(SimContext::icdcs24(), &path),
            Err(PmemError::Image(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
