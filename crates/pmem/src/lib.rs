//! # portus-pmem
//!
//! A simulated Intel Optane DC persistent-memory namespace with honest
//! persistence semantics: stores are volatile until `clwb`+`sfence`
//! ([`PmemDevice::flush`] / [`PmemDevice::fence`]), and
//! [`PmemDevice::crash`] destroys in-flight lines the way a power failure
//! would — including the *maybe-persisted* ambiguity of unfenced lines.
//! On top of the device sit the persistent allocator
//! ([`PmemAllocator`], the paper's AllocTable) and device imaging for the
//! `portusctl` tooling.
//!
//! # Examples
//!
//! ```
//! use portus_pmem::{CrashSpec, PmemDevice, PmemMode};
//! use portus_sim::SimContext;
//!
//! let pm = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 20);
//! pm.write(0, b"v1")?;
//! pm.persist(0, 2)?;
//! pm.write(0, b"v2")?; // not yet persisted
//! pm.crash(CrashSpec::LoseAll);
//! let mut out = [0u8; 2];
//! pm.read(0, &mut out)?;
//! assert_eq!(&out, b"v1"); // the fenced version survived
//! # Ok::<(), portus_pmem::PmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod device;
mod error;
mod extent;
mod image;
pub mod micropage;
pub mod typed;

pub use alloc::{PmemAlloc, PmemAllocator};
pub use device::{CrashSpec, PmemDevice, PmemMode, CACHE_LINE};
pub use error::{PmemError, PmemResult};
pub use extent::{
    content_hash, rle_compress, rle_decompress, ExtentRecord, ExtentRef, ExtentStats, ExtentStore,
    EXTENT_DATA_TAG, EXTENT_FLAG_COMPRESSED,
};
pub use image::{load_image, save_image};
