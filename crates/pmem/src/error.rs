//! Error types for persistent-memory operations.

use std::error::Error;
use std::fmt;

/// Result alias for PMem operations.
pub type PmemResult<T> = Result<T, PmemError>;

/// Errors raised by the simulated persistent memory and its allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// Access past the end of the namespace.
    OutOfBounds {
        /// Start offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Namespace capacity.
        capacity: u64,
    },
    /// An atomically-accessed offset was not aligned.
    Unaligned {
        /// The offending offset.
        offset: u64,
        /// The required alignment.
        align: u64,
    },
    /// The allocator heap has no extent large enough.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free extent.
        largest_free: u64,
    },
    /// The allocation table has no free slots.
    TableFull,
    /// On-media structures failed validation during recovery.
    Corrupt(String),
    /// A device image file could not be read or written.
    Image(String),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfBounds { offset, len, capacity } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds namespace of {capacity} bytes"
            ),
            PmemError::Unaligned { offset, align } => {
                write!(f, "offset {offset} is not {align}-byte aligned")
            }
            PmemError::OutOfSpace { requested, largest_free } => write!(
                f,
                "out of persistent space: requested {requested} bytes, largest free extent {largest_free}"
            ),
            PmemError::TableFull => write!(f, "allocation table has no free slots"),
            PmemError::Corrupt(what) => write!(f, "persistent structure corrupt: {what}"),
            PmemError::Image(what) => write!(f, "device image error: {what}"),
        }
    }
}

impl Error for PmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmemError>();
        assert!(PmemError::TableFull.to_string().contains("no free slots"));
    }
}
