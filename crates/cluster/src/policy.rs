//! Checkpoint policies (Fig. 9's four timelines).

use portus_sim::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};

use crate::ops::{portus_checkpoint_cost, torch_save_cost, Backend, JobShape};

/// When and how a training run checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Never checkpoint (the upper bound on throughput).
    None,
    /// PyTorch built-in: synchronous `torch.save` every `every`
    /// iterations; training blocks for the whole operation
    /// (Fig. 9(a)).
    TorchSave {
        /// Checkpoint interval in iterations.
        every: u32,
        /// Target file system.
        backend: Backend,
    },
    /// CheckFreq: the snapshot (GPU→host copy) stalls training; the
    /// serialize+write pipeline runs in the background, but the next
    /// snapshot must wait for it (Fig. 9(b)).
    CheckFreq {
        /// Checkpoint interval in iterations.
        every: u32,
        /// Target file system.
        backend: Backend,
    },
    /// Portus synchronous: training blocks for the (much shorter)
    /// one-sided pull (Fig. 9(c)).
    PortusSync {
        /// Checkpoint interval in iterations.
        every: u32,
    },
    /// Portus asynchronous: the pull proceeds under forward/backward
    /// compute; only parameter updates that overlap the in-flight pull
    /// defer briefly (Fig. 9(d)).
    PortusAsync {
        /// Checkpoint interval in iterations.
        every: u32,
    },
}

impl Policy {
    /// The checkpoint interval, if the policy checkpoints at all.
    pub fn interval(&self) -> Option<u32> {
        match self {
            Policy::None => None,
            Policy::TorchSave { every, .. }
            | Policy::CheckFreq { every, .. }
            | Policy::PortusSync { every }
            | Policy::PortusAsync { every } => Some(*every),
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::None => "no-checkpoint",
            Policy::TorchSave { .. } => "torch.save",
            Policy::CheckFreq { .. } => "CheckFreq",
            Policy::PortusSync { .. } => "Portus-sync",
            Policy::PortusAsync { .. } => "Portus-async",
        }
    }

    /// The full synchronous cost of one checkpoint under this policy
    /// (what Fig. 14 plots for the operation itself).
    pub fn op_cost(&self, m: &CostModel, job: JobShape) -> SimDuration {
        match self {
            Policy::None => SimDuration::ZERO,
            Policy::TorchSave { backend, .. } | Policy::CheckFreq { backend, .. } => {
                torch_save_cost(m, job, *backend).total()
            }
            Policy::PortusSync { .. } | Policy::PortusAsync { .. } => {
                portus_checkpoint_cost(m, job)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_and_labels() {
        assert_eq!(Policy::None.interval(), None);
        let p = Policy::PortusAsync { every: 26 };
        assert_eq!(p.interval(), Some(26));
        assert_eq!(p.label(), "Portus-async");
    }

    #[test]
    fn portus_op_is_cheaper_than_torch_save() {
        let m = CostModel::icdcs24();
        let job = JobShape::single(1_000_000_000, 300);
        let ts = Policy::TorchSave {
            every: 10,
            backend: Backend::BeegfsPmem,
        };
        let ps = Policy::PortusSync { every: 10 };
        assert!(ps.op_cost(&m, job) * 5 < ts.op_cost(&m, job));
    }
}
