//! Failure injection and lost-work accounting.
//!
//! The paper's motivation (§I, §II-B): failures arrive every few hours
//! (or minutes for large jobs), and checkpoint frequency trades
//! per-checkpoint stalls against re-training after a failure. This
//! module replays a run with injected failures to quantify that
//! trade-off, for both the baseline and Portus policies.

use portus_sim::{CostModel, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::event::{FleetConfig, FleetResult};
use crate::harness::TrainingConfig;
use crate::ops::{portus_restore_cost, torch_load_gds_cost};
use crate::policy::Policy;

/// The outcome of a run with failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureOutcome {
    /// Useful iterations completed (monotone progress).
    pub target_iterations: u64,
    /// Total virtual time including re-training and restores.
    pub total_time: SimDuration,
    /// Iterations re-executed because they post-dated the last
    /// checkpoint at failure time.
    pub lost_iterations: u64,
    /// Restores performed.
    pub restores: u32,
    /// Time spent inside restore operations.
    pub restore_time: SimDuration,
}

impl FailureOutcome {
    /// Goodput: useful iterations per second of total time.
    pub fn goodput(&self) -> f64 {
        self.target_iterations as f64 / self.total_time.as_secs_f64()
    }
}

/// Fleet-level lost-work accounting after a daemon-kill schedule:
/// what a [`crate::run_fleet`] run with kills actually cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonLossReport {
    /// Daemons the schedule took down.
    pub killed: Vec<usize>,
    /// Checkpoint attempts that lost every replica of some stripe.
    pub failed_checkpoints: u64,
    /// In-flight Active writes fenced by the recovery epoch.
    pub fenced_active: u64,
    /// Stripe copies rebalance repaired onto survivors.
    pub repairs: u64,
    /// Bytes of repair traffic.
    pub repair_bytes: u64,
    /// Dead replicas restores fell through before being served.
    pub restore_failovers: u64,
    /// Iterations past each model's restorable version, summed: the
    /// re-training the kills would cost.
    pub lost_iterations: u64,
    /// Whether every client restores its *latest validated* version —
    /// the zero-loss criterion k-way replication exists to meet.
    pub zero_loss: bool,
}

/// Summarizes daemon-loss damage from a placement-enabled fleet run.
/// Covered iterations are derived from each client's checkpoint
/// interval: version `v` was taken at iteration `v * interval`.
pub fn daemon_loss_report(cfg: &FleetConfig, out: &FleetResult) -> DaemonLossReport {
    let mut report = DaemonLossReport {
        killed: out
            .metrics
            .fleet
            .iter()
            .filter(|d| d.killed)
            .map(|d| d.daemon as usize)
            .collect(),
        restore_failovers: out.metrics.restore_failovers,
        zero_loss: true,
        ..DaemonLossReport::default()
    };
    for d in &out.metrics.fleet {
        report.fenced_active += d.fenced_active;
        report.repairs += d.repairs_in;
        report.repair_bytes += d.repair_bytes;
    }
    for ((spec, c), r) in cfg.clients.iter().zip(&out.clients).zip(&out.restores) {
        report.failed_checkpoints += c.failed_checkpoints;
        let interval = u64::from(spec.policy.interval().unwrap_or(0));
        let covered = r.version.map_or(0, |v| (v * interval).min(c.iterations));
        report.lost_iterations += c.iterations - covered;
        if r.version != c.latest_done_version {
            report.zero_loss = false;
        }
    }
    report
}

/// Cost of one restore under the run's policy (baselines use
/// GDS-assisted `torch.load`; Portus uses one-sided writes).
pub fn restore_cost(m: &CostModel, cfg: &TrainingConfig) -> SimDuration {
    match cfg.policy {
        Policy::None => SimDuration::ZERO,
        Policy::TorchSave { backend, .. } | Policy::CheckFreq { backend, .. } => {
            torch_load_gds_cost(m, cfg.job, backend).total()
        }
        Policy::PortusSync { .. } | Policy::PortusAsync { .. } => portus_restore_cost(m, cfg.job),
    }
}

/// Replays a run until `target_iterations` useful iterations complete,
/// injecting a failure whenever the virtual clock crosses the next
/// entry of `failures` (absolute times). On failure the run rolls back
/// to the last *completed* checkpoint, pays one restore, and resumes.
///
/// The per-iteration cost (including checkpoint stalls) is taken as the
/// policy's steady-state average, so this composes with
/// [`crate::run_training`]'s accounting.
pub fn run_with_failures(
    m: &CostModel,
    cfg: &TrainingConfig,
    target_iterations: u64,
    failures: &[SimDuration],
) -> FailureOutcome {
    // Steady-state per-iteration time under the policy.
    let probe_iters = cfg.policy.interval().map_or(100, |k| (k as u64) * 10);
    let probe = crate::run_training(m, cfg, probe_iters);
    let per_iter =
        SimDuration::from_secs_f64(probe.elapsed.as_secs_f64() / probe.iterations as f64);
    let interval = cfg.policy.interval().map(u64::from);
    let restore = restore_cost(m, cfg);

    let mut t = SimTime::ZERO;
    let mut done = 0u64; // iterations whose work is durable or redone
    let mut last_ckpt = 0u64; // last checkpointed iteration
    let mut lost = 0u64;
    let mut restores = 0u32;
    let mut restore_time = SimDuration::ZERO;
    let mut next_failure = failures.iter().copied().peekable();

    while done < target_iterations {
        let t_next = t + per_iter;
        if let Some(&f) = next_failure.peek() {
            if t_next.saturating_since(SimTime::ZERO) >= f {
                // Failure strikes during this iteration.
                next_failure.next();
                let since_ckpt = done - last_ckpt;
                lost += since_ckpt;
                done = last_ckpt;
                t = SimTime::ZERO + f;
                if interval.is_some() && (last_ckpt > 0 || since_ckpt == 0) {
                    restores += 1;
                    restore_time += restore;
                    t += restore;
                }
                continue;
            }
        }
        t = t_next;
        done += 1;
        if let Some(k) = interval {
            if k > 0 && done.is_multiple_of(k) {
                last_ckpt = done;
            }
        }
    }

    FailureOutcome {
        target_iterations,
        total_time: t.saturating_since(SimTime::ZERO),
        lost_iterations: lost,
        restores,
        restore_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Backend, JobShape};
    use portus_dnn::IterationProfile;

    fn cfg(policy: Policy) -> TrainingConfig {
        TrainingConfig {
            job: JobShape::single(1_000_000_000, 300),
            profile: IterationProfile::from_total(SimDuration::from_millis(350)),
            policy,
        }
    }

    #[test]
    fn daemon_loss_report_sums_fleet_damage() {
        use crate::placement::{replica_set, PlacementConfig};
        use portus_sim::{Stage, TraceOp};
        let m = CostModel::icdcs24();
        let base = |k: usize| {
            crate::event::FleetConfig::uniform(
                4,
                4,
                JobShape::single(1_000_000_000, 300),
                IterationProfile::from_total(SimDuration::from_millis(350)),
                Policy::PortusSync { every: 10 },
                50,
            )
            .with_placement(PlacementConfig::mirrored(k))
        };
        // Find client-0's second checkpoint on a dry run and kill its
        // primary daemon at the pull's midpoint — a genuinely
        // mid-checkpoint loss, deterministic per (config, seed).
        let dry = crate::event::run_fleet(&m, &base(1));
        let span = dry
            .spans
            .iter()
            .filter(|s| {
                s.model == "client-0" && s.op == TraceOp::Checkpoint && s.stage == Stage::Total
            })
            .nth(1)
            .expect("client-0 checkpoints at least twice");
        let mid = (span.start + span.end.saturating_since(span.start) / 2)
            .saturating_since(portus_sim::SimTime::ZERO);
        let primary = replica_set("client-0", &[true; 4], 1)[0];

        let lossy_cfg = base(1).with_kill(primary, mid);
        let lossy = daemon_loss_report(&lossy_cfg, &crate::event::run_fleet(&m, &lossy_cfg));
        assert_eq!(lossy.killed, vec![primary]);
        assert!(
            lossy.failed_checkpoints > 0,
            "k=1 loses the checkpoint in flight on the dead primary"
        );
        assert!(
            lossy.fenced_active > 0,
            "the epoch fences the in-flight write"
        );

        let safe_cfg = base(2).with_kill(primary, mid);
        let safe = daemon_loss_report(&safe_cfg, &crate::event::run_fleet(&m, &safe_cfg));
        assert!(safe.zero_loss, "k=2 must survive one mid-checkpoint loss");
        assert_eq!(safe.failed_checkpoints, 0);
        assert_eq!(safe.lost_iterations, 0, "every interval stays covered");
    }

    #[test]
    fn no_failures_means_no_loss() {
        let m = CostModel::icdcs24();
        let out = run_with_failures(&m, &cfg(Policy::PortusAsync { every: 10 }), 100, &[]);
        assert_eq!(out.lost_iterations, 0);
        assert_eq!(out.restores, 0);
    }

    #[test]
    fn failures_cost_lost_work() {
        let m = CostModel::icdcs24();
        let out = run_with_failures(
            &m,
            &cfg(Policy::PortusAsync { every: 10 }),
            200,
            &[SimDuration::from_secs(30)],
        );
        assert!(out.lost_iterations <= 10, "at most one interval lost");
        assert_eq!(out.restores, 1);
        assert!(out.total_time > SimDuration::from_secs(70));
    }

    #[test]
    fn finer_checkpoints_lose_less_on_failure() {
        let m = CostModel::icdcs24();
        let failures: Vec<SimDuration> = (1..=5).map(|i| SimDuration::from_secs(i * 37)).collect();
        let coarse =
            run_with_failures(&m, &cfg(Policy::PortusAsync { every: 100 }), 400, &failures);
        let fine = run_with_failures(&m, &cfg(Policy::PortusAsync { every: 5 }), 400, &failures);
        assert!(
            fine.lost_iterations < coarse.lost_iterations,
            "fine {} vs coarse {}",
            fine.lost_iterations,
            coarse.lost_iterations
        );
    }

    #[test]
    fn portus_tolerates_fine_intervals_that_drown_torch_save() {
        // The paper's core argument: with cheap checkpoints you can
        // afford fine intervals and lose little on failure, without
        // paying big steady-state overheads.
        let m = CostModel::icdcs24();
        let failures: Vec<SimDuration> = (1..=3).map(|i| SimDuration::from_secs(i * 53)).collect();
        let portus = run_with_failures(&m, &cfg(Policy::PortusAsync { every: 5 }), 300, &failures);
        let torch = run_with_failures(
            &m,
            &cfg(Policy::TorchSave {
                every: 5,
                backend: Backend::BeegfsPmem,
            }),
            300,
            &failures,
        );
        assert!(
            portus.goodput() > 1.5 * torch.goodput(),
            "portus {:.2} it/s vs torch {:.2} it/s",
            portus.goodput(),
            torch.goodput()
        );
    }
}
