//! GPU-utilization traces (Fig. 16).

use portus_sim::{chrome_trace_json, SimDuration, SimTime, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::harness::Segment;

/// One sample of a windowed utilization trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilSample {
    /// Window start, seconds since run start.
    pub at_secs: f64,
    /// GPU-busy fraction within the window, 0–1.
    pub utilization: f64,
}

/// Bins a run's busy/idle segments into windows of `window` virtual
/// time, covering `[0, horizon)` — the 500-second profiling trace of
/// Fig. 16 uses `window = 10 s`, `horizon = 500 s`.
pub fn utilization_trace(
    segments: &[Segment],
    window: SimDuration,
    horizon: SimDuration,
) -> Vec<UtilSample> {
    assert!(!window.is_zero(), "window must be positive");
    let n = horizon.as_nanos().div_ceil(window.as_nanos());
    let mut busy_ns = vec![0u64; n as usize];
    for seg in segments.iter().filter(|s| s.busy) {
        let s = seg.start.as_nanos();
        let e = seg.end.as_nanos().min(horizon.as_nanos());
        if s >= e {
            continue;
        }
        let mut cur = s;
        while cur < e {
            let w = cur / window.as_nanos();
            let w_end = (w + 1) * window.as_nanos();
            let upto = e.min(w_end);
            busy_ns[w as usize] += upto - cur;
            cur = upto;
        }
    }
    busy_ns
        .into_iter()
        .enumerate()
        .map(|(i, ns)| UtilSample {
            at_secs: (i as u64 * window.as_nanos()) as f64 / 1e9,
            utilization: ns as f64 / window.as_nanos() as f64,
        })
        .collect()
}

/// Mean utilization of a trace.
pub fn mean_utilization(trace: &[UtilSample]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(|s| s.utilization).sum::<f64>() / trace.len() as f64
}

/// Peak utilization of a trace.
pub fn peak_utilization(trace: &[UtilSample]) -> f64 {
    trace.iter().map(|s| s.utilization).fold(0.0, f64::max)
}

/// Renders a run's busy/idle segments as Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto), one complete-event per segment —
/// busy segments named `train`, idle ones `stall`, all on one track
/// under the process named by `label` (carried in each event's `cat`).
pub fn run_chrome_trace(segments: &[Segment], label: &str) -> String {
    let events: Vec<TraceEvent> = segments
        .iter()
        .map(|seg| TraceEvent {
            name: if seg.busy { "train" } else { "stall" }.to_string(),
            cat: label.to_string(),
            pid: 1,
            tid: 1,
            start: seg.start,
            end: seg.end,
            args: vec![(
                "busy".to_string(),
                if seg.busy { "true" } else { "false" }.to_string(),
            )],
        })
        .collect();
    chrome_trace_json(&events)
}

/// Convenience: a busy segment for tests and synthetic traces.
pub fn segment(start_s: f64, end_s: f64, busy: bool) -> Segment {
    Segment {
        start: SimTime::ZERO + SimDuration::from_secs_f64(start_s),
        end: SimTime::ZERO + SimDuration::from_secs_f64(end_s),
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_busy_run_is_all_ones() {
        let segs = vec![segment(0.0, 100.0, true)];
        let trace = utilization_trace(
            &segs,
            SimDuration::from_secs(10),
            SimDuration::from_secs(100),
        );
        assert_eq!(trace.len(), 10);
        assert!(trace.iter().all(|s| (s.utilization - 1.0).abs() < 1e-9));
        assert!((mean_utilization(&trace) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_halves() {
        let segs = vec![
            segment(0.0, 5.0, true),
            segment(5.0, 10.0, false),
            segment(10.0, 15.0, true),
        ];
        let trace = utilization_trace(
            &segs,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        );
        assert!((trace[0].utilization - 0.5).abs() < 1e-9);
        assert!((trace[1].utilization - 0.5).abs() < 1e-9);
        assert!((peak_utilization(&trace) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn segments_past_horizon_are_clipped() {
        let segs = vec![segment(0.0, 1000.0, true)];
        let trace = utilization_trace(
            &segs,
            SimDuration::from_secs(10),
            SimDuration::from_secs(50),
        );
        assert_eq!(trace.len(), 5);
        assert!((mean_utilization(&trace) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_spanning_window_boundary_splits() {
        let segs = vec![segment(8.0, 12.0, true)];
        let trace = utilization_trace(
            &segs,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        );
        assert!((trace[0].utilization - 0.2).abs() < 1e-9);
        assert!((trace[1].utilization - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_mean_is_zero() {
        assert_eq!(mean_utilization(&[]), 0.0);
    }

    #[test]
    fn chrome_trace_names_busy_and_idle_segments() {
        let segs = vec![segment(0.0, 5.0, true), segment(5.0, 7.0, false)];
        let json = run_chrome_trace(&segs, "gpt-training");
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"train\""));
        assert!(json.contains("\"name\":\"stall\""));
        assert!(json.contains("\"cat\":\"gpt-training\""));
        // Deterministic: same segments render byte-identically.
        assert_eq!(json, run_chrome_trace(&segs, "gpt-training"));
    }
}
