//! Analytic per-operation costs for the end-to-end experiments.
//!
//! The data-plane crates really move bytes; these functions compute the
//! same calibrated costs *analytically* for workloads too large to
//! materialize (the GPT family, §V-E). Each function documents which
//! datapath it prices.

use portus_sim::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};

/// Which file system a baseline checkpoint lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Shared BeeGFS on PMem (two-sided RPC-RDMA + server DAX write).
    BeegfsPmem,
    /// Local ext4 on NVMe (page cache + block layer).
    Ext4Nvme,
}

/// One training job's shape, as the cost functions need it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobShape {
    /// Total checkpoint payload across all shards (bytes).
    pub total_bytes: u64,
    /// Total tensor count across all shards.
    pub tensor_count: u64,
    /// Checkpointing shards (tensor × pipeline ranks).
    pub shards: u32,
    /// Compute nodes the shards live on.
    pub nodes: u32,
}

impl JobShape {
    /// A single-GPU job.
    pub fn single(total_bytes: u64, tensor_count: u64) -> JobShape {
        JobShape {
            total_bytes,
            tensor_count,
            shards: 1,
            nodes: 1,
        }
    }
}

/// Per-phase cost of one `torch.save`-style checkpoint (the analytic
/// twin of `portus_storage::CheckpointBreakdown`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// GPU→host snapshot (`cudaMemcpy`), per-node serialized, nodes in
    /// parallel.
    pub snapshot: SimDuration,
    /// Serialization, per-node serialized.
    pub serialize: SimDuration,
    /// Network transmission (zero for local backends), serialized on
    /// the storage NIC with per-stream RPC contention.
    pub transmit: SimDuration,
    /// Media persistence (DAX or the ext4/NVMe block path).
    pub media: SimDuration,
    /// File-system metadata, one file per shard.
    pub metadata: SimDuration,
}

impl OpCost {
    /// Total operation latency.
    pub fn total(&self) -> SimDuration {
        self.snapshot + self.serialize + self.transmit + self.media + self.metadata
    }

    /// The client-side portion (snapshot + serialize): what CheckFreq
    /// cannot overlap with the *next* snapshot.
    pub fn client_side(&self) -> SimDuration {
        self.snapshot + self.serialize
    }

    /// The background-persist portion (everything after the snapshot):
    /// what CheckFreq overlaps with compute.
    pub fn persist_side(&self) -> SimDuration {
        self.serialize + self.transmit + self.media + self.metadata
    }
}

/// Cost of one synchronous `torch.save` of the whole job.
///
/// Client phases are serialized *within* a node (the shards of one node
/// share the PCIe root and the Python serializer) and parallel *across*
/// nodes; server phases are serialized on the single storage node.
pub fn torch_save_cost(m: &CostModel, job: JobShape, backend: Backend) -> OpCost {
    let per_node = job.total_bytes / job.nodes.max(1) as u64;
    let snapshot = m.cuda_memcpy_d2h(per_node);
    let serialize = m.serialize(per_node);
    match backend {
        Backend::BeegfsPmem => OpCost {
            snapshot,
            serialize,
            transmit: m.rpc_rdma_transfer_contended(job.total_bytes, job.shards),
            media: m.dax_write(job.total_bytes),
            metadata: m.beegfs_metadata_op() * job.shards as u64,
        },
        Backend::Ext4Nvme => OpCost {
            snapshot,
            serialize,
            transmit: SimDuration::ZERO,
            // Local: each node writes its own NVMe; per-node bytes.
            media: m.ext4_nvme_write(per_node),
            metadata: m.ext4_metadata_op() * job.shards as u64,
        },
    }
}

/// Cost of one `torch.load` restore with GPUDirect Storage (§V-C2):
/// storage read + deserialization + direct DMA to GPU, no host staging.
pub fn torch_load_gds_cost(m: &CostModel, job: JobShape, backend: Backend) -> OpCost {
    let per_node = job.total_bytes / job.nodes.max(1) as u64;
    let (transmit, media) = match backend {
        Backend::BeegfsPmem => (
            m.rpc_rdma_transfer_contended(job.total_bytes, job.shards),
            m.dax_read(job.total_bytes),
        ),
        Backend::Ext4Nvme => (SimDuration::ZERO, m.ext4_nvme_read(per_node)),
    };
    OpCost {
        snapshot: m.gds_transfer(per_node), // storage→GPU DMA
        serialize: m.deserialize(per_node),
        transmit,
        media,
        metadata: match backend {
            Backend::BeegfsPmem => m.beegfs_metadata_op() * job.shards as u64,
            Backend::Ext4Nvme => m.ext4_metadata_op() * job.shards as u64,
        },
    }
}

/// Per-message bandwidth ramp for a job's average tensor size: small
/// tensors do not saturate the link (the Fig. 10 knee).
fn message_ramp(m: &CostModel, job: JobShape) -> f64 {
    let avg = job.total_bytes as f64 / job.tensor_count.max(1) as f64;
    avg / (avg + m.rdma_ramp_bytes)
}

/// Duration of one Portus checkpoint: the daemon's one-sided pulls.
///
/// The storage NIC serves the shards' pulls back to back; every read
/// sources GPU memory, so the aggregate rate is the BAR cap (the
/// paper's measured 89.6 GB / ~15 s ≈ 5.9 GB/s matches exactly this).
/// Control messages and per-tensor verb latencies are added on top;
/// there is no serialization and no kernel crossing to price.
pub fn portus_checkpoint_cost(m: &CostModel, job: JobShape) -> SimDuration {
    let pull = SimDuration::from_secs_f64(
        job.total_bytes as f64 / (m.gpu_bar_read_bw * message_ramp(m, job)),
    );
    let verbs = SimDuration::from_nanos(m.rdma_op_latency_ns * job.tensor_count);
    let control = m.control_message(64) * (2 * job.shards as u64);
    pull + verbs + control
}

/// Duration of one Portus restore: one-sided writes into re-registered
/// GPU regions at the RNIC peak (writes are not BAR-capped), plus the
/// client-side re-registration of every tensor.
pub fn portus_restore_cost(m: &CostModel, job: JobShape) -> SimDuration {
    let push = SimDuration::from_secs_f64(
        job.total_bytes as f64 / (m.rdma_peak_bw * message_ramp(m, job)),
    );
    let verbs = SimDuration::from_nanos(m.rdma_op_latency_ns * job.tensor_count);
    let register = SimDuration::from_nanos(m.mr_register_fixed_ns * job.tensor_count)
        + SimDuration::from_secs_f64(job.total_bytes as f64 / m.mr_register_bw);
    let control = m.control_message(64) * (2 * job.shards as u64);
    push + verbs + register + control
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn gpt22() -> JobShape {
        JobShape {
            total_bytes: 89_600_000_000,
            tensor_count: 600,
            shards: 16,
            nodes: 2,
        }
    }

    #[test]
    fn fig14_headline_numbers() {
        let m = CostModel::icdcs24();
        // torch.save of GPT-22.4B to BeeGFS takes >120 s (paper §V-E)...
        let baseline = torch_save_cost(&m, gpt22(), Backend::BeegfsPmem).total();
        assert!(
            (120.0..150.0).contains(&baseline.as_secs_f64()),
            "baseline {baseline}"
        );
        // ... while Portus "takes only 15 seconds".
        let portus = portus_checkpoint_cost(&m, gpt22());
        assert!(
            (13.0..17.0).contains(&portus.as_secs_f64()),
            "portus {portus}"
        );
        let speedup = baseline.as_secs_f64() / portus.as_secs_f64();
        assert!((7.0..9.5).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn contention_penalizes_many_shards() {
        let m = CostModel::icdcs24();
        let one = torch_save_cost(
            &m,
            JobShape {
                shards: 1,
                nodes: 2,
                ..gpt22()
            },
            Backend::BeegfsPmem,
        );
        let sixteen = torch_save_cost(&m, gpt22(), Backend::BeegfsPmem);
        assert!(sixteen.transmit > one.transmit * 1.5);
    }

    #[test]
    fn portus_restore_is_faster_than_gds_load() {
        let m = CostModel::icdcs24();
        let job = JobShape::single(GB, 400);
        let portus = portus_restore_cost(&m, job);
        let beegfs = torch_load_gds_cost(&m, job, Backend::BeegfsPmem).total();
        let ext4 = torch_load_gds_cost(&m, job, Backend::Ext4Nvme).total();
        let s_beegfs = beegfs.as_secs_f64() / portus.as_secs_f64();
        let s_ext4 = ext4.as_secs_f64() / portus.as_secs_f64();
        // Fig. 12 shape: restore gains are smaller than checkpoint gains
        // and the BeeGFS speedup exceeds the ext4 speedup.
        assert!(s_beegfs > s_ext4, "{s_beegfs} vs {s_ext4}");
        assert!((3.0..8.0).contains(&s_beegfs), "{s_beegfs}");
        assert!((2.5..6.0).contains(&s_ext4), "{s_ext4}");
    }

    #[test]
    fn local_backend_has_no_transmit() {
        let m = CostModel::icdcs24();
        let op = torch_save_cost(&m, JobShape::single(GB, 100), Backend::Ext4Nvme);
        assert_eq!(op.transmit, SimDuration::ZERO);
        assert!(op.media > SimDuration::ZERO);
    }

    #[test]
    fn checkfreq_split_covers_everything() {
        let m = CostModel::icdcs24();
        let op = torch_save_cost(&m, gpt22(), Backend::BeegfsPmem);
        assert_eq!(
            op.client_side() + op.persist_side(),
            op.total() + op.serialize, // serialize counted in both halves
        );
    }
}
