//! Fleet placement: rendezvous hashing, k-way replication, striping.
//!
//! The paper's daemon owns all PMem on one node; at fleet scale a
//! single daemon crash would lose every checkpoint it holds. This
//! module decides *where* a model's slot writes land so that no single
//! loss matters:
//!
//! * **Rendezvous (highest-random-weight) hashing** gives each
//!   `(model, daemon)` pair a deterministic score; a model's replica
//!   order is the daemons sorted by descending score. Removing a
//!   daemon never reshuffles the survivors' relative order — exactly
//!   the stability a rebalance pass needs.
//! * **Striping** splits a large checkpoint across the first `w`
//!   daemons of that order (the fleet-level twin of the multi-QP
//!   shard split), largest stripe scheduled first.
//! * **k-way replication** writes every stripe to `k` consecutive
//!   daemons of the order (wrapping), so stripe replicas land on
//!   *distinct* daemons and one kill leaves at least `k - 1` copies.
//!
//! Everything here is pure integer math over the model name and the
//! alive set: deterministic per config, independent of call order.

use serde::{Deserialize, Serialize};

use crate::ops::JobShape;

/// Replication/striping knobs for a placement-enabled fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Copies of every stripe (clamped to the alive daemon count;
    /// `1` = no redundancy).
    pub replicas: usize,
    /// Daemons a large checkpoint is striped over (clamped likewise).
    pub stripe_width: usize,
    /// Checkpoints at or above this many bytes stripe; smaller ones
    /// stay whole on the model's primary.
    pub stripe_threshold: u64,
}

impl PlacementConfig {
    /// Mirrored writes, no striping: `k` full copies per checkpoint.
    pub fn mirrored(replicas: usize) -> PlacementConfig {
        PlacementConfig {
            replicas,
            stripe_width: 1,
            stripe_threshold: u64::MAX,
        }
    }

    /// Striped and replicated: split across `width` daemons, `k`
    /// copies of each stripe, any checkpoint size.
    pub fn striped(replicas: usize, width: usize) -> PlacementConfig {
        PlacementConfig {
            replicas,
            stripe_width: width,
            stripe_threshold: 0,
        }
    }
}

impl Default for PlacementConfig {
    fn default() -> PlacementConfig {
        PlacementConfig::mirrored(2)
    }
}

/// One stripe of a placed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stripe {
    /// Stripe index within the checkpoint (stable across plans with
    /// the same width, independent of scheduling order).
    pub index: u32,
    /// Payload bytes this stripe carries.
    pub bytes: u64,
    /// Tensor count apportioned to this stripe (at least 1), so the
    /// per-message bandwidth ramp prices stripes like the whole.
    pub tensors: u64,
    /// Daemons this stripe is written to: `targets[0]` is the primary,
    /// the rest are replicas. All distinct.
    pub targets: Vec<usize>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The rendezvous score of `(model, daemon)`: a deterministic 64-bit
/// weight mixing an FNV-1a hash of the model name with the daemon
/// index through splitmix64.
pub fn rendezvous_score(model: &str, daemon: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in model.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h ^ (daemon as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The model's replica order over the alive daemons: indices `d` with
/// `alive[d]`, sorted by descending rendezvous score (ties broken by
/// index, which the 64-bit scores make vanishingly rare). Killing a
/// daemon deletes its entry and shifts nothing else.
pub fn replica_order(model: &str, alive: &[bool]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..alive.len()).filter(|&d| alive[d]).collect();
    order.sort_by_key(|&d| (std::cmp::Reverse(rendezvous_score(model, d)), d));
    order
}

/// The first `k` daemons of the model's replica order (clamped to the
/// alive count): where an unstriped checkpoint's copies land.
pub fn replica_set(model: &str, alive: &[bool], k: usize) -> Vec<usize> {
    let mut order = replica_order(model, alive);
    order.truncate(k.max(1).min(order.len()));
    order
}

/// Plans one checkpoint: stripes (largest first) with per-stripe
/// replica targets. Empty when no daemon is alive — the checkpoint
/// has nowhere to go and must fail.
pub fn stripe_plan(model: &str, job: JobShape, alive: &[bool], p: &PlacementConfig) -> Vec<Stripe> {
    let order = replica_order(model, alive);
    if order.is_empty() {
        return Vec::new();
    }
    let k = p.replicas.clamp(1, order.len());
    let w = if job.total_bytes >= p.stripe_threshold {
        p.stripe_width.clamp(1, order.len())
    } else {
        1
    } as u64;
    let base = job.total_bytes / w;
    let rem = job.total_bytes % w;
    let mut stripes: Vec<Stripe> = (0..w)
        .map(|i| {
            let bytes = base + u64::from(i < rem);
            let tensors = (job.tensor_count * bytes)
                .checked_div(job.total_bytes)
                .unwrap_or(0)
                .max(1);
            Stripe {
                index: i as u32,
                bytes,
                tensors,
                // Stripe i starts at offset i of the order, replicas
                // follow consecutively (wrapping): copies of one
                // stripe always land on distinct daemons.
                targets: (0..k)
                    .map(|j| order[(i as usize + j) % order.len()])
                    .collect(),
            }
        })
        .collect();
    // Largest first, the multi-QP shard heuristic at fleet level: the
    // biggest stripe claims its NIC before the small ones queue up.
    stripes.sort_by_key(|s| (std::cmp::Reverse(s.bytes), s.index));
    stripes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn replica_order_is_deterministic_and_covers_alive() {
        let a = replica_order("gpt-22b", &alive(8));
        let b = replica_order("gpt-22b", &alive(8));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // Different models land in different orders (8! orderings, a
        // collision across two names would be a hash bug).
        assert_ne!(a, replica_order("bert-large", &alive(8)));
    }

    #[test]
    fn killing_a_daemon_preserves_survivor_order() {
        let full = replica_order("resnet", &alive(8));
        let mut down = alive(8);
        down[full[1]] = false;
        let after = replica_order("resnet", &down);
        let expect: Vec<usize> = full.iter().copied().filter(|&d| d != full[1]).collect();
        assert_eq!(after, expect, "rendezvous must not reshuffle survivors");
    }

    #[test]
    fn replica_set_clamps_to_alive_count() {
        assert_eq!(replica_set("m", &alive(2), 5).len(), 2);
        assert_eq!(replica_set("m", &alive(8), 3).len(), 3);
        assert_eq!(
            replica_set("m", &alive(8), 0).len(),
            1,
            "k=0 still places once"
        );
        assert!(replica_set("m", &[false, false], 2).is_empty());
    }

    #[test]
    fn stripe_plan_covers_bytes_and_separates_replicas() {
        let p = PlacementConfig::striped(2, 3);
        let job = JobShape::single(10_000_000_001, 400);
        let plan = stripe_plan("gpt", job, &alive(8), &p);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), job.total_bytes);
        // Largest-first scheduling order.
        assert!(plan.windows(2).all(|w| w[0].bytes >= w[1].bytes));
        for s in &plan {
            assert_eq!(s.targets.len(), 2);
            assert_ne!(s.targets[0], s.targets[1], "replicas on distinct daemons");
            assert!(s.tensors >= 1);
        }
        // Stripe indices are a permutation of 0..w.
        let mut idx: Vec<u32> = plan.iter().map(|s| s.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn small_checkpoints_do_not_stripe() {
        let p = PlacementConfig {
            replicas: 2,
            stripe_width: 4,
            stripe_threshold: 1 << 30,
        };
        let plan = stripe_plan("tiny", JobShape::single(1 << 20, 10), &alive(8), &p);
        assert_eq!(plan.len(), 1, "below the threshold stays whole");
        assert_eq!(plan[0].targets.len(), 2);
        assert_eq!(
            plan[0].targets,
            replica_set("tiny", &alive(8), 2),
            "the unstriped copy lands on the model's replica set"
        );
    }

    #[test]
    fn plans_clamp_to_a_shrinking_fleet() {
        let p = PlacementConfig::striped(3, 4);
        let mut a = alive(2);
        let plan = stripe_plan("m", JobShape::single(1 << 30, 100), &a, &p);
        assert_eq!(plan.len(), 2, "width clamps to 2 alive daemons");
        for s in &plan {
            assert_eq!(s.targets.len(), 2, "k clamps to 2 alive daemons");
        }
        a[0] = false;
        a[1] = false;
        assert!(
            stripe_plan("m", JobShape::single(1 << 30, 100), &a, &p).is_empty(),
            "a dead fleet has nowhere to write"
        );
    }
}
