//! Checkpoint-interval advisor.
//!
//! CheckFreq's core idea is picking the checkpoint frequency
//! automatically; the classic Young/Daly analysis gives the optimum
//! interval `sqrt(2·C·MTBF)` for a per-checkpoint overhead `C` under a
//! failure rate `1/MTBF`. Because Portus shrinks `C` by nearly an order
//! of magnitude, its optimal interval — and hence the work at risk per
//! failure — shrinks by ~3x (the "finer-grained checkpointing" the
//! paper's title promises). This module computes the optimum per policy
//! and quantifies the expected overhead at it.

use portus_sim::{CostModel, SimDuration};
use serde::{Deserialize, Serialize};

use crate::harness::TrainingConfig;
use crate::ops::{portus_checkpoint_cost, torch_save_cost};
use crate::policy::Policy;

/// The advisor's recommendation for one policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// Effective per-checkpoint overhead (the stall the policy imposes),
    /// used as Young/Daly's `C`.
    pub overhead_per_checkpoint: SimDuration,
    /// Recommended checkpoint interval in iterations (≥1).
    pub interval_iterations: u32,
    /// Recommended interval in virtual time.
    pub interval_time: SimDuration,
    /// Expected fraction of time lost to checkpointing + re-execution
    /// at the optimum (first-order Young/Daly estimate).
    pub expected_overhead_fraction: f64,
}

/// Effective per-checkpoint *stall* of a policy (what Young/Daly's `C`
/// should be — background-overlapped work does not count).
pub fn stall_per_checkpoint(m: &CostModel, cfg: &TrainingConfig) -> SimDuration {
    match cfg.policy {
        Policy::None => SimDuration::ZERO,
        Policy::TorchSave { backend, .. } => torch_save_cost(m, cfg.job, backend).total(),
        Policy::CheckFreq { backend, .. } => torch_save_cost(m, cfg.job, backend).snapshot,
        Policy::PortusSync { .. } => portus_checkpoint_cost(m, cfg.job),
        Policy::PortusAsync { .. } => {
            // Only update-phase deferrals stall; one per iteration the
            // pull overlaps.
            let pull = portus_checkpoint_cost(m, cfg.job);
            let iters_covered =
                (pull.as_secs_f64() / cfg.profile.total().as_secs_f64()).ceil() as u64;
            cfg.profile.update * iters_covered
        }
    }
}

/// Young/Daly optimum for the policy in `cfg` under the given mean time
/// between failures. The returned interval is clamped to at least one
/// iteration; pipeline-bound policies (background persist longer than
/// the interval) are clamped so the pipeline can drain.
pub fn advise(m: &CostModel, cfg: &TrainingConfig, mtbf: SimDuration) -> Advice {
    let c = stall_per_checkpoint(m, cfg);
    let iter = cfg.profile.total();
    // tau* = sqrt(2 C M)
    let tau = (2.0 * c.as_secs_f64() * mtbf.as_secs_f64()).sqrt();
    let mut k = (tau / iter.as_secs_f64()).round().max(1.0) as u32;

    // Pipeline-bound clamp: CheckFreq's background persist must fit in
    // the interval or the stall model breaks down.
    if let Policy::CheckFreq { backend, .. } = cfg.policy {
        let persist = torch_save_cost(m, cfg.job, backend).persist_side();
        let min_k = (persist.as_secs_f64() / iter.as_secs_f64()).ceil().max(1.0) as u32;
        k = k.max(min_k);
    }

    let interval_time = iter * u64::from(k);
    // First-order expected overhead: C/tau + tau/(2 M).
    let t = interval_time.as_secs_f64();
    let frac = c.as_secs_f64() / t + t / (2.0 * mtbf.as_secs_f64());
    Advice {
        overhead_per_checkpoint: c,
        interval_iterations: k,
        interval_time,
        expected_overhead_fraction: frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Backend, JobShape};
    use portus_dnn::IterationProfile;

    fn cfg(policy: Policy) -> TrainingConfig {
        TrainingConfig {
            job: JobShape {
                total_bytes: 89_600_000_000,
                tensor_count: 600,
                shards: 16,
                nodes: 2,
            },
            profile: IterationProfile::from_total(SimDuration::from_millis(1730)),
            policy,
        }
    }

    #[test]
    fn portus_supports_much_finer_intervals() {
        let m = CostModel::icdcs24();
        let mtbf = SimDuration::from_secs(600); // failures every 10 min
        let torch = advise(
            &m,
            &cfg(Policy::TorchSave {
                every: 1,
                backend: Backend::BeegfsPmem,
            }),
            mtbf,
        );
        let portus = advise(&m, &cfg(Policy::PortusAsync { every: 1 }), mtbf);
        assert!(
            portus.interval_iterations * 2 <= torch.interval_iterations,
            "portus {} vs torch {}",
            portus.interval_iterations,
            torch.interval_iterations
        );
        assert!(portus.expected_overhead_fraction < torch.expected_overhead_fraction);
    }

    #[test]
    fn checkfreq_interval_respects_pipeline_drain() {
        let m = CostModel::icdcs24();
        let c = cfg(Policy::CheckFreq {
            every: 1,
            backend: Backend::BeegfsPmem,
        });
        let advice = advise(&m, &c, SimDuration::from_secs(600));
        let persist = torch_save_cost(&m, c.job, Backend::BeegfsPmem).persist_side();
        assert!(
            c.profile.total() * u64::from(advice.interval_iterations) >= persist,
            "interval must cover the background persist"
        );
    }

    #[test]
    fn longer_mtbf_means_coarser_checkpoints() {
        let m = CostModel::icdcs24();
        let c = cfg(Policy::PortusAsync { every: 1 });
        let short = advise(&m, &c, SimDuration::from_secs(600));
        let long = advise(&m, &c, SimDuration::from_secs(6 * 3600));
        assert!(long.interval_iterations > short.interval_iterations);
    }

    #[test]
    fn async_stall_is_a_fraction_of_the_pull() {
        let m = CostModel::icdcs24();
        let sync = stall_per_checkpoint(&m, &cfg(Policy::PortusSync { every: 1 }));
        let asynch = stall_per_checkpoint(&m, &cfg(Policy::PortusAsync { every: 1 }));
        assert!(asynch * 3 < sync, "async {asynch} vs sync {sync}");
    }

    #[test]
    fn none_policy_has_zero_overhead() {
        let m = CostModel::icdcs24();
        assert_eq!(
            stall_per_checkpoint(&m, &cfg(Policy::None)),
            SimDuration::ZERO
        );
    }
}
