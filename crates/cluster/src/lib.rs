//! # portus-cluster
//!
//! End-to-end training simulation over the virtual timeline: analytic
//! operation costs for workloads too large to materialize ([`ops`]),
//! the four checkpoint policies of Fig. 9 ([`Policy`]), the training
//! harness behind Figs. 2/15 ([`run_training`]), GPU-utilization
//! traces for Fig. 16 ([`utilization_trace`], exportable as Chrome
//! trace-event JSON via [`run_chrome_trace`]), failure injection
//! for the lost-work trade-off the paper motivates ([`run_with_failures`]),
//! and a multi-daemon fleet harness on the discrete-event core
//! ([`run_fleet`]) where overlapping clients finish at the *max*, not
//! the sum, of their durations.
//!
//! # Examples
//!
//! ```
//! use portus_cluster::{run_training, JobShape, Policy, TrainingConfig};
//! use portus_dnn::IterationProfile;
//! use portus_sim::{CostModel, SimDuration};
//!
//! let cfg = TrainingConfig {
//!     job: JobShape::single(1 << 30, 300),
//!     profile: IterationProfile::from_total(SimDuration::from_millis(350)),
//!     policy: Policy::PortusAsync { every: 10 },
//! };
//! let result = run_training(&CostModel::icdcs24(), &cfg, 100);
//! assert_eq!(result.iterations, 100);
//! assert!(result.avg_utilization() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod event;
mod failure;
mod harness;
pub mod ops;
pub mod placement;
mod policy;
mod trace;

pub use advisor::{advise, stall_per_checkpoint, Advice};
pub use event::{
    run_fleet, ClientResult, ClientSpec, DaemonKill, EventRecord, FleetConfig, FleetResult,
    ModelRestore,
};
pub use failure::{
    daemon_loss_report, restore_cost, run_with_failures, DaemonLossReport, FailureOutcome,
};
pub use harness::{run_training, RunResult, Segment, TrainingConfig};
pub use ops::{Backend, JobShape, OpCost};
pub use placement::{replica_order, replica_set, stripe_plan, PlacementConfig, Stripe};
pub use policy::Policy;
pub use trace::{
    mean_utilization, peak_utilization, run_chrome_trace, segment, utilization_trace, UtilSample,
};
