//! Multi-daemon fleet simulation on the discrete-event core.
//!
//! [`crate::run_training`] replays *one* client against analytic costs
//! on a private timeline. This module drives a whole fleet — N storage
//! daemons and M training clients — as event **actors** on one
//! [`Engine`]: every iteration, checkpoint submission, and completion
//! is a plan on the deterministic `(instant, plan id)` queue, each
//! actor keeps its own local-time cursor, and daemon NICs are shared
//! [`Resource`]s.
//!
//! That fixes the concurrent time-inflation of the shared additive
//! clock: two clients checkpointing at the same instant against
//! *different* daemons finish at the **max** of their durations (they
//! physically overlap), while clients contending for **one** daemon's
//! NIC still serialize FIFO — exactly the semantics DESIGN.md §15
//! specifies. Runs are a pure function of `(config, seed)`: the event
//! log, the span stream, and the metrics snapshot replay bit-for-bit.

use std::cell::RefCell;
use std::rc::Rc;

use portus_dnn::IterationProfile;
use portus_sim::{
    ActorId, CostModel, Engine, Metrics, MetricsSnapshot, ProgressReport, Resource, SimDuration,
    SimTime, SpanRecord, Stage, TraceOp, Tracer,
};
use serde::{Deserialize, Serialize};

use crate::ops::{portus_checkpoint_cost, torch_save_cost, JobShape};
use crate::policy::Policy;

/// One training client of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Diagnostic name (also the actor name and event-log key).
    pub name: String,
    /// Index of the daemon whose NIC serves this client's Portus ops.
    pub daemon: usize,
    /// The job's size/shape.
    pub job: JobShape,
    /// Per-iteration phase timing.
    pub profile: IterationProfile,
    /// The checkpoint policy under test.
    pub policy: Policy,
    /// Iterations to run.
    pub iterations: u64,
}

/// A fleet run's static configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Storage daemons (each owns one NIC resource).
    pub daemons: usize,
    /// DMA engines per daemon NIC (jobs run `engines`-wide in
    /// parallel before queueing; 1 = the classic FIFO pipe).
    pub nic_engines: usize,
    /// Seed for every random decision in the run.
    pub seed: u64,
    /// Each client's start is jittered uniformly in `[0, start_jitter)`
    /// by its forked seed stream (zero = everyone starts at the origin).
    pub start_jitter: SimDuration,
    /// Sample a progress report every this much virtual time
    /// (`None` = no reports).
    pub progress_every: Option<SimDuration>,
    /// The training clients.
    pub clients: Vec<ClientSpec>,
}

impl FleetConfig {
    /// A uniform fleet: `clients` identical clients round-robined over
    /// `daemons` daemons.
    pub fn uniform(
        daemons: usize,
        clients: usize,
        job: JobShape,
        profile: IterationProfile,
        policy: Policy,
        iterations: u64,
    ) -> FleetConfig {
        FleetConfig {
            daemons,
            nic_engines: 1,
            seed: 0,
            start_jitter: SimDuration::ZERO,
            progress_every: None,
            clients: (0..clients)
                .map(|i| ClientSpec {
                    name: format!("client-{i}"),
                    daemon: i % daemons.max(1),
                    job,
                    profile,
                    policy,
                    iterations,
                })
                .collect(),
        }
    }
}

/// One executed event, for deterministic-replay comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The event's instant.
    pub at: SimTime,
    /// The acting client's name.
    pub actor: String,
    /// What happened (`start`, `iter#k`, `ckpt#n->daemonD`, `done`).
    pub kind: String,
}

/// One client's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientResult {
    /// The client's name.
    pub name: String,
    /// The daemon that served it.
    pub daemon: usize,
    /// Iterations executed.
    pub iterations: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// The instant the client finished (including drain of in-flight
    /// background work).
    pub finished_at: SimTime,
    /// Total time training was stalled on checkpointing.
    pub checkpoint_stall: SimDuration,
}

/// The outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Per-client outcomes, in config order.
    pub clients: Vec<ClientResult>,
    /// Every executed event, in execution order.
    pub events: Vec<EventRecord>,
    /// The canonical span stream (checkpoint submissions and
    /// completions on the virtual timeline).
    pub spans: Vec<SpanRecord>,
    /// Aggregated stage histograms.
    pub metrics: MetricsSnapshot,
    /// Periodic progress samples (empty unless configured).
    pub progress: Vec<ProgressReport>,
    /// When the whole fleet (clients + daemon NIC drains) finished.
    pub makespan: SimDuration,
    /// Events executed by the engine.
    pub events_run: u64,
}

/// Mutable per-client run state.
struct ClientRun {
    spec: ClientSpec,
    actor: ActorId,
    done: u64,
    checkpoints: u64,
    stall: SimDuration,
    /// CheckFreq's background persist drain instant.
    background_until: SimTime,
    /// Portus-async in-flight pull drain instant.
    pull_until: SimTime,
    finished_at: SimTime,
}

/// Fleet-wide shared state threaded through event closures.
struct Fleet {
    model: CostModel,
    nics: Vec<Resource>,
    daemon_actors: Vec<ActorId>,
    clients: Vec<ClientRun>,
    tracer: Tracer,
    metrics: Metrics,
    events: Vec<EventRecord>,
    next_req_id: u64,
}

impl Fleet {
    fn log(&mut self, at: SimTime, client: usize, kind: String) {
        self.events.push(EventRecord {
            at,
            actor: self.clients[client].spec.name.clone(),
            kind,
        });
    }

    /// Submits one Portus pull for `client` at `submit` on its daemon's
    /// NIC; records spans/histograms and returns the completion grant
    /// end. The daemon actor's cursor follows its NIC drain.
    fn submit_pull(&mut self, eng: &mut Engine, client: usize, submit: SimTime) -> SimTime {
        let (daemon, job, model) = {
            let c = &self.clients[client];
            (c.spec.daemon, c.spec.job, c.spec.name.clone())
        };
        let cost = portus_checkpoint_cost(&self.model, job);
        let grant = self.nics[daemon].schedule(submit, cost);
        eng.advance_actor_to(self.daemon_actors[daemon], grant.end);
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        for (stage, start, end) in [
            (Stage::DispatchWait, submit, grant.start),
            (Stage::Total, submit, grant.end),
        ] {
            self.tracer.record(SpanRecord {
                req_id,
                op: TraceOp::Checkpoint,
                stage,
                model: model.clone(),
                start,
                end,
                round: 0,
                lane: 0,
            });
            self.metrics
                .record_stage(TraceOp::Checkpoint, stage, end.saturating_since(start));
        }
        grant.end
    }
}

/// Runs one iteration event for `client`, then schedules the next one
/// at the client's new cursor.
fn step_client(fleet: &Rc<RefCell<Fleet>>, eng: &mut Engine, client: usize) {
    let mut f = fleet.borrow_mut();
    let (actor, profile, policy, iterations) = {
        let c = &f.clients[client];
        (c.actor, c.spec.profile, c.spec.policy, c.spec.iterations)
    };
    let mut cursor = eng.actor_now(actor).max(eng.now());
    let i = f.clients[client].done + 1;
    f.log(cursor, client, format!("iter#{i}"));

    let trigger = policy
        .interval()
        .is_some_and(|k| k > 0 && i.is_multiple_of(k as u64));

    // --- checkpoint actions at the start of the iteration ---
    if trigger {
        f.clients[client].checkpoints += 1;
        let n = f.clients[client].checkpoints;
        let daemon = f.clients[client].spec.daemon;
        f.log(cursor, client, format!("ckpt#{n}->daemon{daemon}"));
        match policy {
            Policy::None => {}
            Policy::TorchSave { backend, .. } => {
                // The baseline path bypasses the Portus daemons: the
                // whole save stalls the client on its own actor.
                let job = f.clients[client].spec.job;
                let op = torch_save_cost(&f.model, job, backend).total();
                cursor += op;
                f.clients[client].stall += op;
            }
            Policy::CheckFreq { backend, .. } => {
                let job = f.clients[client].spec.job;
                let op = torch_save_cost(&f.model, job, backend);
                let wait = f.clients[client].background_until.saturating_since(cursor);
                cursor = cursor + wait + op.snapshot;
                f.clients[client].stall += wait + op.snapshot;
                f.clients[client].background_until = cursor + op.persist_side();
            }
            Policy::PortusSync { .. } => {
                let end = f.submit_pull(eng, client, cursor);
                f.clients[client].stall += end.saturating_since(cursor);
                cursor = end;
            }
            Policy::PortusAsync { .. } => {
                // A new pull waits for the previous one to drain.
                let wait = f.clients[client].pull_until.saturating_since(cursor);
                cursor += wait;
                f.clients[client].stall += wait;
                let end = f.submit_pull(eng, client, cursor);
                f.clients[client].pull_until = end;
            }
        }
    }

    // --- the iteration itself ---
    let busy = profile.gpu_busy();
    let intrinsic_idle = profile.total() - busy;
    let update_start = cursor + profile.forward + profile.backward;
    let mut iter_stall = SimDuration::ZERO;
    if matches!(policy, Policy::PortusAsync { .. }) && f.clients[client].pull_until > update_start
    {
        // The update phase begins while tensors are still being
        // pulled: it defers by (up to) one update-phase length.
        iter_stall = profile
            .update
            .min(f.clients[client].pull_until.saturating_since(update_start));
        f.clients[client].stall += iter_stall;
    }
    cursor = cursor + busy + intrinsic_idle + iter_stall;
    eng.advance_actor_to(actor, cursor);

    f.clients[client].done = i;
    if i < iterations {
        drop(f);
        let fleet = fleet.clone();
        eng.schedule_at(cursor, move |e| step_client(&fleet, e, client));
    } else {
        // Drain outstanding background work so runs are comparable.
        let c = &f.clients[client];
        let drain_to = c.background_until.max(c.pull_until).max(cursor);
        f.clients[client].finished_at = drain_to;
        eng.advance_actor_to(actor, drain_to);
        f.log(drain_to, client, "done".to_string());
    }
}

/// Simulates the whole fleet; deterministic for a given `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.daemons` is zero, `cfg.clients` is empty, or a client
/// names a daemon index out of range.
pub fn run_fleet(m: &CostModel, cfg: &FleetConfig) -> FleetResult {
    assert!(cfg.daemons > 0, "a fleet needs at least one daemon");
    assert!(!cfg.clients.is_empty(), "a fleet needs at least one client");
    for c in &cfg.clients {
        assert!(
            c.daemon < cfg.daemons,
            "client {} names daemon {} of {}",
            c.name,
            c.daemon,
            cfg.daemons
        );
    }

    let mut eng = Engine::with_seed(cfg.seed);
    if let Some(every) = cfg.progress_every {
        eng.report_every(every);
    }

    let tracer = Tracer::new();
    tracer.enable();
    let daemon_actors: Vec<ActorId> = (0..cfg.daemons)
        .map(|d| eng.add_actor(&format!("daemon-{d}")))
        .collect();
    let nics: Vec<Resource> = (0..cfg.daemons)
        .map(|d| Resource::with_capacity(&format!("daemon-{d}/nic"), cfg.nic_engines))
        .collect();
    let clients: Vec<ClientRun> = cfg
        .clients
        .iter()
        .map(|spec| ClientRun {
            spec: spec.clone(),
            actor: eng.add_actor(&spec.name),
            done: 0,
            checkpoints: 0,
            stall: SimDuration::ZERO,
            background_until: SimTime::ZERO,
            pull_until: SimTime::ZERO,
            finished_at: SimTime::ZERO,
        })
        .collect();

    let fleet = Rc::new(RefCell::new(Fleet {
        model: m.clone(),
        nics,
        daemon_actors,
        clients,
        tracer,
        metrics: Metrics::new(),
        events: Vec::new(),
        next_req_id: 1,
    }));

    // Seeded start jitter: each client gets its own forked stream, so
    // adding a client never perturbs another client's draw.
    for idx in 0..cfg.clients.len() {
        let start = if cfg.start_jitter.is_zero() {
            SimTime::ZERO
        } else {
            let mut rng = eng.fork_rng(idx as u64);
            SimTime::ZERO + SimDuration::from_nanos(rng.gen_range(cfg.start_jitter.as_nanos()))
        };
        {
            let mut f = fleet.borrow_mut();
            let actor = f.clients[idx].actor;
            eng.advance_actor_to(actor, start);
            f.log(start, idx, "start".to_string());
        }
        let fleet = fleet.clone();
        eng.schedule_at(start, move |e| step_client(&fleet, e, idx));
    }

    eng.run();

    let f = fleet.borrow();
    let nic_drain = f
        .nics
        .iter()
        .map(Resource::busy_until)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = f
        .clients
        .iter()
        .map(|c| c.finished_at)
        .max()
        .unwrap_or(SimTime::ZERO)
        .max(nic_drain)
        .saturating_since(SimTime::ZERO);
    FleetResult {
        clients: f
            .clients
            .iter()
            .map(|c| ClientResult {
                name: c.spec.name.clone(),
                daemon: c.spec.daemon,
                iterations: c.done,
                checkpoints: c.checkpoints,
                finished_at: c.finished_at,
                checkpoint_stall: c.stall,
            })
            .collect(),
        events: f.events.clone(),
        spans: f.tracer.spans(),
        metrics: f.metrics.snapshot(),
        progress: eng.progress_reports().to_vec(),
        makespan,
        events_run: eng.events_run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_sim::SimDuration;

    fn small_job() -> JobShape {
        JobShape::single(1_000_000_000, 300)
    }

    fn profile() -> IterationProfile {
        IterationProfile::from_total(SimDuration::from_millis(350))
    }

    fn fleet(daemons: usize, clients: usize) -> FleetConfig {
        FleetConfig::uniform(
            daemons,
            clients,
            small_job(),
            profile(),
            Policy::PortusSync { every: 10 },
            50,
        )
    }

    #[test]
    fn independent_daemons_overlap_contended_daemons_serialize() {
        let m = CostModel::icdcs24();
        let solo = run_fleet(&m, &fleet(1, 1));
        // 4 clients, each with its own daemon: true overlap, the fleet
        // finishes in ~1x the solo makespan.
        let spread = run_fleet(&m, &fleet(4, 4));
        let ratio = spread.makespan.as_secs_f64() / solo.makespan.as_secs_f64();
        assert!(
            (0.99..1.05).contains(&ratio),
            "independent clients must overlap, got {ratio:.3}x"
        );
        // 4 clients hammering one daemon: pulls serialize on its NIC,
        // so the fleet is measurably slower than solo but far below 4x
        // (compute still overlaps).
        let packed = run_fleet(&m, &fleet(1, 4));
        assert!(
            packed.makespan > spread.makespan,
            "contention must cost virtual time"
        );
        let p99_packed = packed
            .metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .unwrap()
            .p99();
        let p99_spread = spread
            .metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .unwrap()
            .p99();
        assert!(
            p99_packed > p99_spread,
            "queueing on one NIC must show up in checkpoint latency"
        );
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 6);
        cfg.seed = 42;
        cfg.start_jitter = SimDuration::from_millis(100);
        cfg.progress_every = Some(SimDuration::from_secs(1));
        let a = run_fleet(&m, &cfg);
        let b = run_fleet(&m, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.progress, b.progress);
        assert_eq!(a.makespan, b.makespan);

        let mut other = cfg.clone();
        other.seed = 43;
        let c = run_fleet(&m, &other);
        assert_ne!(a.events, c.events, "a different seed must shift the jitter");
    }

    #[test]
    fn fleet_clients_match_the_analytic_harness_solo() {
        // One client, one daemon: the event path must agree with the
        // single-timeline analytic harness on totals.
        let m = CostModel::icdcs24();
        let cfg = fleet(1, 1);
        let out = run_fleet(&m, &cfg);
        let spec = &cfg.clients[0];
        let analytic = crate::run_training(
            &m,
            &crate::TrainingConfig {
                job: spec.job,
                profile: spec.profile,
                policy: spec.policy,
            },
            spec.iterations,
        );
        let c = &out.clients[0];
        assert_eq!(c.iterations, analytic.iterations);
        assert_eq!(c.checkpoints, analytic.checkpoints);
        assert_eq!(c.checkpoint_stall, analytic.checkpoint_stall);
        assert_eq!(c.finished_at.saturating_since(SimTime::ZERO), analytic.elapsed);
    }

    #[test]
    fn async_fleet_overlaps_pulls_with_compute() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 4);
        for c in &mut cfg.clients {
            c.policy = Policy::PortusAsync { every: 10 };
        }
        let out = run_fleet(&m, &cfg);
        for c in &out.clients {
            assert_eq!(c.checkpoints, 5);
            let sync_cost = portus_checkpoint_cost(&m, small_job());
            assert!(
                c.checkpoint_stall < sync_cost * c.checkpoints,
                "async stalls must undercut synchronous pulls"
            );
        }
    }

    #[test]
    fn multi_engine_nics_absorb_concurrent_pulls() {
        let m = CostModel::icdcs24();
        let narrow = run_fleet(&m, &fleet(1, 4));
        let mut wide_cfg = fleet(1, 4);
        wide_cfg.nic_engines = 4;
        let wide = run_fleet(&m, &wide_cfg);
        assert!(
            wide.makespan < narrow.makespan,
            "4 NIC engines must beat 1 under 4-way contention"
        );
    }

    #[test]
    #[should_panic(expected = "names daemon")]
    fn out_of_range_daemon_panics() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(1, 1);
        cfg.clients[0].daemon = 3;
        run_fleet(&m, &cfg);
    }
}
