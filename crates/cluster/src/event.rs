//! Multi-daemon fleet simulation on the discrete-event core.
//!
//! [`crate::run_training`] replays *one* client against analytic costs
//! on a private timeline. This module drives a whole fleet — N storage
//! daemons and M training clients — as event **actors** on one
//! [`Engine`]: every iteration, checkpoint submission, and completion
//! is a plan on the deterministic `(instant, plan id)` queue, each
//! actor keeps its own local-time cursor, and daemon NICs are shared
//! [`Resource`]s.
//!
//! That fixes the concurrent time-inflation of the shared additive
//! clock: two clients checkpointing at the same instant against
//! *different* daemons finish at the **max** of their durations (they
//! physically overlap), while clients contending for **one** daemon's
//! NIC still serialize FIFO — exactly the semantics DESIGN.md §15
//! specifies. Runs are a pure function of `(config, seed)`: the event
//! log, the span stream, and the metrics snapshot replay bit-for-bit.

use std::cell::RefCell;
use std::rc::Rc;

use portus_dnn::IterationProfile;
use portus_sim::{
    ActorId, CostModel, DaemonFleetStats, Engine, Metrics, MetricsSnapshot, ProgressReport,
    Resource, SimDuration, SimTime, SpanRecord, Stage, TraceOp, Tracer,
};
use serde::{Deserialize, Serialize};

use crate::ops::{portus_checkpoint_cost, torch_save_cost, JobShape};
use crate::placement::{replica_order, stripe_plan, PlacementConfig};
use crate::policy::Policy;

/// The tenant every client belongs to unless the config says
/// otherwise — mirrors the daemon's `accept` ⇒ `accept_as("default")`
/// delegation, so untagged fleets aggregate under one bucket.
fn default_tenant() -> String {
    "default".to_string()
}

/// One training client of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Diagnostic name (also the actor name and event-log key).
    pub name: String,
    /// QoS tenant this client's checkpoints are attributed to in the
    /// fleet metrics (`"default"` when the config predates tagging).
    #[serde(default = "default_tenant")]
    pub tenant: String,
    /// Index of the daemon whose NIC serves this client's Portus ops.
    pub daemon: usize,
    /// The job's size/shape.
    pub job: JobShape,
    /// Per-iteration phase timing.
    pub profile: IterationProfile,
    /// The checkpoint policy under test.
    pub policy: Policy,
    /// Iterations to run.
    pub iterations: u64,
}

/// A scheduled daemon loss: at `at`, the daemon's NIC stops granting,
/// its in-flight Active writes are fenced by the recovery epoch, and
/// a rebalance pass re-registers its models on survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonKill {
    /// Index of the daemon to kill.
    pub daemon: usize,
    /// Virtual instant of the loss (offset from the run origin).
    pub at: SimDuration,
}

/// A fleet run's static configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Storage daemons (each owns one NIC resource).
    pub daemons: usize,
    /// DMA engines per daemon NIC (jobs run `engines`-wide in
    /// parallel before queueing; 1 = the classic FIFO pipe).
    pub nic_engines: usize,
    /// Seed for every random decision in the run.
    pub seed: u64,
    /// Each client's start is jittered uniformly in `[0, start_jitter)`
    /// by its forked seed stream (zero = everyone starts at the origin).
    pub start_jitter: SimDuration,
    /// Sample a progress report every this much virtual time
    /// (`None` = no reports).
    pub progress_every: Option<SimDuration>,
    /// Rendezvous placement with k-way replication and striping.
    /// `None` (the default) keeps the legacy pinned-daemon datapath:
    /// every Portus pull goes to `ClientSpec::daemon`, bit-for-bit
    /// with pre-placement runs.
    #[serde(default)]
    pub placement: Option<PlacementConfig>,
    /// Deterministic daemon-loss schedule (requires `placement`).
    #[serde(default)]
    pub kills: Vec<DaemonKill>,
    /// The training clients.
    pub clients: Vec<ClientSpec>,
}

impl FleetConfig {
    /// A uniform fleet: `clients` identical clients round-robined over
    /// `daemons` daemons.
    /// # Panics
    ///
    /// Panics if `daemons` is zero: round-robining over an empty fleet
    /// has no consistent meaning, and deferring the failure to
    /// [`run_fleet`] would hand out a config that silently pinned
    /// every client to daemon 0.
    pub fn uniform(
        daemons: usize,
        clients: usize,
        job: JobShape,
        profile: IterationProfile,
        policy: Policy,
        iterations: u64,
    ) -> FleetConfig {
        assert!(
            daemons > 0,
            "FleetConfig::uniform needs at least one daemon (got 0)"
        );
        FleetConfig {
            daemons,
            nic_engines: 1,
            seed: 0,
            start_jitter: SimDuration::ZERO,
            progress_every: None,
            placement: None,
            kills: Vec::new(),
            clients: (0..clients)
                .map(|i| ClientSpec {
                    name: format!("client-{i}"),
                    tenant: default_tenant(),
                    daemon: i % daemons,
                    job,
                    profile,
                    policy,
                    iterations,
                })
                .collect(),
        }
    }

    /// Enables rendezvous placement (replication/striping) on `self`.
    pub fn with_placement(mut self, p: PlacementConfig) -> FleetConfig {
        self.placement = Some(p);
        self
    }

    /// Schedules a daemon loss at `at`.
    pub fn with_kill(mut self, daemon: usize, at: SimDuration) -> FleetConfig {
        self.kills.push(DaemonKill { daemon, at });
        self
    }
}

/// One executed event, for deterministic-replay comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// The event's instant.
    pub at: SimTime,
    /// The acting client's name (or `daemon-D` for kill/repair events).
    pub actor: String,
    /// What happened (`start`, `iter#k`, `ckpt#n->daemonD`, `kill`,
    /// `repair ...`, `done`).
    pub kind: String,
}

/// One client's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientResult {
    /// The client's name.
    pub name: String,
    /// The daemon that served it (the configured pin; under placement,
    /// the rendezvous order decides per checkpoint).
    pub daemon: usize,
    /// Iterations executed.
    pub iterations: u64,
    /// Checkpoints completed (under placement: attempts where at least
    /// one replica of every stripe survived to validation).
    pub checkpoints: u64,
    /// Checkpoint attempts that lost every replica of some stripe to a
    /// daemon kill (always zero without a kill schedule).
    #[serde(default)]
    pub failed_checkpoints: u64,
    /// Highest checkpoint version the client saw validate (`None` on
    /// the legacy pinned path, where every checkpoint validates).
    #[serde(default)]
    pub latest_done_version: Option<u64>,
    /// The instant the client finished (including drain of in-flight
    /// background work).
    pub finished_at: SimTime,
    /// Total time training was stalled on checkpointing.
    pub checkpoint_stall: SimDuration,
}

/// End-of-run restore accounting for one client's model: which version
/// a post-run restore would serve, from where, and how many dead
/// replicas the client would fall through (the `DatapathFailed`
/// fall-through count) on the way.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelRestore {
    /// The owning client/model name.
    pub client: String,
    /// Latest version with every stripe on a surviving daemon
    /// (`None` = nothing restorable, i.e. lost work).
    pub version: Option<u64>,
    /// Surviving daemons that serve the stripes, in rendezvous order.
    pub served_by: Vec<usize>,
    /// Dead replicas contacted (and failed over) before the version
    /// was fully served.
    pub failovers: u64,
}

/// The outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Per-client outcomes, in config order.
    pub clients: Vec<ClientResult>,
    /// Every executed event, in execution order.
    pub events: Vec<EventRecord>,
    /// The canonical span stream (checkpoint submissions and
    /// completions on the virtual timeline).
    pub spans: Vec<SpanRecord>,
    /// Aggregated stage histograms.
    pub metrics: MetricsSnapshot,
    /// Periodic progress samples (empty unless configured).
    pub progress: Vec<ProgressReport>,
    /// When the whole fleet (clients + daemon NIC drains) finished.
    pub makespan: SimDuration,
    /// Events executed by the engine.
    pub events_run: u64,
    /// Final recovery epoch (one bump per daemon loss; 0 = no losses).
    pub epoch: u64,
    /// Post-run restore accounting, in client order (empty without
    /// placement).
    pub restores: Vec<ModelRestore>,
}

/// One replicated stripe write under placement: where a copy landed
/// and when its pull completed on that daemon's NIC.
struct WriteRec {
    stripe: u32,
    daemon: usize,
    end: SimTime,
    bytes: u64,
}

/// One checkpoint attempt's placement record.
struct CkptRec {
    version: u64,
    stripes: u32,
    writes: Vec<WriteRec>,
}

/// Mutable per-client run state.
struct ClientRun {
    spec: ClientSpec,
    actor: ActorId,
    done: u64,
    checkpoints: u64,
    failed_checkpoints: u64,
    latest_done: Option<u64>,
    stall: SimDuration,
    /// CheckFreq's background persist drain instant.
    background_until: SimTime,
    /// Portus-async in-flight pull drain instant.
    pull_until: SimTime,
    finished_at: SimTime,
    /// Placement write history (empty on the legacy pinned path).
    ckpts: Vec<CkptRec>,
}

/// Fleet-wide shared state threaded through event closures.
struct Fleet {
    model: CostModel,
    nics: Vec<Resource>,
    daemon_actors: Vec<ActorId>,
    clients: Vec<ClientRun>,
    tracer: Tracer,
    metrics: Metrics,
    events: Vec<EventRecord>,
    next_req_id: u64,
    placement: Option<PlacementConfig>,
    /// Liveness as of the current virtual instant.
    alive: Vec<bool>,
    /// Static kill schedule per daemon (`None` = survives the run).
    kill_at: Vec<Option<SimTime>>,
    /// Cluster-wide recovery epoch: bumped once per daemon loss.
    epoch: u64,
    per_daemon: Vec<DaemonFleetStats>,
}

impl Fleet {
    fn log(&mut self, at: SimTime, client: usize, kind: String) {
        self.events.push(EventRecord {
            at,
            actor: self.clients[client].spec.name.clone(),
            kind,
        });
    }

    /// Submits one Portus pull for `client` at `submit` on its daemon's
    /// NIC; records spans/histograms and returns the completion grant
    /// end. The daemon actor's cursor follows its NIC drain.
    fn submit_pull(&mut self, eng: &mut Engine, client: usize, submit: SimTime) -> SimTime {
        let (daemon, job, model, tenant) = {
            let c = &self.clients[client];
            (
                c.spec.daemon,
                c.spec.job,
                c.spec.name.clone(),
                c.spec.tenant.clone(),
            )
        };
        let cost = portus_checkpoint_cost(&self.model, job);
        let grant = self.nics[daemon].schedule(submit, cost);
        eng.advance_actor_to(self.daemon_actors[daemon], grant.end);
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        for (stage, start, end) in [
            (Stage::DispatchWait, submit, grant.start),
            (Stage::Total, submit, grant.end),
        ] {
            self.tracer.record(SpanRecord {
                req_id,
                op: TraceOp::Checkpoint,
                stage,
                model: model.clone(),
                start,
                end,
                round: 0,
                lane: 0,
            });
            self.metrics
                .record_stage(TraceOp::Checkpoint, stage, end.saturating_since(start));
        }
        self.metrics.tenant_admitted(&tenant, job.total_bytes);
        self.metrics.record_tenant_op(
            &tenant,
            TraceOp::Checkpoint,
            grant.end.saturating_since(submit),
        );
        grant.end
    }

    /// Whether daemon `d` is up at instant `t` under the static kill
    /// schedule.
    fn up_at(&self, d: usize, t: SimTime) -> bool {
        self.kill_at[d].is_none_or(|k| t < k)
    }

    /// Whether a stripe write survived to validation: its pull drained
    /// before its daemon's kill instant (always true for survivors).
    fn validated(&self, w: &WriteRec) -> bool {
        self.kill_at[w.daemon].is_none_or(|k| w.end <= k)
    }

    /// Submits one *replicated* checkpoint for `client` under the
    /// placement config: every stripe is pulled by each of its target
    /// daemons' NICs, the client completes at the max of the surviving
    /// pulls, and the attempt validates iff every stripe keeps at
    /// least one copy that drained before its daemon died. Returns
    /// `(client-visible end, validated)`.
    fn submit_replicated(
        &mut self,
        eng: &mut Engine,
        client: usize,
        submit: SimTime,
        version: u64,
    ) -> (SimTime, bool) {
        let (job, model, tenant) = {
            let c = &self.clients[client];
            (c.spec.job, c.spec.name.clone(), c.spec.tenant.clone())
        };
        let p = self.placement.expect("placement path needs a config");
        let plan = stripe_plan(&model, job, &self.alive, &p);
        if plan.is_empty() {
            // Every daemon is dead: the checkpoint has nowhere to go.
            return (submit, false);
        }
        let stripes = plan.len() as u32;
        let mut rec = CkptRec {
            version,
            stripes,
            writes: Vec::new(),
        };
        let mut client_end = submit;
        let mut first_start = SimTime::ZERO + SimDuration::from_nanos(u64::MAX);
        let mut all_ok = true;
        for stripe in &plan {
            let sjob = JobShape {
                total_bytes: stripe.bytes,
                tensor_count: stripe.tensors,
                ..job
            };
            let cost = portus_checkpoint_cost(&self.model, sjob);
            let mut stripe_ok = false;
            for (j, &d) in stripe.targets.iter().enumerate() {
                let grant = self.nics[d].schedule(submit, cost);
                eng.advance_actor_to(self.daemon_actors[d], grant.end);
                first_start = first_start.min(grant.start);
                self.per_daemon[d].writes += 1;
                self.per_daemon[d].bytes += stripe.bytes;
                if j > 0 {
                    self.per_daemon[d].replica_writes += 1;
                }
                let w = WriteRec {
                    stripe: stripe.index,
                    daemon: d,
                    end: grant.end,
                    bytes: stripe.bytes,
                };
                // A pull racing its daemon's death completes (from the
                // client's view) at the kill: the connection drops and
                // the client stops waiting on that replica.
                let visible = match self.kill_at[d] {
                    Some(k) if grant.end > k => k,
                    _ => grant.end,
                };
                client_end = client_end.max(visible);
                stripe_ok |= self.validated(&w);
                rec.writes.push(w);
            }
            all_ok &= stripe_ok;
        }
        self.clients[client].ckpts.push(rec);
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        for (stage, start, end) in [
            (Stage::DispatchWait, submit, first_start),
            (Stage::Total, submit, client_end),
        ] {
            self.tracer.record(SpanRecord {
                req_id,
                op: TraceOp::Checkpoint,
                stage,
                model: model.clone(),
                start,
                end,
                round: 0,
                lane: 0,
            });
            self.metrics
                .record_stage(TraceOp::Checkpoint, stage, end.saturating_since(start));
        }
        self.metrics.tenant_admitted(&tenant, job.total_bytes);
        self.metrics.record_tenant_op(
            &tenant,
            TraceOp::Checkpoint,
            client_end.saturating_since(submit),
        );
        (client_end, all_ok)
    }

    /// The latest version of `client`'s model whose every stripe has a
    /// copy validated by `ok(write)` — the fleet-level Done check.
    fn restorable_version(&self, client: usize, ok: impl Fn(&WriteRec) -> bool) -> Option<u64> {
        self.clients[client]
            .ckpts
            .iter()
            .rev()
            .find(|c| (0..c.stripes).all(|s| c.writes.iter().any(|w| w.stripe == s && ok(w))))
            .map(|c| c.version)
    }
}

/// Kills daemon `d` at the engine's current instant: bumps the
/// recovery epoch, fences its in-flight Active writes, and runs the
/// rebalance pass — every model's latest validated version is
/// re-replicated onto its post-loss rendezvous targets by copying
/// stripes from surviving holders (grants on both NICs).
fn kill_daemon(fleet: &Rc<RefCell<Fleet>>, eng: &mut Engine, d: usize) {
    let mut f = fleet.borrow_mut();
    if !f.alive[d] {
        return;
    }
    let now = eng.now();
    f.alive[d] = false;
    f.epoch += 1;
    f.per_daemon[d].killed = true;
    let epoch = f.epoch;
    f.events.push(EventRecord {
        at: now,
        actor: format!("daemon-{d}"),
        kind: format!("kill epoch#{epoch}"),
    });

    // Fence: writes in flight on the dead daemon are Active slots its
    // MIndex will never seal; the epoch marks them reclaim-eligible
    // without touching any live replica.
    let fenced: u64 = f
        .clients
        .iter()
        .flat_map(|c| c.ckpts.iter())
        .flat_map(|c| c.writes.iter())
        .filter(|w| w.daemon == d && w.end > now)
        .count() as u64;
    f.per_daemon[d].fenced_active += fenced;

    // Rebalance: re-register each model on its post-loss replica
    // targets and repair missing stripe copies from survivors.
    let p = f.placement.expect("kills require placement");
    for ci in 0..f.clients.len() {
        // A copy is repair-eligible as a source if it validated before
        // `now` on a daemon still up at `now`.
        let Some(target_version) = f.restorable_version(ci, |w| {
            w.end <= now && f.up_at(w.daemon, now) && f.validated(w)
        }) else {
            continue;
        };
        let (model, job) = {
            let c = &f.clients[ci];
            (c.spec.name.clone(), c.spec.job)
        };
        let order = replica_order(&model, &f.alive);
        if order.is_empty() {
            continue;
        }
        let k = p.replicas.clamp(1, order.len());
        let rec_idx = f.clients[ci]
            .ckpts
            .iter()
            .position(|c| c.version == target_version)
            .expect("restorable version exists");
        let stripes = f.clients[ci].ckpts[rec_idx].stripes;
        let mut rebalanced: Vec<usize> = Vec::new();
        for s in 0..stripes {
            let holders: Vec<usize> = f.clients[ci].ckpts[rec_idx]
                .writes
                .iter()
                .filter(|w| {
                    w.stripe == s && w.end <= now && f.up_at(w.daemon, now) && f.validated(w)
                })
                .map(|w| w.daemon)
                .collect();
            let Some(&src) = holders.first() else {
                continue;
            };
            let bytes = f.clients[ci].ckpts[rec_idx]
                .writes
                .iter()
                .find(|w| w.stripe == s)
                .map_or(0, |w| w.bytes);
            for j in 0..k {
                let t = order[(s as usize + j) % order.len()];
                if holders.contains(&t) {
                    continue;
                }
                // Copy the stripe survivor→target over the fabric:
                // a read grant on the source NIC, a write grant on
                // the target NIC, completion at the max.
                let sjob = JobShape {
                    total_bytes: bytes,
                    tensor_count: (job.tensor_count * bytes)
                        .checked_div(job.total_bytes)
                        .unwrap_or(0)
                        .max(1),
                    ..job
                };
                let cost = portus_checkpoint_cost(&f.model, sjob);
                let read = f.nics[src].schedule(now, cost);
                let write = f.nics[t].schedule(now, cost);
                let end = read.end.max(write.end);
                eng.advance_actor_to(f.daemon_actors[src], read.end);
                eng.advance_actor_to(f.daemon_actors[t], write.end);
                f.per_daemon[t].repairs_in += 1;
                f.per_daemon[t].repair_bytes += bytes;
                if !rebalanced.contains(&t) {
                    rebalanced.push(t);
                    f.per_daemon[t].rebalanced_in += 1;
                }
                f.events.push(EventRecord {
                    at: now,
                    actor: format!("daemon-{d}"),
                    kind: format!(
                        "repair {model} v{target_version} stripe{s} daemon{src}->daemon{t}"
                    ),
                });
                f.clients[ci].ckpts[rec_idx].writes.push(WriteRec {
                    stripe: s,
                    daemon: t,
                    end,
                    bytes,
                });
            }
        }
    }
}

/// Runs one iteration event for `client`, then schedules the next one
/// at the client's new cursor.
fn step_client(fleet: &Rc<RefCell<Fleet>>, eng: &mut Engine, client: usize) {
    let mut f = fleet.borrow_mut();
    let (actor, profile, policy, iterations) = {
        let c = &f.clients[client];
        (c.actor, c.spec.profile, c.spec.policy, c.spec.iterations)
    };
    let mut cursor = eng.actor_now(actor).max(eng.now());
    let i = f.clients[client].done + 1;
    f.log(cursor, client, format!("iter#{i}"));

    let trigger = policy
        .interval()
        .is_some_and(|k| k > 0 && i.is_multiple_of(k as u64));

    // --- checkpoint actions at the start of the iteration ---
    let placed = f.placement.is_some()
        && matches!(
            policy,
            Policy::PortusSync { .. } | Policy::PortusAsync { .. }
        );
    if trigger && placed {
        // Placement path: the pull fans out to the rendezvous targets
        // (k replicas per stripe) instead of the configured pin.
        let version = f.clients[client].checkpoints + f.clients[client].failed_checkpoints + 1;
        if matches!(policy, Policy::PortusAsync { .. }) {
            let wait = f.clients[client].pull_until.saturating_since(cursor);
            cursor += wait;
            f.clients[client].stall += wait;
        }
        let targets: Vec<usize> = {
            let spec_job = f.clients[client].spec.job;
            let name = f.clients[client].spec.name.clone();
            let p = f.placement.expect("placed path");
            let mut t: Vec<usize> = stripe_plan(&name, spec_job, &f.alive, &p)
                .iter()
                .flat_map(|s| s.targets.iter().copied())
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        f.log(
            cursor,
            client,
            format!("ckpt#{version}->daemons{targets:?}"),
        );
        let (end, ok) = f.submit_replicated(eng, client, cursor, version);
        if ok {
            f.clients[client].checkpoints += 1;
            f.clients[client].latest_done = Some(version);
        } else {
            f.clients[client].failed_checkpoints += 1;
            f.log(
                end,
                client,
                format!("ckpt#{version} lost (no surviving replica)"),
            );
        }
        match policy {
            Policy::PortusSync { .. } => {
                f.clients[client].stall += end.saturating_since(cursor);
                cursor = end;
            }
            _ => f.clients[client].pull_until = end,
        }
    } else if trigger {
        f.clients[client].checkpoints += 1;
        let n = f.clients[client].checkpoints;
        let daemon = f.clients[client].spec.daemon;
        f.log(cursor, client, format!("ckpt#{n}->daemon{daemon}"));
        match policy {
            Policy::None => {}
            Policy::TorchSave { backend, .. } => {
                // The baseline path bypasses the Portus daemons: the
                // whole save stalls the client on its own actor.
                let job = f.clients[client].spec.job;
                let op = torch_save_cost(&f.model, job, backend).total();
                cursor += op;
                f.clients[client].stall += op;
            }
            Policy::CheckFreq { backend, .. } => {
                let job = f.clients[client].spec.job;
                let op = torch_save_cost(&f.model, job, backend);
                let wait = f.clients[client].background_until.saturating_since(cursor);
                cursor = cursor + wait + op.snapshot;
                f.clients[client].stall += wait + op.snapshot;
                f.clients[client].background_until = cursor + op.persist_side();
            }
            Policy::PortusSync { .. } => {
                let end = f.submit_pull(eng, client, cursor);
                f.clients[client].stall += end.saturating_since(cursor);
                cursor = end;
            }
            Policy::PortusAsync { .. } => {
                // A new pull waits for the previous one to drain.
                let wait = f.clients[client].pull_until.saturating_since(cursor);
                cursor += wait;
                f.clients[client].stall += wait;
                let end = f.submit_pull(eng, client, cursor);
                f.clients[client].pull_until = end;
            }
        }
    }

    // --- the iteration itself ---
    let busy = profile.gpu_busy();
    let intrinsic_idle = profile.total() - busy;
    let update_start = cursor + profile.forward + profile.backward;
    let mut iter_stall = SimDuration::ZERO;
    if matches!(policy, Policy::PortusAsync { .. }) && f.clients[client].pull_until > update_start {
        // The update phase begins while tensors are still being
        // pulled: it defers by (up to) one update-phase length.
        iter_stall = profile
            .update
            .min(f.clients[client].pull_until.saturating_since(update_start));
        f.clients[client].stall += iter_stall;
    }
    cursor = cursor + busy + intrinsic_idle + iter_stall;
    eng.advance_actor_to(actor, cursor);

    f.clients[client].done = i;
    if i < iterations {
        drop(f);
        let fleet = fleet.clone();
        eng.schedule_at(cursor, move |e| step_client(&fleet, e, client));
    } else {
        // Drain outstanding background work so runs are comparable.
        let c = &f.clients[client];
        let drain_to = c.background_until.max(c.pull_until).max(cursor);
        f.clients[client].finished_at = drain_to;
        eng.advance_actor_to(actor, drain_to);
        f.log(drain_to, client, "done".to_string());
    }
}

/// Simulates the whole fleet; deterministic for a given `(cfg, seed)`.
///
/// # Panics
///
/// Panics if `cfg.daemons` is zero, `cfg.clients` is empty, a client
/// names a daemon index out of range, a kill names a daemon out of
/// range, or kills are scheduled without a placement config (there is
/// no replication to survive them).
pub fn run_fleet(m: &CostModel, cfg: &FleetConfig) -> FleetResult {
    assert!(cfg.daemons > 0, "a fleet needs at least one daemon");
    assert!(!cfg.clients.is_empty(), "a fleet needs at least one client");
    for c in &cfg.clients {
        assert!(
            c.daemon < cfg.daemons,
            "client {} names daemon {} of {}",
            c.name,
            c.daemon,
            cfg.daemons
        );
    }
    assert!(
        cfg.kills.is_empty() || cfg.placement.is_some(),
        "a kill schedule needs a placement config"
    );
    for k in &cfg.kills {
        assert!(
            k.daemon < cfg.daemons,
            "kill names daemon {} of {}",
            k.daemon,
            cfg.daemons
        );
    }
    if let Some(p) = &cfg.placement {
        assert!(p.replicas >= 1, "placement needs at least one replica");
        assert!(p.stripe_width >= 1, "placement needs stripe width >= 1");
    }

    let mut eng = Engine::with_seed(cfg.seed);
    if let Some(every) = cfg.progress_every {
        eng.report_every(every);
    }

    let tracer = Tracer::new();
    tracer.enable();
    let daemon_actors: Vec<ActorId> = (0..cfg.daemons)
        .map(|d| eng.add_actor(&format!("daemon-{d}")))
        .collect();
    let nics: Vec<Resource> = (0..cfg.daemons)
        .map(|d| Resource::with_capacity(&format!("daemon-{d}/nic"), cfg.nic_engines))
        .collect();
    let clients: Vec<ClientRun> = cfg
        .clients
        .iter()
        .map(|spec| ClientRun {
            spec: spec.clone(),
            actor: eng.add_actor(&spec.name),
            done: 0,
            checkpoints: 0,
            failed_checkpoints: 0,
            latest_done: None,
            stall: SimDuration::ZERO,
            background_until: SimTime::ZERO,
            pull_until: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            ckpts: Vec::new(),
        })
        .collect();

    // The static kill schedule: earliest kill wins per daemon.
    let mut kill_at: Vec<Option<SimTime>> = vec![None; cfg.daemons];
    for k in &cfg.kills {
        let at = SimTime::ZERO + k.at;
        kill_at[k.daemon] = Some(kill_at[k.daemon].map_or(at, |p: SimTime| p.min(at)));
    }

    let fleet = Rc::new(RefCell::new(Fleet {
        model: m.clone(),
        nics,
        daemon_actors,
        clients,
        tracer,
        metrics: Metrics::new(),
        events: Vec::new(),
        next_req_id: 1,
        placement: cfg.placement,
        alive: vec![true; cfg.daemons],
        kill_at: kill_at.clone(),
        epoch: 0,
        per_daemon: (0..cfg.daemons)
            .map(|d| DaemonFleetStats {
                daemon: d as u64,
                ..DaemonFleetStats::default()
            })
            .collect(),
    }));

    for (d, at) in kill_at.iter().enumerate() {
        if let Some(at) = *at {
            let fleet = fleet.clone();
            eng.schedule_at(at, move |e| kill_daemon(&fleet, e, d));
        }
    }

    // Seeded start jitter: each client gets its own forked stream, so
    // adding a client never perturbs another client's draw.
    for idx in 0..cfg.clients.len() {
        let start = if cfg.start_jitter.is_zero() {
            SimTime::ZERO
        } else {
            let mut rng = eng.fork_rng(idx as u64);
            SimTime::ZERO + SimDuration::from_nanos(rng.gen_range(cfg.start_jitter.as_nanos()))
        };
        {
            let mut f = fleet.borrow_mut();
            let actor = f.clients[idx].actor;
            eng.advance_actor_to(actor, start);
            f.log(start, idx, "start".to_string());
        }
        let fleet = fleet.clone();
        eng.schedule_at(start, move |e| step_client(&fleet, e, idx));
    }

    eng.run();

    let f = fleet.borrow();
    // A dead daemon's NIC stops granting at its kill: whatever queue
    // it had drains nowhere and must not stretch the makespan.
    let nic_drain = f
        .nics
        .iter()
        .enumerate()
        .map(|(d, n)| match f.kill_at[d] {
            Some(k) => n.busy_until().min(k),
            None => n.busy_until(),
        })
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = f
        .clients
        .iter()
        .map(|c| c.finished_at)
        .max()
        .unwrap_or(SimTime::ZERO)
        .max(nic_drain)
        .saturating_since(SimTime::ZERO);

    // Post-run restore accounting: for each model, the version a
    // restore would serve and the dead replicas it falls through
    // (each a `DatapathFailed` before the next replica answers).
    let mut restores = Vec::new();
    let mut restore_failovers = 0u64;
    if cfg.placement.is_some() {
        for (ci, c) in f.clients.iter().enumerate() {
            let version =
                f.restorable_version(ci, |w| f.kill_at[w.daemon].is_none() && f.validated(w));
            let mut served_by = Vec::new();
            let mut failovers = 0u64;
            if let Some(v) = version {
                let rec = c.ckpts.iter().find(|r| r.version == v).expect("restorable");
                let mut remaining: Vec<u32> = (0..rec.stripes).collect();
                for d in replica_order(&c.spec.name, &vec![true; cfg.daemons]) {
                    if remaining.is_empty() {
                        break;
                    }
                    let holds: Vec<u32> = rec
                        .writes
                        .iter()
                        .filter(|w| w.daemon == d && remaining.contains(&w.stripe))
                        .map(|w| w.stripe)
                        .collect();
                    if holds.is_empty() {
                        continue;
                    }
                    if f.kill_at[d].is_some() {
                        // The placement says this daemon holds stripes
                        // we still need; contacting it fails and the
                        // restore falls through to the next replica.
                        failovers += 1;
                    } else {
                        remaining.retain(|s| !holds.contains(s));
                        served_by.push(d);
                    }
                }
            }
            restore_failovers += failovers;
            restores.push(ModelRestore {
                client: c.spec.name.clone(),
                version,
                served_by,
                failovers,
            });
        }
    }

    let mut metrics = f.metrics.snapshot();
    if cfg.placement.is_some() {
        metrics.fleet = f.per_daemon.clone();
        metrics.recovery_epoch = f.epoch;
        metrics.restore_failovers = restore_failovers;
    }

    FleetResult {
        clients: f
            .clients
            .iter()
            .map(|c| ClientResult {
                name: c.spec.name.clone(),
                daemon: c.spec.daemon,
                iterations: c.done,
                checkpoints: c.checkpoints,
                failed_checkpoints: c.failed_checkpoints,
                latest_done_version: c.latest_done,
                finished_at: c.finished_at,
                checkpoint_stall: c.stall,
            })
            .collect(),
        events: f.events.clone(),
        spans: f.tracer.spans(),
        metrics,
        progress: eng.progress_reports().to_vec(),
        makespan,
        events_run: eng.events_run(),
        epoch: f.epoch,
        restores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_sim::SimDuration;

    fn small_job() -> JobShape {
        JobShape::single(1_000_000_000, 300)
    }

    fn profile() -> IterationProfile {
        IterationProfile::from_total(SimDuration::from_millis(350))
    }

    fn fleet(daemons: usize, clients: usize) -> FleetConfig {
        FleetConfig::uniform(
            daemons,
            clients,
            small_job(),
            profile(),
            Policy::PortusSync { every: 10 },
            50,
        )
    }

    #[test]
    fn independent_daemons_overlap_contended_daemons_serialize() {
        let m = CostModel::icdcs24();
        let solo = run_fleet(&m, &fleet(1, 1));
        // 4 clients, each with its own daemon: true overlap, the fleet
        // finishes in ~1x the solo makespan.
        let spread = run_fleet(&m, &fleet(4, 4));
        let ratio = spread.makespan.as_secs_f64() / solo.makespan.as_secs_f64();
        assert!(
            (0.99..1.05).contains(&ratio),
            "independent clients must overlap, got {ratio:.3}x"
        );
        // 4 clients hammering one daemon: pulls serialize on its NIC,
        // so the fleet is measurably slower than solo but far below 4x
        // (compute still overlaps).
        let packed = run_fleet(&m, &fleet(1, 4));
        assert!(
            packed.makespan > spread.makespan,
            "contention must cost virtual time"
        );
        let p99_packed = packed
            .metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .unwrap()
            .p99();
        let p99_spread = spread
            .metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .unwrap()
            .p99();
        assert!(
            p99_packed > p99_spread,
            "queueing on one NIC must show up in checkpoint latency"
        );
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 6);
        cfg.seed = 42;
        cfg.start_jitter = SimDuration::from_millis(100);
        cfg.progress_every = Some(SimDuration::from_secs(1));
        let a = run_fleet(&m, &cfg);
        let b = run_fleet(&m, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.progress, b.progress);
        assert_eq!(a.makespan, b.makespan);

        let mut other = cfg.clone();
        other.seed = 43;
        let c = run_fleet(&m, &other);
        assert_ne!(a.events, c.events, "a different seed must shift the jitter");
    }

    #[test]
    fn fleet_clients_match_the_analytic_harness_solo() {
        // One client, one daemon: the event path must agree with the
        // single-timeline analytic harness on totals.
        let m = CostModel::icdcs24();
        let cfg = fleet(1, 1);
        let out = run_fleet(&m, &cfg);
        let spec = &cfg.clients[0];
        let analytic = crate::run_training(
            &m,
            &crate::TrainingConfig {
                job: spec.job,
                profile: spec.profile,
                policy: spec.policy,
            },
            spec.iterations,
        );
        let c = &out.clients[0];
        assert_eq!(c.iterations, analytic.iterations);
        assert_eq!(c.checkpoints, analytic.checkpoints);
        assert_eq!(c.checkpoint_stall, analytic.checkpoint_stall);
        assert_eq!(
            c.finished_at.saturating_since(SimTime::ZERO),
            analytic.elapsed
        );
    }

    #[test]
    fn async_fleet_overlaps_pulls_with_compute() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 4);
        for c in &mut cfg.clients {
            c.policy = Policy::PortusAsync { every: 10 };
        }
        let out = run_fleet(&m, &cfg);
        for c in &out.clients {
            assert_eq!(c.checkpoints, 5);
            let sync_cost = portus_checkpoint_cost(&m, small_job());
            assert!(
                c.checkpoint_stall < sync_cost * c.checkpoints,
                "async stalls must undercut synchronous pulls"
            );
        }
    }

    #[test]
    fn multi_engine_nics_absorb_concurrent_pulls() {
        let m = CostModel::icdcs24();
        let narrow = run_fleet(&m, &fleet(1, 4));
        let mut wide_cfg = fleet(1, 4);
        wide_cfg.nic_engines = 4;
        let wide = run_fleet(&m, &wide_cfg);
        assert!(
            wide.makespan < narrow.makespan,
            "4 NIC engines must beat 1 under 4-way contention"
        );
    }

    #[test]
    #[should_panic(expected = "names daemon")]
    fn out_of_range_daemon_panics() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(1, 1);
        cfg.clients[0].daemon = 3;
        run_fleet(&m, &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one daemon (got 0)")]
    fn uniform_rejects_zero_daemons_up_front() {
        // The old `i % daemons.max(1)` masked this into a config that
        // pinned everyone to daemon 0 and let run_fleet panic later.
        fleet(0, 4);
    }

    #[test]
    #[should_panic(expected = "kill schedule needs a placement config")]
    fn kills_without_placement_panic() {
        let m = CostModel::icdcs24();
        let cfg = fleet(2, 2).with_kill(0, SimDuration::from_secs(1));
        run_fleet(&m, &cfg);
    }

    use crate::placement::PlacementConfig;

    fn replicated(daemons: usize, clients: usize, k: usize) -> FleetConfig {
        fleet(daemons, clients).with_placement(PlacementConfig::mirrored(k))
    }

    #[test]
    fn replication_fans_every_checkpoint_out_to_k_daemons() {
        let m = CostModel::icdcs24();
        let out = run_fleet(&m, &replicated(4, 2, 2));
        for c in &out.clients {
            assert_eq!(c.checkpoints, 5);
            assert_eq!(c.failed_checkpoints, 0);
        }
        let fleet_stats = &out.metrics.fleet;
        assert_eq!(fleet_stats.len(), 4);
        let writes: u64 = fleet_stats.iter().map(|d| d.writes).sum();
        let replicas: u64 = fleet_stats.iter().map(|d| d.replica_writes).sum();
        // 2 clients x 5 checkpoints x 2 copies, half of them replicas.
        assert_eq!(writes, 20);
        assert_eq!(replicas, 10);
        assert_eq!(out.epoch, 0);
        for r in &out.restores {
            assert_eq!(r.version, Some(5));
            assert_eq!(r.failovers, 0);
        }
    }

    #[test]
    fn unreplicated_kill_loses_work_replicated_kill_does_not() {
        let m = CostModel::icdcs24();
        // Kill client-0's primary daemon after its last checkpoint
        // validated (the 50-iteration run checkpoints for the 5th and
        // final time around 18.4 s). With k=1 every copy it ever wrote
        // lived on that daemon; with k=2 the replica survives.
        let primary = crate::placement::replica_set("client-0", &[true, true, true], 1)[0];
        let at = SimDuration::from_secs(19);
        let lossy = run_fleet(&m, &replicated(3, 3, 1).with_kill(primary, at));
        let safe = run_fleet(&m, &replicated(3, 3, 2).with_kill(primary, at));
        assert_eq!(lossy.epoch, 1);
        assert_eq!(safe.epoch, 1);
        let lost = lossy
            .restores
            .iter()
            .find(|r| r.client == "client-0")
            .unwrap();
        assert_eq!(
            lost.version, None,
            "k=1 must lose every checkpoint held only by the dead primary"
        );
        for r in &safe.restores {
            assert_eq!(
                r.version,
                Some(5),
                "k=2 must restore the latest version for {}",
                r.client
            );
            assert!(
                r.served_by.iter().all(|&d| d != primary),
                "dead daemons cannot serve"
            );
        }
        let served = safe
            .restores
            .iter()
            .find(|r| r.client == "client-0")
            .unwrap();
        assert!(
            served.failovers >= 1,
            "restoring past a dead primary must fall through it"
        );
        assert!(safe.metrics.fleet[primary].killed);
    }

    #[test]
    fn kill_schedules_replay_bit_for_bit() {
        let m = CostModel::icdcs24();
        let mut cfg = replicated(4, 6, 2)
            .with_kill(2, SimDuration::from_secs(5))
            .with_kill(0, SimDuration::from_secs(9));
        cfg.seed = 99;
        cfg.start_jitter = SimDuration::from_millis(150);
        let a = run_fleet(&m, &cfg);
        let b = run_fleet(&m, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.restores, b.restores);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.epoch, 2);
    }

    #[test]
    fn fleet_metrics_attribute_checkpoints_to_tenants() {
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 4);
        cfg.clients[0].tenant = "research".to_string();
        cfg.clients[1].tenant = "research".to_string();
        let out = run_fleet(&m, &cfg);
        let research = out.metrics.tenant("research").expect("tagged tenant");
        let untagged = out.metrics.tenant("default").expect("untagged default");
        // 4 clients x 5 checkpoints each, split evenly across tenants.
        assert_eq!(research.admitted_ops, 10);
        assert_eq!(untagged.admitted_ops, 10);
        assert_eq!(research.checkpoint.count, 10);
        assert_eq!(
            research.admitted_bytes,
            10 * small_job().total_bytes,
            "admitted bytes must sum the tagged clients' jobs"
        );
        assert_eq!(research.throttled_ops, 0);
        assert_eq!(research.restore.count, 0);
    }

    #[test]
    fn placement_none_stays_bit_for_bit_with_legacy() {
        // The placement field must be inert when unset: a config that
        // never mentions it replays the pre-placement event stream.
        let m = CostModel::icdcs24();
        let mut cfg = fleet(2, 4);
        cfg.seed = 7;
        let out = run_fleet(&m, &cfg);
        assert!(out.metrics.fleet.is_empty());
        assert!(out.restores.is_empty());
        assert_eq!(out.epoch, 0);
        assert!(out
            .events
            .iter()
            .all(|e| !e.kind.starts_with("ckpt#1->daemons[")));
    }
}
