//! The end-to-end training harness.
//!
//! Replays a training job on the virtual timeline under a checkpoint
//! [`Policy`], producing throughput, stall, and GPU-busy accounting —
//! the machinery behind Figs. 2, 9, 15 and 16.

use portus_dnn::IterationProfile;
use portus_sim::{CostModel, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::ops::{portus_checkpoint_cost, torch_save_cost, JobShape};
use crate::policy::Policy;

/// A training run's static configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// The job's size/shape.
    pub job: JobShape,
    /// Per-iteration phase timing.
    pub profile: IterationProfile,
    /// The checkpoint policy under test.
    pub policy: Policy,
}

/// One contiguous span of the run with a constant GPU state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Span start on the virtual timeline.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Whether the GPU was executing kernels during this span.
    pub busy: bool,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Iterations executed.
    pub iterations: u64,
    /// Total virtual time.
    pub elapsed: SimDuration,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Total time training was stalled on checkpointing.
    pub checkpoint_stall: SimDuration,
    /// Total GPU-busy time.
    pub gpu_busy: SimDuration,
    /// Busy/idle segments for utilization traces (Fig. 16).
    pub segments: Vec<Segment>,
}

impl RunResult {
    /// Training throughput in iterations per second.
    pub fn throughput(&self) -> f64 {
        self.iterations as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean GPU utilization over the whole run.
    pub fn avg_utilization(&self) -> f64 {
        self.gpu_busy.as_secs_f64() / self.elapsed.as_secs_f64()
    }

    /// Share of the run spent stalled on checkpointing (Fig. 2's
    /// "checkpointing overhead").
    pub fn checkpoint_share(&self) -> f64 {
        self.checkpoint_stall.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

/// Simulates `iterations` training iterations under `cfg.policy`.
///
/// Policy semantics (matching Fig. 9):
/// * `TorchSave` — the whole save blocks at the checkpoint iteration;
/// * `CheckFreq` — the snapshot blocks; serialize+write runs in the
///   background; a new snapshot additionally blocks until the previous
///   background persist has drained;
/// * `PortusSync` — the pull blocks;
/// * `PortusAsync` — the pull runs under compute; each parameter-update
///   phase that begins while the pull is still in flight defers by one
///   update-phase length, and a new pull waits for the previous one.
pub fn run_training(m: &CostModel, cfg: &TrainingConfig, iterations: u64) -> RunResult {
    let iter_time = cfg.profile.total();
    let busy_per_iter = cfg.profile.gpu_busy();
    // Busy time is modeled as a contiguous span per iteration; the
    // intrinsic (non-checkpoint) idle tail models data loading gaps.
    let intrinsic_idle = iter_time - busy_per_iter;

    let mut t = SimTime::ZERO;
    let mut segments: Vec<Segment> = Vec::new();
    let mut gpu_busy = SimDuration::ZERO;
    let mut stall_total = SimDuration::ZERO;
    let mut checkpoints = 0u64;

    // CheckFreq background pipeline / Portus in-flight pull.
    let mut background_until = SimTime::ZERO;
    let mut pull_until = SimTime::ZERO;

    let push = |segments: &mut Vec<Segment>, start: SimTime, end: SimTime, busy: bool| {
        if end > start {
            segments.push(Segment { start, end, busy });
        }
    };

    for i in 1..=iterations {
        let trigger = cfg
            .policy
            .interval()
            .is_some_and(|k| k > 0 && i % k as u64 == 0);

        // --- checkpoint actions at the start of the iteration ---
        if trigger {
            checkpoints += 1;
            match cfg.policy {
                Policy::None => {}
                Policy::TorchSave { backend, .. } => {
                    let op = torch_save_cost(m, cfg.job, backend).total();
                    push(&mut segments, t, t + op, false);
                    t += op;
                    stall_total += op;
                }
                Policy::CheckFreq { backend, .. } => {
                    let op = torch_save_cost(m, cfg.job, backend);
                    // Wait out the previous background persist.
                    let wait = background_until.saturating_since(t);
                    push(&mut segments, t, t + wait, false);
                    t += wait;
                    stall_total += wait;
                    // The snapshot itself stalls training.
                    push(&mut segments, t, t + op.snapshot, false);
                    t += op.snapshot;
                    stall_total += op.snapshot;
                    background_until = t + op.persist_side();
                }
                Policy::PortusSync { .. } => {
                    let op = portus_checkpoint_cost(m, cfg.job);
                    push(&mut segments, t, t + op, false);
                    t += op;
                    stall_total += op;
                }
                Policy::PortusAsync { .. } => {
                    // A new pull waits for the previous one to drain.
                    let wait = pull_until.saturating_since(t);
                    push(&mut segments, t, t + wait, false);
                    t += wait;
                    stall_total += wait;
                    pull_until = t + portus_checkpoint_cost(m, cfg.job);
                }
            }
        }

        // --- the iteration itself ---
        let update_start = t + cfg.profile.forward + cfg.profile.backward;
        let mut iter_stall = SimDuration::ZERO;
        if matches!(cfg.policy, Policy::PortusAsync { .. }) && pull_until > update_start {
            // The update phase begins while tensors are still being
            // pulled: it defers by (up to) one update-phase length
            // while the pull cursor clears the conflicting tensors.
            iter_stall = cfg
                .profile
                .update
                .min(pull_until.saturating_since(update_start));
            stall_total += iter_stall;
        }
        push(&mut segments, t, t + busy_per_iter, true);
        gpu_busy += busy_per_iter;
        t += busy_per_iter;
        push(&mut segments, t, t + intrinsic_idle + iter_stall, false);
        t += intrinsic_idle + iter_stall;
    }

    // Drain any outstanding background work so the run is comparable.
    let drain = background_until.max(pull_until).saturating_since(t);
    if !drain.is_zero() {
        push(&mut segments, t, t + drain, false);
        t += drain;
    }

    RunResult {
        iterations,
        elapsed: t.saturating_since(SimTime::ZERO),
        checkpoints,
        checkpoint_stall: stall_total,
        gpu_busy,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Backend;
    use portus_dnn::zoo;

    fn gpt22_cfg(policy: Policy) -> TrainingConfig {
        TrainingConfig {
            job: JobShape {
                total_bytes: 89_600_000_000,
                tensor_count: 600,
                shards: 16,
                nodes: 2,
            },
            profile: IterationProfile::from_total(zoo::gpt_iteration("gpt-22.4b")),
            policy,
        }
    }

    #[test]
    fn no_checkpoint_has_no_stall() {
        let m = CostModel::icdcs24();
        let r = run_training(&m, &gpt22_cfg(Policy::None), 100);
        assert_eq!(r.checkpoints, 0);
        assert_eq!(r.checkpoint_stall, SimDuration::ZERO);
        assert!((r.avg_utilization() - 0.84).abs() < 0.01);
    }

    #[test]
    fn policies_order_as_fig9() {
        let m = CostModel::icdcs24();
        let every = 26;
        let torch = run_training(
            &m,
            &gpt22_cfg(Policy::TorchSave {
                every,
                backend: Backend::BeegfsPmem,
            }),
            260,
        );
        let cf = run_training(
            &m,
            &gpt22_cfg(Policy::CheckFreq {
                every,
                backend: Backend::BeegfsPmem,
            }),
            260,
        );
        let psync = run_training(&m, &gpt22_cfg(Policy::PortusSync { every }), 260);
        let pasync = run_training(&m, &gpt22_cfg(Policy::PortusAsync { every }), 260);
        assert!(
            torch.elapsed > cf.elapsed,
            "CheckFreq must beat synchronous torch.save"
        );
        assert!(
            cf.elapsed > psync.elapsed,
            "Portus-sync must beat CheckFreq"
        );
        assert!(psync.elapsed > pasync.elapsed, "async must beat sync");
    }

    #[test]
    fn fig15_and_fig16_headlines() {
        // GPT-22.4B at a fine-grained interval: Portus-async delivers
        // ~2.6x CheckFreq's throughput (Fig. 15) with ~76% average GPU
        // utilization vs CheckFreq's ~30% (Fig. 16, whose plotted peaks
        // stay below 43%).
        let m = CostModel::icdcs24();
        let every = 26;
        let cf = run_training(
            &m,
            &gpt22_cfg(Policy::CheckFreq {
                every,
                backend: Backend::BeegfsPmem,
            }),
            520,
        );
        let pa = run_training(&m, &gpt22_cfg(Policy::PortusAsync { every }), 520);
        let ratio = pa.throughput() / cf.throughput();
        assert!((2.2..3.0).contains(&ratio), "throughput ratio {ratio:.2}");
        let up = pa.avg_utilization();
        assert!((0.72..0.80).contains(&up), "portus util {up:.3}");
        let uc = cf.avg_utilization();
        assert!((0.24..0.43).contains(&uc), "checkfreq util {uc:.3}");
    }

    #[test]
    fn checkpoint_share_matches_fig2_for_gpt22() {
        // Fig. 2: checkpointing weighs up to 41% of training time for
        // GPT-22.4B at one checkpoint per 100 iterations.
        let m = CostModel::icdcs24();
        let r = run_training(
            &m,
            &gpt22_cfg(Policy::TorchSave {
                every: 100,
                backend: Backend::BeegfsPmem,
            }),
            500,
        );
        let share = r.checkpoint_share();
        assert!((0.36..0.45).contains(&share), "share {share:.3}");
    }

    #[test]
    fn async_pull_overlaps_compute() {
        let m = CostModel::icdcs24();
        let r = run_training(&m, &gpt22_cfg(Policy::PortusAsync { every: 26 }), 260);
        let op = portus_checkpoint_cost(&m, gpt22_cfg(Policy::None).job);
        // Stall per checkpoint must be far below the full pull time.
        let stall_per_ckpt = r.checkpoint_stall.as_secs_f64() / r.checkpoints as f64;
        assert!(
            stall_per_ckpt < op.as_secs_f64() / 3.0,
            "stall {stall_per_ckpt:.2}s vs op {op}"
        );
    }

    #[test]
    fn segments_tile_the_run() {
        let m = CostModel::icdcs24();
        let r = run_training(&m, &gpt22_cfg(Policy::PortusAsync { every: 26 }), 52);
        let mut cursor = SimTime::ZERO;
        for s in &r.segments {
            assert_eq!(s.start, cursor, "segments must tile without gaps");
            cursor = s.end;
        }
        assert_eq!(cursor, SimTime::ZERO + r.elapsed);
        let busy: SimDuration = r
            .segments
            .iter()
            .filter(|s| s.busy)
            .map(|s| s.end - s.start)
            .sum();
        assert_eq!(busy, r.gpu_busy);
    }
}
