//! # portus-bench
//!
//! The experiment harness: everything needed to regenerate each table
//! and figure of the paper's evaluation section. The [`realplane`]
//! module drives the *actual* system (bytes really move between the
//! simulated GPU, fabric, and PMem); the [`analytic`] module prices the
//! workloads that are too large to materialize (the GPT family) with
//! the same calibrated cost model. Each `src/bin/*` binary prints one
//! table/figure and writes `target/experiments/<id>.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod realplane;

use std::fs;
use std::path::PathBuf;

use portus_sim::SimDuration;

/// Writes an experiment's data to `target/experiments/<id>.json` and
/// returns the path.
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_experiment(id: &str, value: &serde_json::Value) -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{id}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write experiment json");
    path
}

/// Writes a non-JSON artifact (e.g. a Chrome trace) to
/// `target/experiments/<id>` and returns the path. The `id` carries
/// its own extension (`"fig13_trace.json"`).
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_artifact(id: &str, contents: &str) -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(id);
    fs::write(&path, contents).expect("write experiment artifact");
    path
}

/// Formats a virtual duration in seconds with 3 decimals.
pub fn secs(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio with 2 decimals and an `x` suffix.
pub fn ratio(a: SimDuration, b: SimDuration) -> String {
    format!("{:.2}x", a.as_secs_f64() / b.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_files_land_in_target() {
        let p = write_experiment("selftest", &serde_json::json!({"ok": true}));
        assert!(p.exists());
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back["ok"], true);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn artifacts_land_in_target() {
        let p = write_artifact("selftest_artifact.txt", "payload");
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "payload");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimDuration::from_millis(1500)), "1.500");
        assert_eq!(
            ratio(SimDuration::from_secs(9), SimDuration::from_secs(3)),
            "3.00x"
        );
    }
}
