//! Analytic experiment runners (the GPT-scale workloads of §V-E and
//! the model-zoo sweeps where the full byte movement is unnecessary).

use portus_cluster::ops::{
    portus_checkpoint_cost, portus_restore_cost, torch_load_gds_cost, torch_save_cost,
};
use portus_cluster::{
    mean_utilization, run_training, utilization_trace, Backend, JobShape, Policy, RunResult,
    TrainingConfig, UtilSample,
};
use portus_dnn::{zoo, IterationProfile, ModelSpec};
use portus_sim::{CostModel, SimDuration};
use serde::Serialize;

/// One row of the analytic Fig. 11/12 sweeps.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// Checkpoint payload bytes.
    pub bytes: u64,
    /// Portus time (s).
    pub portus: f64,
    /// BeeGFS-PMem time (s).
    pub beegfs: f64,
    /// ext4-NVMe time (s).
    pub ext4: f64,
}

impl SpeedupRow {
    /// Portus speedup over BeeGFS-PMem.
    pub fn speedup_beegfs(&self) -> f64 {
        self.beegfs / self.portus
    }

    /// Portus speedup over ext4-NVMe.
    pub fn speedup_ext4(&self) -> f64 {
        self.ext4 / self.portus
    }
}

fn table2_job(spec: &ModelSpec) -> JobShape {
    JobShape::single(spec.total_bytes(), spec.layer_count() as u64)
}

/// Fig. 11 (analytic): checkpoint time of the seven Table II models on
/// the three systems.
pub fn fig11_rows(m: &CostModel) -> Vec<SpeedupRow> {
    zoo::table2_cards()
        .into_iter()
        .map(|card| {
            let job = table2_job(&card.spec);
            SpeedupRow {
                model: card.spec.name.clone(),
                bytes: card.spec.total_bytes(),
                portus: portus_checkpoint_cost(m, job).as_secs_f64(),
                beegfs: torch_save_cost(m, job, Backend::BeegfsPmem)
                    .total()
                    .as_secs_f64(),
                ext4: torch_save_cost(m, job, Backend::Ext4Nvme)
                    .total()
                    .as_secs_f64(),
            }
        })
        .collect()
}

/// Fig. 12 (analytic): restore time of the seven Table II models.
pub fn fig12_rows(m: &CostModel) -> Vec<SpeedupRow> {
    zoo::table2_cards()
        .into_iter()
        .map(|card| {
            let job = table2_job(&card.spec);
            SpeedupRow {
                model: card.spec.name.clone(),
                bytes: card.spec.total_bytes(),
                portus: portus_restore_cost(m, job).as_secs_f64(),
                beegfs: torch_load_gds_cost(m, job, Backend::BeegfsPmem)
                    .total()
                    .as_secs_f64(),
                ext4: torch_load_gds_cost(m, job, Backend::Ext4Nvme)
                    .total()
                    .as_secs_f64(),
            }
        })
        .collect()
}

/// Geometric-free arithmetic mean of a speedup column.
pub fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// The Megatron grid of §V-E: 16 A40s across two nodes.
pub fn gpt_job(spec: &ModelSpec) -> JobShape {
    JobShape {
        total_bytes: spec.total_bytes(),
        tensor_count: spec.layer_count() as u64,
        shards: 16,
        nodes: 2,
    }
}

/// One point of Fig. 14: checkpoint-operation time at a GPT scale.
#[derive(Debug, Clone, Serialize)]
pub struct GptScalePoint {
    /// GPT config name.
    pub model: String,
    /// Parameters (billions).
    pub params_b: f64,
    /// Checkpoint size (GB).
    pub size_gb: f64,
    /// `torch.save` to BeeGFS (s).
    pub torch_save: f64,
    /// Portus (s).
    pub portus: f64,
}

/// Fig. 14: the GPT family sweep.
pub fn fig14_points(m: &CostModel) -> Vec<GptScalePoint> {
    zoo::gpt_family()
        .into_iter()
        .map(|spec| {
            let job = gpt_job(&spec);
            GptScalePoint {
                model: spec.name.clone(),
                params_b: spec.param_count() as f64 / 1e9,
                size_gb: spec.total_bytes() as f64 / 1e9,
                torch_save: torch_save_cost(m, job, Backend::BeegfsPmem)
                    .total()
                    .as_secs_f64(),
                portus: portus_checkpoint_cost(m, job).as_secs_f64(),
            }
        })
        .collect()
}

/// The fine-grained checkpoint interval used by the Fig. 15/16 runs
/// (calibrated; a failure loses at most ~45 s of work on GPT-22.4B).
pub const FIG15_INTERVAL: u32 = 26;

/// The GPT-22.4B training config under a given policy.
pub fn gpt22_config(policy: Policy) -> TrainingConfig {
    let spec = zoo::gpt_22b();
    TrainingConfig {
        job: gpt_job(&spec),
        profile: IterationProfile::from_total(zoo::gpt_iteration(&spec.name)),
        policy,
    }
}

/// Fig. 15: end-to-end GPT-22.4B training under CheckFreq vs Portus.
pub fn fig15_runs(m: &CostModel, iterations: u64) -> Vec<(String, RunResult)> {
    [
        Policy::CheckFreq {
            every: FIG15_INTERVAL,
            backend: Backend::BeegfsPmem,
        },
        Policy::PortusSync {
            every: FIG15_INTERVAL,
        },
        Policy::PortusAsync {
            every: FIG15_INTERVAL,
        },
    ]
    .into_iter()
    .map(|p| {
        (
            p.label().to_string(),
            run_training(m, &gpt22_config(p), iterations),
        )
    })
    .collect()
}

/// Fig. 16: the 500-second GPU-utilization traces (10 s windows).
pub fn fig16_traces(m: &CostModel) -> Vec<(String, Vec<UtilSample>, f64)> {
    let horizon = SimDuration::from_secs(500);
    let window = SimDuration::from_secs(10);
    [
        Policy::CheckFreq {
            every: FIG15_INTERVAL,
            backend: Backend::BeegfsPmem,
        },
        Policy::PortusAsync {
            every: FIG15_INTERVAL,
        },
    ]
    .into_iter()
    .map(|p| {
        let run = run_training(m, &gpt22_config(p), 2000);
        let trace = utilization_trace(&run.segments, window, horizon);
        let avg = mean_utilization(&trace);
        (p.label().to_string(), trace, avg)
    })
    .collect()
}

/// One row of Fig. 2: checkpoint overhead share of training time.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Model name.
    pub model: String,
    /// Checkpoint interval (iterations), per CheckFreq's policy.
    pub every: u32,
    /// Share of training time spent checkpointing, 0–1.
    pub share: f64,
}

/// Fig. 2: checkpoint overhead for ViT, GPT-10B and GPT-22.4B with the
/// existing (torch.save-to-BeeGFS) stack at CheckFreq's frequencies.
pub fn fig2_rows(m: &CostModel) -> Vec<OverheadRow> {
    let vit = zoo::vit_l_32_card();
    let cases: Vec<(String, JobShape, IterationProfile, u32)> = vec![
        (
            vit.spec.name.clone(),
            table2_job(&vit.spec),
            IterationProfile::from_total(vit.iteration),
            83,
        ),
        (
            "gpt-10b".into(),
            gpt_job(&zoo::gpt_10b()),
            IterationProfile::from_total(zoo::gpt_iteration("gpt-10b")),
            100,
        ),
        (
            "gpt-22.4b".into(),
            gpt_job(&zoo::gpt_22b()),
            IterationProfile::from_total(zoo::gpt_iteration("gpt-22.4b")),
            100,
        ),
    ];
    cases
        .into_iter()
        .map(|(model, job, profile, every)| {
            let cfg = TrainingConfig {
                job,
                profile,
                policy: Policy::TorchSave {
                    every,
                    backend: Backend::BeegfsPmem,
                },
            };
            let run = run_training(m, &cfg, 5 * every as u64);
            OverheadRow {
                model,
                every,
                share: run.checkpoint_share(),
            }
        })
        .collect()
}

/// Table I (analytic): the four-way split of the baseline BERT
/// checkpoint on BeeGFS-PMem.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Shares {
    /// GPU→DRAM share (paper: 15.5 %).
    pub gpu_to_dram: f64,
    /// Serialization share (paper: 41.7 %).
    pub serialization: f64,
    /// RDMA transmission share (paper: 30.0 %).
    pub transmission: f64,
    /// Server DAX-write share (paper: 12.8 %).
    pub dax_write: f64,
}

/// Computes Table I's shares from a measured breakdown.
pub fn table1_shares(
    snapshot: SimDuration,
    serialize: SimDuration,
    transmit: SimDuration,
    media: SimDuration,
) -> Table1Shares {
    let total = (snapshot + serialize + transmit + media).as_secs_f64();
    Table1Shares {
        gpu_to_dram: snapshot.as_secs_f64() / total,
        serialization: serialize.as_secs_f64() / total,
        transmission: transmit.as_secs_f64() / total,
        dax_write: media.as_secs_f64() / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_analytic_shape_matches_the_paper() {
        let m = CostModel::icdcs24();
        let rows = fig11_rows(&m);
        assert_eq!(rows.len(), 7);
        let avg_beegfs = mean(rows.iter().map(SpeedupRow::speedup_beegfs));
        // Paper: 8.49x average over BeeGFS-PMem, max 9.23x at ResNet50.
        assert!((7.6..9.2).contains(&avg_beegfs), "avg {avg_beegfs:.2}");
        let max = rows
            .iter()
            .max_by(|a, b| a.speedup_beegfs().total_cmp(&b.speedup_beegfs()))
            .unwrap();
        assert_eq!(max.model, "resnet50", "max speedup must be ResNet50");
        assert!(
            (8.5..9.9).contains(&max.speedup_beegfs()),
            "resnet50 {:.2}",
            max.speedup_beegfs()
        );
    }

    #[test]
    fn fig12_analytic_shape_matches_the_paper() {
        let m = CostModel::icdcs24();
        let rows = fig12_rows(&m);
        let avg_beegfs = mean(rows.iter().map(SpeedupRow::speedup_beegfs));
        let avg_ext4 = mean(rows.iter().map(SpeedupRow::speedup_ext4));
        // Paper: 5.15x / 3.83x averages; restore gains < checkpoint gains.
        assert!(avg_beegfs > avg_ext4);
        assert!((4.0..7.5).contains(&avg_beegfs), "beegfs {avg_beegfs:.2}");
        assert!((3.0..6.0).contains(&avg_ext4), "ext4 {avg_ext4:.2}");
        let ckpt_avg = mean(fig11_rows(&m).iter().map(SpeedupRow::speedup_beegfs));
        assert!(
            avg_beegfs < ckpt_avg,
            "restore gains must trail checkpoint gains"
        );
    }

    #[test]
    fn fig2_shares_span_the_published_band() {
        let m = CostModel::icdcs24();
        let rows = fig2_rows(&m);
        // Paper: "at least 24.9%" (ViT) ... "up to 41%" (GPT-22.4B).
        assert!(
            (0.22..0.30).contains(&rows[0].share),
            "vit {:.3}",
            rows[0].share
        );
        assert!(
            (0.36..0.45).contains(&rows[2].share),
            "gpt22 {:.3}",
            rows[2].share
        );
        assert!(rows[0].share < rows[1].share && rows[1].share < rows[2].share);
    }

    #[test]
    fn fig14_scales_with_model_size() {
        let m = CostModel::icdcs24();
        let pts = fig14_points(&m);
        assert_eq!(pts.len(), 4);
        assert!(pts.windows(2).all(|w| w[0].torch_save < w[1].torch_save));
        assert!(pts[3].torch_save > 120.0);
        assert!((13.0..17.0).contains(&pts[3].portus));
    }

    #[test]
    fn fig16_average_utilizations() {
        let m = CostModel::icdcs24();
        let traces = fig16_traces(&m);
        let cf = traces.iter().find(|(l, _, _)| l == "CheckFreq").unwrap();
        let pa = traces.iter().find(|(l, _, _)| l == "Portus-async").unwrap();
        assert!((0.72..0.80).contains(&pa.2), "portus util {:.3}", pa.2);
        assert!(cf.2 < 0.43, "checkfreq util {:.3}", cf.2);
    }
}
