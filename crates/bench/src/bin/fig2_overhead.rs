//! Fig. 2: checkpointing overhead as a share of training time with the
//! existing stack (`torch.save` → BeeGFS-PMem) at CheckFreq's
//! frequencies. Paper: at least 24.9 % (ViT @ 83 iters), up to 41 %
//! (GPT-22.4B @ 100 iters).

use portus_bench::analytic;
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    let rows = analytic::fig2_rows(&m);
    println!("Fig. 2 — checkpoint overhead share of training time");
    println!("{:<12} {:>8} {:>10}", "Model", "every", "share");
    for r in &rows {
        println!("{:<12} {:>8} {:>9.1}%", r.model, r.every, r.share * 100.0);
    }
    println!("\npaper: ViT 24.9%, up to 41% for GPT-22.4B");
    let path = portus_bench::write_experiment(
        "fig2_overhead",
        &serde_json::to_value(&rows).expect("serialize"),
    );
    println!("wrote {}", path.display());
}
