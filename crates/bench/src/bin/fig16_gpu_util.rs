//! Fig. 16: 500-second GPU-utilization traces of GPT-22.4B training
//! under Portus vs CheckFreq (10-second windows).
//!
//! Paper: Portus averages 76.4 %; CheckFreq stays below 43 %.

use portus_bench::analytic;
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    let traces = analytic::fig16_traces(&m);
    println!("Fig. 16 — GPU utilization over 500 s (10 s windows)");
    print!("{:>6}", "t(s)");
    for (label, _, _) in &traces {
        print!(" {label:>14}");
    }
    println!();
    let len = traces[0].1.len();
    for i in 0..len {
        print!("{:>6.0}", traces[0].1[i].at_secs);
        for (_, trace, _) in &traces {
            print!(" {:>13.1}%", trace[i].utilization * 100.0);
        }
        println!();
    }
    for (label, _, avg) in &traces {
        println!("average {label}: {:.1}%", avg * 100.0);
    }
    println!("(paper: Portus 76.4%, CheckFreq < 43%)");

    let json: Vec<_> = traces
        .iter()
        .map(|(label, trace, avg)| {
            serde_json::json!({
                "policy": label,
                "average": avg,
                "samples": trace.iter().map(|s| serde_json::json!({
                    "t": s.at_secs, "utilization": s.utilization
                })).collect::<Vec<_>>(),
            })
        })
        .collect();
    let path = portus_bench::write_experiment("fig16_gpu_util", &serde_json::json!(json));
    println!("wrote {}", path.display());
}
