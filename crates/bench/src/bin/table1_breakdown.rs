//! Table I: DNN checkpointing overhead breakdown.
//!
//! Runs the real data plane: BERT-Large is materialized on the
//! simulated GPU and saved through the `torch.save` → BeeGFS-PMem
//! pipeline; the four phases' virtual times are reported as shares.
//! Paper: GPU→MM 15.5 %, serialization 41.7 %, transmission 30.0 %,
//! server DAX write 12.8 %.

use portus_bench::{analytic, realplane};
use portus_dnn::zoo;

fn main() {
    eprintln!("running BERT torch.save on BeeGFS-PMem (real data plane)...");
    let spec = zoo::bert_large();
    let bd = realplane::bert_beegfs_breakdown(&spec);
    let shares = analytic::table1_shares(bd.gpu_copy, bd.serialize, bd.transmit, bd.persist);

    println!("Table I — DNN checkpointing overhead (BERT-Large → BeeGFS-PMem)");
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "Operation", "Time (s)", "Share", "Paper"
    );
    let rows = [
        ("GPU to Main Memory", bd.gpu_copy, shares.gpu_to_dram, 15.5),
        ("Serialization", bd.serialize, shares.serialization, 41.7),
        (
            "Transmission (RDMA)",
            bd.transmit,
            shares.transmission,
            30.0,
        ),
        ("Server DAX write", bd.persist, shares.dax_write, 12.8),
    ];
    for (name, t, share, paper) in rows {
        println!(
            "{:<24} {:>10.3} {:>9.1}% {:>7.1}%",
            name,
            t.as_secs_f64(),
            share * 100.0,
            paper
        );
    }
    println!(
        "{:<24} {:>10.3}   (+{:.3}s metadata)",
        "total (4 phases)",
        (bd.gpu_copy + bd.serialize + bd.transmit + bd.persist).as_secs_f64(),
        bd.metadata.as_secs_f64()
    );

    let path = portus_bench::write_experiment(
        "table1_breakdown",
        &serde_json::json!({
            "gpu_to_dram": { "seconds": bd.gpu_copy.as_secs_f64(), "share": shares.gpu_to_dram, "paper_share": 0.155 },
            "serialization": { "seconds": bd.serialize.as_secs_f64(), "share": shares.serialization, "paper_share": 0.417 },
            "transmission": { "seconds": bd.transmit.as_secs_f64(), "share": shares.transmission, "paper_share": 0.300 },
            "dax_write": { "seconds": bd.persist.as_secs_f64(), "share": shares.dax_write, "paper_share": 0.128 },
            "metadata_seconds": bd.metadata.as_secs_f64(),
        }),
    );
    println!("\nwrote {}", path.display());
}
