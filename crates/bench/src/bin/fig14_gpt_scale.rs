//! Fig. 14: checkpoint-operation time of the GPT family (1.5 B → 22.4 B
//! parameters on 16 A40s) — `torch.save` to BeeGFS vs Portus.
//!
//! Paper: the 22.4 B / 89.6 GB checkpoint takes >120 s with
//! `torch.save` and ~15 s with Portus; 8.18x average speedup.

use portus_bench::analytic;
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    let pts = analytic::fig14_points(&m);
    println!("Fig. 14 — GPT checkpoint operation time (16 GPUs, 2 nodes)");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>9} {:>9}",
        "Model", "Params", "Size", "torch.save", "Portus", "Speedup"
    );
    let mut sum = 0.0;
    for p in &pts {
        println!(
            "{:<12} {:>8.1}B {:>7.1}GB {:>11.1}s {:>8.1}s {:>8.2}x",
            p.model,
            p.params_b,
            p.size_gb,
            p.torch_save,
            p.portus,
            p.torch_save / p.portus
        );
        sum += p.torch_save / p.portus;
    }
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>9} {:>8.2}x   (paper avg: 8.18x)",
        "average",
        "",
        "",
        "",
        "",
        sum / pts.len() as f64
    );
    let path = portus_bench::write_experiment(
        "fig14_gpt_scale",
        &serde_json::to_value(&pts).expect("serialize"),
    );
    println!("wrote {}", path.display());
}
