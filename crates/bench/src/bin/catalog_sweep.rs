//! Catalog sweep: lookup latency and DRAM footprint of the learned,
//! micro-paged PMem model catalog as the model population grows from
//! 10^2 to 10^6.
//!
//! For each population size the harness formats a namespace, mounts
//! the catalog, and bulk-loads synthetic models (names with a shared
//! tenant prefix so the derived-key path is exercised, offsets
//! synthetic — the ModelTable's linear create scan would dominate and
//! is not what this sweep measures). It then reports wall-clock
//! latencies (the simulated device does real decode work per page
//! touched, so relative costs track pages probed):
//!
//! - **cold p99**: lookups with the DRAM page cache disabled — every
//!   probe decodes its micro-page from PMem;
//! - **warm p99**: lookups over a working set that fits the clamped
//!   CLOCK cache, measured after one warming pass;
//! - **linear p99**: a page-by-page scan baseline (what a catalog
//!   without the learned root would pay), sampled sparsely because each
//!   probe walks half the page list;
//! - **DRAM bytes**: the decoded-page cache footprint, which must stay
//!   under `cache_pages` slots and under the decoded-size bound
//!   `cache_pages * (4 * page_bytes + 64)` at every population size
//!   (a decoded entry costs at most 4x its packed media bytes).
//!
//! At the top of the axis the learned path must beat the linear scan
//! by at least 10x on p99 — the acceptance bar for the catalog being
//! "O(1)-ish" rather than O(pages).
//!
//! `--smoke` shrinks the axis for CI.

use std::sync::Arc;
use std::time::Instant;

use portus::{CatalogConfig, Index};
use portus_pmem::{micropage, PmemDevice, PmemMode};
use portus_sim::SimContext;

/// Deterministic LCG so runs are reproducible without a rand dep.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn model_name(i: u64) -> String {
    format!("tenant-{:03}/model-{:07}", i % 499, i)
}

/// Formats a namespace sized for `n` models, mounts the catalog with
/// `cache_pages`, and bulk-loads the synthetic population.
fn build_catalog(n: u64, cache_pages: usize) -> portus::PortusResult<Index> {
    // ~35 B/entry packed into 4 KiB pages; leave generous headroom for
    // the allocator table, the root, and the directory.
    let capacity = (n * 128).next_power_of_two().max(1 << 22);
    let slots = ((n / 64).next_power_of_two() as u32).max(1024);
    let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, capacity);
    let index = Index::format(dev, 16, slots)?;
    let cfg = CatalogConfig {
        cache_pages,
        ..CatalogConfig::default()
    };
    index.enable_catalog(&cfg)?;
    let entries: Vec<(String, u64)> = (0..n).map(|i| (model_name(i), 4096 + i * 64)).collect();
    let cat = index.catalog().expect("catalog just enabled");
    cat.bulk_replace(index.allocator(), &entries)?;
    Ok(index)
}

/// Wall-clock nanoseconds one learned lookup takes.
fn timed_lookup(index: &Index, name: &str) -> u64 {
    let cat = index.catalog().expect("catalog mounted");
    let t0 = Instant::now();
    let got = cat.lookup(name).expect("lookup");
    let dt = t0.elapsed();
    assert!(got.is_some(), "sampled name {name} must resolve");
    dt.as_nanos() as u64
}

/// Wall-clock nanoseconds a linear page-by-page scan takes: the
/// baseline a catalog without the learned root would pay.
fn timed_linear_scan(index: &Index, pages: &[u64], name: &str) -> u64 {
    let dev: &Arc<PmemDevice> = index.allocator().device();
    let t0 = Instant::now();
    let mut found = None;
    for &p in pages {
        if let Some(off) = micropage::search_page(dev, p, name).expect("page probe") {
            found = Some(off);
            break;
        }
    }
    let dt = t0.elapsed();
    assert!(found.is_some(), "linear scan must find {name}");
    dt.as_nanos() as u64
}

fn p99(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[((samples.len() * 99) / 100).min(samples.len() - 1)]
}

fn sweep_point(n: u64) -> serde_json::Value {
    let mut rng = Lcg(0x9e3779b97f4a7c15 ^ n);
    let samples = 512.min(n as usize);

    // Cold: cache disabled, uniform random names.
    let cold_index = build_catalog(n, 0).expect("cold build");
    let mut cold: Vec<u64> = (0..samples)
        .map(|_| timed_lookup(&cold_index, &model_name(rng.next() % n)))
        .collect();

    // Linear baseline on the same (cache-free) catalog: sparse sample,
    // each probe walks the page list from the front.
    let cat = cold_index.catalog().expect("catalog mounted");
    let pages = cat.page_offsets().expect("page offsets");
    let linear_samples = 32.min(n as usize);
    let mut linear: Vec<u64> = (0..linear_samples)
        .map(|_| timed_linear_scan(&cold_index, &pages, &model_name(rng.next() % n)))
        .collect();

    // Warm: clamped cache, working set that fits it — one warming pass,
    // then the measured pass. Names sort tenant-first, so "one tenant's
    // models" is a contiguous key range spanning a handful of pages;
    // a contiguous *index* range would scatter across every tenant.
    let warm_index = build_catalog(n, CatalogConfig::default().cache_pages).expect("warm build");
    let tenant = rng.next() % 499;
    let group = (n / 499) + u64::from(tenant < n % 499);
    let working: Vec<String> = (0..samples)
        .map(|_| {
            if group == 0 {
                model_name(rng.next() % n)
            } else {
                model_name(tenant + 499 * (rng.next() % group))
            }
        })
        .collect();
    for name in &working {
        timed_lookup(&warm_index, name);
    }
    let mut warm: Vec<u64> = working
        .iter()
        .map(|name| timed_lookup(&warm_index, name))
        .collect();

    let stats = warm_index.catalog().expect("catalog mounted").stats();
    let cfg = CatalogConfig::default();
    assert!(
        stats.cached_pages <= cfg.cache_pages as u64,
        "CLOCK cache holds {} pages, clamp is {}",
        stats.cached_pages,
        cfg.cache_pages
    );
    let clamp = cfg.cache_pages as u64 * (4 * cfg.page_bytes + 64);
    assert!(
        stats.cache_bytes <= clamp,
        "DRAM cache {} bytes exceeds decoded-size bound {}",
        stats.cache_bytes,
        clamp
    );

    let (cold_p99, warm_p99, linear_p99) = (p99(&mut cold), p99(&mut warm), p99(&mut linear));
    println!(
        "{:>9} {:>7} {:>10} {:>10} {:>12} {:>8.1}x {:>11}",
        n,
        stats.pages,
        cold_p99,
        warm_p99,
        linear_p99,
        linear_p99 as f64 / cold_p99.max(1) as f64,
        stats.cache_bytes
    );
    serde_json::json!({
        "models": n,
        "pages": stats.pages,
        "entries": stats.entries,
        "segments": stats.model_segments,
        "fallbacks": stats.model_fallbacks,
        "cold_p99_ns": cold_p99,
        "warm_p99_ns": warm_p99,
        "linear_p99_ns": linear_p99,
        "speedup_vs_linear": linear_p99 as f64 / cold_p99.max(1) as f64,
        "cache_bytes": stats.cache_bytes,
        "cache_clamp_bytes": clamp,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let axis: &[u64] = if smoke {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    println!("Catalog sweep — learned micro-paged index, lookup p99 vs model count");
    println!(
        "{:>9} {:>7} {:>10} {:>10} {:>12} {:>9} {:>11}",
        "models", "pages", "cold(ns)", "warm(ns)", "linear(ns)", "vs lin", "cache(B)"
    );
    let rows: Vec<serde_json::Value> = axis.iter().map(|&n| sweep_point(n)).collect();

    let top = rows.last().expect("non-empty axis");
    let speedup = top["speedup_vs_linear"].as_f64().expect("speedup");
    let warm = top["warm_p99_ns"].as_u64().expect("warm");
    let cold = top["cold_p99_ns"].as_u64().expect("cold");
    println!(
        "\ntop of axis ({} models): cold p99 {} ns, warm p99 {} ns, {:.1}x over linear scan",
        top["models"].as_u64().expect("models"),
        cold,
        warm,
        speedup
    );
    assert!(
        speedup >= 10.0,
        "learned lookup must beat the linear page scan by >= 10x at the top of the axis, got {speedup:.1}x"
    );
    let path = portus_bench::write_experiment("catalog_sweep", &serde_json::json!(rows));
    println!("wrote {}", path.display());
}
