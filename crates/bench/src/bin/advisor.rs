//! Checkpoint-interval advisor report: Young/Daly optima per policy
//! for the paper's workloads, quantifying how much finer Portus lets
//! checkpointing get (the claim in the paper's title).

use portus_cluster::{advise, Backend, JobShape, Policy, TrainingConfig};
use portus_dnn::{zoo, IterationProfile};
use portus_sim::{CostModel, SimDuration};

fn main() {
    let m = CostModel::icdcs24();
    let workloads: Vec<(&str, JobShape, IterationProfile)> = vec![
        (
            "bert_large (1 GPU)",
            JobShape::single(
                zoo::bert_large().total_bytes(),
                zoo::bert_large().layer_count() as u64,
            ),
            IterationProfile::from_total(zoo::bert_large_card().iteration),
        ),
        (
            "gpt-22.4b (16 GPU)",
            JobShape {
                total_bytes: zoo::gpt_22b().total_bytes(),
                tensor_count: zoo::gpt_22b().layer_count() as u64,
                shards: 16,
                nodes: 2,
            },
            IterationProfile::from_total(zoo::gpt_iteration("gpt-22.4b")),
        ),
    ];
    let mtbfs = [
        ("10 min", SimDuration::from_secs(600)),
        ("1 hour", SimDuration::from_secs(3600)),
        ("1 day", SimDuration::from_secs(86_400)),
    ];

    println!("Checkpoint-interval advisor (Young/Daly optimum per policy)");
    let mut rows = Vec::new();
    for (label, job, profile) in &workloads {
        println!("\n== {label} ==");
        println!(
            "{:<14} {:>9} | {:>16} {:>16} {:>16}",
            "Policy", "C (s)", "MTBF 10min", "MTBF 1h", "MTBF 1day"
        );
        for policy in [
            Policy::TorchSave {
                every: 1,
                backend: Backend::BeegfsPmem,
            },
            Policy::CheckFreq {
                every: 1,
                backend: Backend::BeegfsPmem,
            },
            Policy::PortusSync { every: 1 },
            Policy::PortusAsync { every: 1 },
        ] {
            let cfg = TrainingConfig {
                job: *job,
                profile: *profile,
                policy,
            };
            let advices: Vec<_> = mtbfs
                .iter()
                .map(|(_, m_t)| advise(&m, &cfg, *m_t))
                .collect();
            println!(
                "{:<14} {:>9.2} | {:>9} it {:>4.1}% {:>9} it {:>4.1}% {:>9} it {:>4.1}%",
                policy.label(),
                advices[0].overhead_per_checkpoint.as_secs_f64(),
                advices[0].interval_iterations,
                advices[0].expected_overhead_fraction * 100.0,
                advices[1].interval_iterations,
                advices[1].expected_overhead_fraction * 100.0,
                advices[2].interval_iterations,
                advices[2].expected_overhead_fraction * 100.0,
            );
            for ((mtbf_label, _), a) in mtbfs.iter().zip(&advices) {
                rows.push(serde_json::json!({
                    "workload": label,
                    "policy": policy.label(),
                    "mtbf": mtbf_label,
                    "interval_iterations": a.interval_iterations,
                    "expected_overhead_fraction": a.expected_overhead_fraction,
                }));
            }
        }
    }
    println!("\nlower C => finer optimal intervals and less work at risk per failure.");
    let path = portus_bench::write_experiment("advisor", &serde_json::json!(rows));
    println!("wrote {}", path.display());
}
