//! Multi-tenant QoS sweep (DESIGN.md §17): token-bucket admission,
//! weighted-fair lanes, and priority restore under three adversarial
//! scenarios.
//!
//! 1. **Antagonistic tenants** — a polite tenant shares a daemon with
//!    an antagonist whose demand far exceeds its byte bucket. The
//!    sweep shows the antagonist clamped to its configured rate while
//!    the polite tenant's checkpoints stay within noise of its solo
//!    run; an uncapped control shows what the bucket is buying.
//! 2. **Checkpoint storm** — one worker, a dozen queued checkpoints,
//!    and a restore arriving mid-storm. With priority restore lanes
//!    the restore jumps the normal-class queue; with them off it
//!    drains behind the storm. The p99 gap is the headline number.
//! 3. **Restore stampede after a fleet failure** — reuses the PR 7
//!    kill-schedule machinery: a daemon dies mid-checkpoint, the
//!    fleet report says who must restore (and through how many dead
//!    replicas they fall), and the stampede is replayed against a
//!    real daemon with priority lanes on and off.
//!
//! `--smoke` shrinks every round count for CI.

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError, TenantQos};
use portus_cluster::{
    daemon_loss_report, replica_set, run_fleet, FleetConfig, JobShape, PlacementConfig, Policy,
};
use portus_dnn::{test_spec, IterationProfile, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{CostModel, SimContext, SimDuration, SimTime, Stage, TraceOp};

const MIB: u64 = 1 << 20;

/// Outcome of one polite-vs-antagonist run.
struct PairOutcome {
    /// Sum of the polite tenant's own checkpoint latencies.
    polite_time: SimDuration,
    /// Whole-run virtual elapsed (polite + admitted antagonist ops).
    elapsed: SimDuration,
    antagonist_ok: u64,
    antagonist_throttled: u64,
    antagonist_bytes: u64,
}

/// Runs `rounds` of polite checkpoints, each followed by one
/// antagonist attempt (when `antagonist` is set). `cap` is the
/// antagonist's byte bucket (`None` = uncapped).
fn antagonist_run(rounds: u64, antagonist: bool, cap: Option<u64>) -> PairOutcome {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let polite_nic = fabric.add_nic(NodeId(0));
    let antag_nic = fabric.add_nic(NodeId(2));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 1 << 30);
    let mut cfg = DaemonConfig::default();
    if let Some(bps) = cap {
        // A burst of one antagonist op keeps the debt overshoot small,
        // so the measured rate converges to the cap within the sweep's
        // horizon instead of after many bucket-drain cycles.
        cfg.qos.tenants.insert(
            "antagonist".to_string(),
            TenantQos {
                bytes_per_sec: bps,
                burst_bytes: 8 * MIB,
                ..TenantQos::default()
            },
        );
    }
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    let polite_spec = test_spec("polite", 16, 4 * MIB);
    let polite_model = ModelInstance::materialize(&polite_spec, &gpu, 1, Materialization::Owned)
        .expect("materialize polite");
    let polite = PortusClient::connect_as(&daemon, polite_nic, "polite");
    polite
        .register_model(&polite_model)
        .expect("register polite");

    let antag_client = antagonist.then(|| {
        let spec = test_spec("antagonist", 8, MIB);
        let model = ModelInstance::materialize(&spec, &gpu, 2, Materialization::Owned)
            .expect("materialize antagonist");
        let c = PortusClient::connect_as(&daemon, antag_nic, "antagonist");
        c.register_model(&model).expect("register antagonist");
        c
    });

    let t0 = ctx.clock.now();
    let mut polite_time = SimDuration::ZERO;
    let (mut ok, mut throttled) = (0u64, 0u64);
    for _ in 0..rounds {
        let s = ctx.clock.now();
        polite.checkpoint("polite").expect("polite checkpoint");
        polite_time += ctx.clock.now().saturating_since(s);
        if let Some(antag) = &antag_client {
            match antag.checkpoint("antagonist") {
                Ok(_) => ok += 1,
                Err(PortusError::Throttled { .. }) => throttled += 1,
                Err(e) => panic!("unexpected antagonist error: {e}"),
            }
        }
    }
    let elapsed = ctx.clock.now().saturating_since(t0);
    let antagonist_bytes = polite
        .stats()
        .expect("stats")
        .tenant("antagonist")
        .map_or(0, |t| t.admitted_bytes);
    drop(polite);
    drop(antag_client);
    daemon.shutdown();
    PairOutcome {
        polite_time,
        elapsed,
        antagonist_ok: ok,
        antagonist_throttled: throttled,
        antagonist_bytes,
    }
}

/// Scenario 1: token-bucket admission pins the antagonist to its
/// configured rate without touching the polite tenant.
fn antagonistic_tenants(smoke: bool) -> serde_json::Value {
    // Long horizon: the debt-based bucket admits up to one burst plus
    // one oversized op beyond its budget, so the measured rate only
    // converges to the configured cap over many rounds.
    let rounds = if smoke { 60 } else { 150 };
    let cap = 64 * MIB; // antagonist budget: 64 MiB/s of checkpoints

    let solo = antagonist_run(rounds, false, None);
    let capped = antagonist_run(rounds, true, Some(cap));
    let uncapped = antagonist_run(rounds, true, None);

    let rate = |o: &PairOutcome| o.antagonist_bytes as f64 / o.elapsed.as_secs_f64() / MIB as f64;
    let slowdown = |o: &PairOutcome| o.polite_time.as_secs_f64() / solo.polite_time.as_secs_f64();

    println!("Antagonistic tenants — polite (unlimited) vs antagonist (64 MiB/s bucket)");
    println!(
        "{:<10} {:>12} {:>13} {:>10} {:>10} {:>14}",
        "setup", "polite s", "polite slow", "antag ok", "throttled", "antag MiB/s"
    );
    let mut rows = Vec::new();
    for (label, o) in [
        ("solo", &solo),
        ("capped", &capped),
        ("uncapped", &uncapped),
    ] {
        println!(
            "{:<10} {:>12.3} {:>12.3}x {:>10} {:>10} {:>14.1}",
            label,
            o.polite_time.as_secs_f64(),
            slowdown(o),
            o.antagonist_ok,
            o.antagonist_throttled,
            rate(o),
        );
        rows.push(serde_json::json!({
            "setup": label,
            "polite_checkpoint_seconds": o.polite_time.as_secs_f64(),
            "polite_slowdown": slowdown(o),
            "antagonist_ok": o.antagonist_ok,
            "antagonist_throttled": o.antagonist_throttled,
            "antagonist_admitted_bytes": o.antagonist_bytes,
            "antagonist_mib_per_sec": rate(o),
        }));
    }
    println!(
        "shape: the bucket clamps the antagonist near {} MiB/s (vs {:.0} MiB/s uncapped)",
        cap / MIB,
        rate(&uncapped)
    );
    println!("while the polite tenant stays within noise of its solo run.");
    serde_json::json!({
        "cap_mib_per_sec": cap / MIB,
        "rows": rows,
    })
}

/// One storm round's measured restore latencies: fires a checkpoint
/// storm on the `storm` tenant, then `restores` back-to-back restores
/// on the `recover` tenant, measured client-side on the virtual clock.
struct StormOutcome {
    restore_ns: Vec<u64>,
    checkpoint_p99_ns: u64,
    shed_checkpoints: u64,
}

/// Drives the storm harness against a real daemon with priority
/// restore lanes on or off. One dispatch worker, `storm_models`
/// checkpoints queued per round, then `restores` restore calls.
fn storm_run(priority: bool, storm_models: usize, restores: usize, rounds: u64) -> StormOutcome {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let storm_nic = fabric.add_nic(NodeId(0));
    let recover_nic = fabric.add_nic(NodeId(2));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 2 << 30);
    let cfg = DaemonConfig {
        dispatch_workers: 1,
        priority_restore: priority,
        ..DaemonConfig::default()
    };
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);

    // Storm models carry thousands of tiny tensors: the per-WQE work
    // keeps the single worker busy in host time while the storm
    // enqueues, so the restore genuinely races a loaded queue.
    let storm = PortusClient::connect_as(&daemon, storm_nic, "storm");
    let mut names = Vec::new();
    for i in 0..storm_models {
        let spec = test_spec(&format!("storm-{i}"), 8192, 2048);
        let model = ModelInstance::materialize(&spec, &gpu, 10 + i as u64, Materialization::Owned)
            .expect("materialize storm model");
        storm.register_model(&model).expect("register storm model");
        names.push(spec.name.clone());
    }

    let recover = PortusClient::connect_as(&daemon, recover_nic, "recover");
    let victim_spec = test_spec("victim", 64, 256 * 1024);
    let victim = ModelInstance::materialize(&victim_spec, &gpu, 42, Materialization::Owned)
        .expect("materialize victim");
    recover.register_model(&victim).expect("register victim");
    recover
        .checkpoint("victim")
        .expect("seed the victim checkpoint");
    let dest = ModelInstance::materialize(&victim_spec, &gpu, 43, Materialization::Owned)
        .expect("materialize restore target");

    let mut restore_ns = Vec::new();
    let gate = names.len() as u64 - 2;
    for _ in 0..rounds {
        let pendings: Vec<_> = names
            .iter()
            .map(|n| (n.clone(), storm.checkpoint_async(n).expect("storm async")))
            .collect();
        // Gate on the dispatch-queue gauge before measuring: Stats
        // rides the urgent class, so the poll answers even while the
        // normal queue is saturated. Without the gate, a preempted
        // storm serve thread lets the first restore race into an
        // *empty* queue and both configurations measure alike.
        while recover.stats().expect("stats").dispatch_queue_depth < gate {
            std::thread::yield_now();
        }
        let mut mark = ctx.clock.now();
        for _ in 0..restores {
            recover.restore(&dest).expect("restore under storm");
            let now = ctx.clock.now();
            restore_ns.push(now.saturating_since(mark).as_nanos());
            mark = now;
        }
        for (n, p) in pendings {
            storm.wait_checkpoint(&n, p).expect("drain storm");
        }
    }
    let stats = recover.stats().expect("stats");
    let checkpoint_p99_ns = stats.tenant("storm").map_or(0, |t| t.checkpoint.p99());
    let shed_checkpoints = stats.tenant("storm").map_or(0, |t| t.shed_ops);
    drop(storm);
    drop(recover);
    daemon.shutdown();
    StormOutcome {
        restore_ns,
        checkpoint_p99_ns,
        shed_checkpoints,
    }
}

/// Quantile over client-side samples (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn storm_row(label: &str, out: &StormOutcome) -> serde_json::Value {
    let mut sorted = out.restore_ns.clone();
    sorted.sort_unstable();
    let (p50, p99) = (quantile(&sorted, 0.5), quantile(&sorted, 0.99));
    println!(
        "{:<10} {:>9} {:>14.3} {:>14.3} {:>15.3} {:>6}",
        label,
        sorted.len(),
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        out.checkpoint_p99_ns as f64 / 1e6,
        out.shed_checkpoints,
    );
    serde_json::json!({
        "priority_restore": label == "on",
        "restores": sorted.len(),
        "restore_p50_ms": p50 as f64 / 1e6,
        "restore_p99_ms": p99 as f64 / 1e6,
        "restore_p99_ns": p99,
        "storm_checkpoint_p99_ms": out.checkpoint_p99_ns as f64 / 1e6,
        "shed_checkpoints": out.shed_checkpoints,
    })
}

/// Scenario 2: a restore arrives mid-storm; priority lanes decide
/// whether it jumps the queue or drains behind it.
fn checkpoint_storm(smoke: bool) -> serde_json::Value {
    let rounds = if smoke { 3 } else { 10 };
    let storm_models = 12;
    println!();
    println!(
        "Checkpoint storm — 1 worker, {storm_models} queued checkpoints, restore mid-storm, \
         {rounds} rounds"
    );
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>15} {:>6}",
        "priority", "restores", "rst p50 ms", "rst p99 ms", "ckpt p99 ms", "shed"
    );
    let on = storm_run(true, storm_models, 1, rounds);
    let off = storm_run(false, storm_models, 1, rounds);
    let row_on = storm_row("on", &on);
    let row_off = storm_row("off", &off);
    let p99 = |o: &StormOutcome| {
        let mut s = o.restore_ns.clone();
        s.sort_unstable();
        quantile(&s, 0.99)
    };
    let speedup = p99(&off) as f64 / p99(&on).max(1) as f64;
    println!("shape: priority lanes cut the mid-storm restore p99 by {speedup:.1}x — the");
    println!("restore jumps the normal-class queue instead of draining behind it.");
    serde_json::json!({
        "rows": [row_on, row_off],
        "priority_restore_p99_speedup": speedup,
    })
}

/// Scenario 3: a daemon dies mid-checkpoint (the PR 7 kill-schedule
/// idiom), the fleet report says who must restore, and the stampede
/// replays against a real daemon with priority lanes on and off.
fn restore_stampede(smoke: bool) -> serde_json::Value {
    let m = CostModel::icdcs24();
    let fleet = |k: usize| {
        let mut cfg = FleetConfig::uniform(
            4,
            8,
            JobShape::single(1 << 30, 64),
            IterationProfile::from_total(SimDuration::from_millis(350)),
            Policy::PortusSync { every: 10 },
            60,
        );
        cfg.seed = 7;
        for (i, c) in cfg.clients.iter_mut().enumerate() {
            c.tenant = if i < 4 {
                "team-a".to_string()
            } else {
                "team-b".to_string()
            };
        }
        cfg.with_placement(PlacementConfig::mirrored(k))
    };
    // Aim the kill at the midpoint of client-0's *last* checkpoint and
    // at its rendezvous primary (the daemon-loss sweep idiom): the
    // surviving replica keeps the version restorable, but every client
    // whose primary died now restores through a dead replica — the
    // stampede this scenario replays.
    let dry = run_fleet(&m, &fleet(2));
    let span = dry
        .spans
        .iter()
        .rfind(|s| s.model == "client-0" && s.op == TraceOp::Checkpoint && s.stage == Stage::Total)
        .expect("client-0 checkpoints at least once");
    let at =
        (span.start + span.end.saturating_since(span.start) / 2).saturating_since(SimTime::ZERO);
    let victim = replica_set("client-0", &[true; 4], 1)[0];

    let cfg = fleet(2).with_kill(victim, at);
    let out = run_fleet(&m, &cfg);
    let report = daemon_loss_report(&cfg, &out);
    let stampeders: Vec<&str> = out
        .restores
        .iter()
        .filter(|r| r.failovers > 0)
        .map(|r| r.client.as_str())
        .collect();

    println!();
    println!(
        "Restore stampede — kill daemon {victim} at {:.1} s, k=2 replicas, 8 clients / 2 tenants",
        at.as_secs_f64()
    );
    println!(
        "fleet: {} failed ckpts, {} fenced, {} repairs, {} restore failovers, zero-loss: {}",
        report.failed_checkpoints,
        report.fenced_active,
        report.repairs,
        report.restore_failovers,
        report.zero_loss,
    );
    for t in &out.metrics.tenants {
        println!(
            "tenant {:<8} admitted {} checkpoints / {} bytes",
            t.tenant, t.admitted_ops, t.admitted_bytes
        );
    }
    println!(
        "{} clients restore through a dead replica: {stampeders:?}",
        stampeders.len()
    );

    // Replay: the failed-over restores all land on a survivor that is
    // still absorbing checkpoint traffic. Four back-to-back restores
    // against a loaded single-worker daemon, priority on vs off.
    let rounds = if smoke { 2 } else { 6 };
    let restores = stampeders.len().clamp(2, 4);
    println!("replay: {restores} back-to-back restores vs 12 queued checkpoints, {rounds} rounds");
    println!(
        "{:<10} {:>9} {:>14} {:>14} {:>15} {:>6}",
        "priority", "restores", "rst p50 ms", "rst p99 ms", "ckpt p99 ms", "shed"
    );
    let on = storm_run(true, 12, restores, rounds);
    let off = storm_run(false, 12, restores, rounds);
    let row_on = storm_row("on", &on);
    let row_off = storm_row("off", &off);
    println!("shape: even a stampede of restores drains ahead of the storm when priority");
    println!("lanes are on; off, the first restore eats the whole queue's virtual time.");
    serde_json::json!({
        "kill_daemon": victim,
        "kill_at_seconds": at.as_secs_f64(),
        "failed_checkpoints": report.failed_checkpoints,
        "fenced_active": report.fenced_active,
        "repairs": report.repairs,
        "restore_failovers": report.restore_failovers,
        "zero_loss": report.zero_loss,
        "stampeding_clients": stampeders,
        "tenants": out.metrics.tenants.iter().map(|t| serde_json::json!({
            "tenant": t.tenant,
            "admitted_ops": t.admitted_ops,
            "admitted_bytes": t.admitted_bytes,
        })).collect::<Vec<_>>(),
        "replay": [row_on, row_off],
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let antagonist = antagonistic_tenants(smoke);
    let storm = checkpoint_storm(smoke);
    let stampede = restore_stampede(smoke);
    let path = portus_bench::write_experiment(
        "qos_sweep",
        &serde_json::json!({
            "antagonistic_tenants": antagonist,
            "checkpoint_storm": storm,
            "restore_stampede": stampede,
        }),
    );
    println!("wrote {}", path.display());
}
