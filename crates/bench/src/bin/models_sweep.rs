//! The appendix sweep: the paper evaluates 76 DNN models and prints
//! seven representatives. This harness sweeps an extended synthetic zoo
//! spanning the same size range (smaller than ResNet50 up past BERT) and
//! reports the speedup-vs-size curve, verifying the paper's implicit
//! claim that the gains hold across the whole population, with the
//! highest factors on metadata-bound small models.

use portus_cluster::ops::{portus_checkpoint_cost, torch_save_cost, JobShape};
use portus_cluster::Backend;
use portus_dnn::test_spec;
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    println!("Appendix sweep — 76 synthetic models, checkpoint speedup vs size");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "size", "layers", "Portus(s)", "BeeGFS(s)", "vs BGFS", "vs ext4"
    );
    let mut rows = Vec::new();
    let (mut min_b, mut max_b, mut sum_b) = (f64::MAX, 0.0f64, 0.0);
    for i in 0..76u64 {
        // Sizes log-spaced from 16 MiB to 2 GiB; layer counts scale
        // sub-linearly like real architectures.
        let mib = (16.0 * (128.0f64).powf(i as f64 / 75.0)) as u64;
        let layers = (12 + (i * 7) % 80 + mib / 16) as usize;
        let per_layer = ((mib << 20) / layers as u64 / 4).max(1) * 4;
        let spec = test_spec(&format!("sweep-{i:02}"), layers, per_layer);
        let job = JobShape::single(spec.total_bytes(), spec.layer_count() as u64);
        let portus = portus_checkpoint_cost(&m, job).as_secs_f64();
        let beegfs = torch_save_cost(&m, job, Backend::BeegfsPmem)
            .total()
            .as_secs_f64();
        let ext4 = torch_save_cost(&m, job, Backend::Ext4Nvme)
            .total()
            .as_secs_f64();
        let (sb, se) = (beegfs / portus, ext4 / portus);
        min_b = min_b.min(sb);
        max_b = max_b.max(sb);
        sum_b += sb;
        if i % 8 == 0 {
            println!(
                "{:>7}MiB {:>8} {:>10.3} {:>10.3} {:>8.2}x {:>8.2}x",
                mib, layers, portus, beegfs, sb, se
            );
        }
        rows.push(serde_json::json!({
            "size_mib": mib,
            "layers": layers,
            "portus_s": portus,
            "beegfs_s": beegfs,
            "ext4_s": ext4,
            "speedup_beegfs": sb,
            "speedup_ext4": se,
        }));
    }
    println!(
        "\n76 models: speedup vs BeeGFS-PMem spans {:.2}x..{:.2}x, mean {:.2}x",
        min_b,
        max_b,
        sum_b / 76.0
    );
    println!("(smallest models gain the most: BeeGFS metadata amortizes with size)");
    assert!(min_b > 5.0, "every model must gain substantially");
    let path = portus_bench::write_experiment("models_sweep", &serde_json::json!(rows));
    println!("wrote {}", path.display());
}
