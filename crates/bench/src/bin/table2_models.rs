//! Table II: the model zoo specifications.

use portus_dnn::zoo;

fn main() {
    println!("Table II — DNN model specifications (generated zoo vs published)");
    println!(
        "{:<16} {:>7} {:>12} {:>10} {:>14}",
        "Model", "Layers", "Params", "Size", "Published"
    );
    let mut rows = Vec::new();
    for card in zoo::table2_cards() {
        let mib = card.spec.total_bytes() as f64 / (1 << 20) as f64;
        println!(
            "{:<16} {:>7} {:>11.1}M {:>7.0}MiB {:>11}MiB",
            card.spec.name,
            card.spec.layer_count(),
            card.spec.param_count() as f64 / 1e6,
            mib,
            card.published_mib,
        );
        rows.push(serde_json::json!({
            "model": card.spec.name,
            "layers": card.spec.layer_count(),
            "params": card.spec.param_count(),
            "size_mib": mib,
            "published_mib": card.published_mib,
        }));
    }
    for spec in zoo::gpt_family() {
        println!(
            "{:<16} {:>7} {:>11.2}B {:>6.1}GB {:>14}",
            spec.name,
            spec.layer_count(),
            spec.param_count() as f64 / 1e9,
            spec.total_bytes() as f64 / 1e9,
            "§V-E",
        );
        rows.push(serde_json::json!({
            "model": spec.name,
            "layers": spec.layer_count(),
            "params": spec.param_count(),
            "size_gb": spec.total_bytes() as f64 / 1e9,
        }));
    }
    let path = portus_bench::write_experiment("table2_models", &serde_json::json!(rows));
    println!("\nwrote {}", path.display());
}
