//! Fig. 9: training-timeline comparison of the four checkpoint
//! policies on one model (qualitative in the paper; quantified here as
//! per-policy stall and elapsed time over a fixed iteration budget).

use portus_bench::analytic;
use portus_cluster::{run_training, Backend, JobShape, Policy, TrainingConfig};
use portus_dnn::{zoo, IterationProfile};
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    let card = zoo::bert_large_card();
    let job = JobShape::single(card.spec.total_bytes(), card.spec.layer_count() as u64);
    let profile = IterationProfile::from_total(card.iteration);
    let every = 10;
    let iterations = 100;

    println!(
        "Fig. 9 — timeline comparison: BERT-Large, checkpoint every {every} of {iterations} iterations"
    );
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>8}",
        "Policy", "elapsed(s)", "stall(s)", "stall/ckpt", "util"
    );
    let policies = [
        Policy::TorchSave {
            every,
            backend: Backend::BeegfsPmem,
        },
        Policy::CheckFreq {
            every,
            backend: Backend::BeegfsPmem,
        },
        Policy::PortusSync { every },
        Policy::PortusAsync { every },
    ];
    let mut json = Vec::new();
    for p in policies {
        let cfg = TrainingConfig {
            job,
            profile,
            policy: p,
        };
        let run = run_training(&m, &cfg, iterations);
        println!(
            "{:<14} {:>11.2} {:>11.2} {:>11.3} {:>7.1}%",
            p.label(),
            run.elapsed.as_secs_f64(),
            run.checkpoint_stall.as_secs_f64(),
            run.checkpoint_stall.as_secs_f64() / run.checkpoints.max(1) as f64,
            run.avg_utilization() * 100.0
        );
        json.push(serde_json::json!({
            "policy": p.label(),
            "elapsed": run.elapsed.as_secs_f64(),
            "stall": run.checkpoint_stall.as_secs_f64(),
            "utilization": run.avg_utilization(),
            "op_cost": p.op_cost(&m, job).as_secs_f64(),
        }));
    }
    println!("\nordering matches Fig. 9: torch.save > CheckFreq > Portus-sync > Portus-async");
    let _ = analytic::FIG15_INTERVAL; // same harness drives Fig. 15
    let path = portus_bench::write_experiment("fig9_timeline", &serde_json::json!(json));
    println!("wrote {}", path.display());
}
