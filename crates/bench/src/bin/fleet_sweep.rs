//! Fleet scaling on the discrete-event core: N training clients
//! checkpointing against D Portus daemons, driven as event actors by
//! `portus_cluster::run_fleet`.
//!
//! The sweep contrasts the two regimes the plan-queue rebuild exists
//! to separate: clients on *independent* daemons overlap perfectly
//! (makespan stays at 1x solo — max-of-completions), while clients
//! *contending* for one daemon's NIC serialize their pulls (makespan
//! and checkpoint-latency p99 grow with the client count).

use portus_cluster::{run_fleet, FleetConfig, JobShape, PlacementConfig, Policy};
use portus_dnn::IterationProfile;
use portus_sim::{CostModel, SimDuration, Stage, TraceOp};

fn config(daemons: usize, clients: usize) -> FleetConfig {
    let mut cfg = FleetConfig::uniform(
        daemons,
        clients,
        JobShape::single(4_000_000_000, 400),
        IterationProfile::from_total(SimDuration::from_millis(350)),
        Policy::PortusAsync { every: 10 },
        100,
    );
    cfg.seed = 1;
    cfg
}

fn main() {
    let m = CostModel::icdcs24();
    let solo = run_fleet(&m, &config(1, 1));
    println!(
        "Fleet sweep — 4 GB jobs, Portus-async every 10 of 100 iterations, solo makespan {:.1} s",
        solo.makespan.as_secs_f64()
    );
    println!(
        "{:<22} {:>12} {:>10} {:>14} {:>14}",
        "Topology", "makespan(s)", "vs solo", "stall/client(s)", "ckpt p99(ms)"
    );
    let mut json = Vec::new();
    for (daemons, clients) in [(1, 1), (4, 4), (8, 8), (1, 2), (1, 4), (1, 8), (2, 8)] {
        let out = run_fleet(&m, &config(daemons, clients));
        let stall: f64 = out
            .clients
            .iter()
            .map(|c| c.checkpoint_stall.as_secs_f64())
            .sum::<f64>()
            / out.clients.len() as f64;
        let p99_ms = out
            .metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .map_or(0.0, |h| h.p99() as f64 / 1e6);
        println!(
            "{:<22} {:>12.1} {:>9.2}x {:>14.2} {:>14.1}",
            format!("{clients} clients/{daemons} daemons"),
            out.makespan.as_secs_f64(),
            out.makespan.as_secs_f64() / solo.makespan.as_secs_f64(),
            stall,
            p99_ms
        );
        json.push(serde_json::json!({
            "daemons": daemons,
            "clients": clients,
            "makespan_seconds": out.makespan.as_secs_f64(),
            "mean_client_stall_seconds": stall,
            "checkpoint_p99_ms": p99_ms,
            "events_run": out.events_run,
        }));
    }
    println!(
        "\nIndependent daemons hold makespan at 1x solo; a shared NIC serializes only the pulls."
    );

    // Replication axis: the same fleet with every checkpoint mirrored
    // to k rendezvous-placed daemons. k=2 doubles the pull work, so
    // its makespan must not come in below k=1 — the sanity check CI
    // leans on.
    println!("\nReplication axis — 4 clients / 4 daemons, rendezvous placement");
    println!(
        "{:<9} {:>12} {:>16} {:>14}",
        "replicas", "makespan(s)", "replica writes", "stall/client(s)"
    );
    let mut makespans = Vec::new();
    let mut replication = Vec::new();
    for k in [1usize, 2] {
        let cfg = config(4, 4).with_placement(PlacementConfig::mirrored(k));
        let out = run_fleet(&m, &cfg);
        let replica_writes: u64 = out.metrics.fleet.iter().map(|d| d.replica_writes).sum();
        let stall: f64 = out
            .clients
            .iter()
            .map(|c| c.checkpoint_stall.as_secs_f64())
            .sum::<f64>()
            / out.clients.len() as f64;
        println!(
            "{:<9} {:>12.1} {:>16} {:>14.2}",
            k,
            out.makespan.as_secs_f64(),
            replica_writes,
            stall
        );
        makespans.push(out.makespan);
        replication.push(serde_json::json!({
            "replicas": k,
            "makespan_seconds": out.makespan.as_secs_f64(),
            "replica_writes": replica_writes,
            "mean_client_stall_seconds": stall,
        }));
    }
    assert!(
        makespans[1] >= makespans[0],
        "mirroring to 2 daemons cannot beat 1 replica: {:?}",
        makespans
    );

    let path = portus_bench::write_experiment(
        "fleet_sweep",
        &serde_json::json!({
            "topology": json,
            "replication": replication,
        }),
    );
    println!("wrote {}", path.display());
}
