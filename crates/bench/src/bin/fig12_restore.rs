//! Fig. 12: restore time of the seven Table II models on Portus,
//! BeeGFS-PMem (GDS), and ext4-NVMe (GDS) — real data plane. Run with
//! `--release`.
//!
//! Paper: Portus averages 5.15x over BeeGFS-PMem and 3.83x over
//! ext4-NVMe, peaking at 7.0x on ResNet50; gains are smaller than for
//! checkpointing because GPUDirect Storage already spares the baselines
//! the host staging copy.

use portus_bench::realplane;
use portus_dnn::zoo;

fn main() {
    println!("Fig. 12 — restore time (virtual seconds, real data plane)");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Model", "Portus", "BeeGFS", "ext4", "vs BGFS", "vs ext4"
    );
    let mut rows = Vec::new();
    let (mut sum_b, mut sum_e) = (0.0, 0.0);
    for card in zoo::table2_cards() {
        eprintln!(
            "  running {} ({} MiB)...",
            card.spec.name,
            card.spec.total_bytes() >> 20
        );
        let cmp = realplane::compare_systems(&card.spec);
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9.3} {:>8.2}x {:>8.2}x",
            cmp.model,
            cmp.portus_restore,
            cmp.beegfs_restore,
            cmp.ext4_restore,
            cmp.restore_speedup_beegfs(),
            cmp.restore_speedup_ext4(),
        );
        sum_b += cmp.restore_speedup_beegfs();
        sum_e += cmp.restore_speedup_ext4();
        rows.push(cmp);
    }
    let n = rows.len() as f64;
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>8.2}x {:>8.2}x   (paper: 5.15x / 3.83x)",
        "average",
        "",
        "",
        "",
        sum_b / n,
        sum_e / n
    );
    let path = portus_bench::write_experiment(
        "fig12_restore",
        &serde_json::to_value(&rows).expect("serialize"),
    );
    println!("wrote {}", path.display());
}
