//! Runs every table/figure harness in sequence (build with `--release`;
//! the real-data-plane experiments move multi-gigabyte models).

use std::process::Command;

const BINS: &[&str] = &[
    "table2_models",
    "fig2_overhead",
    "fig9_timeline",
    "fig10_datapath",
    "fig14_gpt_scale",
    "fig15_throughput",
    "fig16_gpu_util",
    "ablations",
    "failure_sweep",
    "space_sweep",
    "advisor",
    "models_sweep",
    "fleet_sweep",
    "catalog_sweep",
    // Real-data-plane experiments last (the heavy ones).
    "table1_breakdown",
    "fig13_breakdown",
    "fig11_checkpoint",
    "fig12_restore",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n===== {bin} =====");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(*bin);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; JSON in target/experiments/");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
