//! Fig. 10: bandwidth and latency of the Portus datapath between the
//! four device pairs, swept over message size.
//!
//! (a)/(b): server reads from client DRAM / client GPU (checkpointing
//! direction); (c)/(d): server writes to client DRAM / client GPU
//! (restore direction). The paper's observations reproduced here:
//! DRAM-vs-PMem on the *server* side makes no difference (the network
//! dominates), GPU reads cap at 5.8 GB/s through the BAR while GPU
//! writes do not, and bandwidth saturates past 512 KB messages.

use portus_sim::{CostModel, MemoryKind};

fn main() {
    let m = CostModel::icdcs24();
    let sizes: Vec<u64> = (12..=28).map(|p| 1u64 << p).collect(); // 4 KiB .. 256 MiB

    println!("Fig. 10 — Portus datapath bandwidth (GB/s) and latency by message size");
    println!(
        "{:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>12}",
        "size", "read DRAM", "read GPU", "write DRAM", "write GPU", "lat GPU read"
    );
    let mut rows = Vec::new();
    for &s in &sizes {
        let read_dram = m.rdma_read(s, MemoryKind::HostDram);
        let read_gpu = m.rdma_read(s, MemoryKind::GpuHbm);
        let write_dram = m.rdma_write(s, MemoryKind::HostDram);
        let write_gpu = m.rdma_write(s, MemoryKind::GpuHbm);
        let bw = |d: portus_sim::SimDuration| s as f64 / d.as_secs_f64() / 1e9;
        println!(
            "{:>10} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2} | {:>9.1} us",
            human(s),
            bw(read_dram),
            bw(read_gpu),
            bw(write_dram),
            bw(write_gpu),
            read_gpu.as_nanos() as f64 / 1e3,
        );
        rows.push(serde_json::json!({
            "size_bytes": s,
            "read_dram_gbps": bw(read_dram),
            "read_gpu_gbps": bw(read_gpu),
            "write_dram_gbps": bw(write_dram),
            "write_gpu_gbps": bw(write_gpu),
            "read_gpu_latency_us": read_gpu.as_nanos() as f64 / 1e3,
            "read_dram_latency_us": read_dram.as_nanos() as f64 / 1e3,
        }));
    }
    println!("\nserver-side DRAM vs PMem targets are indistinguishable (network-bound),");
    println!(
        "GPU reads cap at {:.1} GB/s (BAR), writes at {:.1} GB/s (RNIC peak).",
        m.gpu_bar_read_bw / 1e9,
        m.rdma_peak_bw / 1e9
    );
    let path = portus_bench::write_experiment("fig10_datapath", &serde_json::json!(rows));
    println!("wrote {}", path.display());
}

fn human(s: u64) -> String {
    if s >= 1 << 20 {
        format!("{}MiB", s >> 20)
    } else {
        format!("{}KiB", s >> 10)
    }
}
