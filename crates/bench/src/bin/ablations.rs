//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! The paper argues three mechanisms buy the speedup: (1) eliminating
//! serialization, (2) eliminating the staging copy through host DRAM,
//! and (3) one-sided verbs instead of two-sided RPC. This harness
//! prices hypothetical Portus variants with each mechanism removed, so
//! the contribution of every choice is visible in isolation — plus a
//! BAR sensitivity sweep and the RPC-contention knee.

use portus_cluster::ops::{portus_checkpoint_cost, JobShape};
use portus_sim::{CostModel, SimDuration};

fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

/// A Portus variant with the serialization step put back in.
fn variant_with_serialization(m: &CostModel, job: JobShape) -> SimDuration {
    portus_checkpoint_cost(m, job) + m.serialize(job.total_bytes)
}

/// A Portus variant that stages through host DRAM first (cudaMemcpy +
/// RDMA from DRAM at the full RNIC rate instead of the BAR cap).
fn variant_via_host_dram(m: &CostModel, job: JobShape) -> SimDuration {
    let memcpy = m.cuda_memcpy_d2h(job.total_bytes / job.nodes.max(1) as u64);
    let pull = SimDuration::from_secs_f64(job.total_bytes as f64 / m.rdma_peak_bw);
    let verbs = SimDuration::from_nanos(m.rdma_op_latency_ns * job.tensor_count);
    memcpy + pull + verbs
}

/// A Portus variant on the two-sided RPC protocol instead of one-sided
/// reads.
fn variant_two_sided(m: &CostModel, job: JobShape) -> SimDuration {
    m.rpc_rdma_transfer_contended(job.total_bytes, job.shards)
        + SimDuration::from_nanos(m.rpc_op_latency_ns * job.tensor_count)
}

fn main() {
    let m = CostModel::icdcs24();
    let jobs = [
        ("bert_large (1 GPU)", JobShape::single(1_344_798_720, 396)),
        (
            "gpt-22.4b (16 GPU)",
            JobShape {
                total_bytes: 90_100_000_000,
                tensor_count: 600,
                shards: 16,
                nodes: 2,
            },
        ),
    ];

    println!("Ablation 1 — which mechanism buys what (checkpoint op, seconds)");
    println!(
        "{:<20} {:>9} {:>12} {:>12} {:>12}",
        "Workload", "Portus", "+serialize", "via DRAM", "two-sided"
    );
    let mut json = Vec::new();
    for (label, job) in jobs {
        let base = portus_checkpoint_cost(&m, job);
        let ser = variant_with_serialization(&m, job);
        let dram = variant_via_host_dram(&m, job);
        let rpc = variant_two_sided(&m, job);
        println!(
            "{:<20} {:>9.2} {:>11.2}({:>4.1}x) {:>7.2}({:>4.1}x) {:>7.2}({:>4.1}x)",
            label,
            secs(base),
            secs(ser),
            secs(ser) / secs(base),
            secs(dram),
            secs(dram) / secs(base),
            secs(rpc),
            secs(rpc) / secs(base),
        );
        json.push(serde_json::json!({
            "workload": label,
            "portus": secs(base),
            "with_serialization": secs(ser),
            "via_host_dram": secs(dram),
            "two_sided_rpc": secs(rpc),
        }));
    }

    println!("\nAblation 2 — BAR read-cap sensitivity (GPT-22.4B checkpoint op)");
    println!("{:>14} {:>10}", "BAR (GB/s)", "op (s)");
    let mut bar_rows = Vec::new();
    for bar in [2.0, 4.0, 5.8, 8.3, 12.0] {
        let mut mv = m.clone();
        mv.gpu_bar_read_bw = bar * 1e9;
        let t = portus_checkpoint_cost(&mv, jobs[1].1);
        println!("{bar:>14.1} {:>10.1}", secs(t));
        bar_rows.push(serde_json::json!({"bar_gbps": bar, "op_seconds": secs(t)}));
    }

    println!("\nAblation 3 — two-sided RPC contention (16-shard transmit, 89.6 GB)");
    println!("{:>14} {:>12}", "per-stream c", "transmit (s)");
    let mut c_rows = Vec::new();
    for c in [0.0, 0.02, 0.062, 0.10, 0.20] {
        let mut mv = m.clone();
        mv.rpc_contention_per_stream = c;
        let t = mv.rpc_rdma_transfer_contended(89_600_000_000, 16);
        println!("{c:>14.3} {:>12.1}", secs(t));
        c_rows.push(serde_json::json!({"contention": c, "transmit_seconds": secs(t)}));
    }

    println!("\nAblation 4 — double mapping space cost vs a single slot");
    // Two slots cost one extra checkpoint of PMem per model; the repacker
    // reclaims it after the job. A single slot would halve the space but
    // lose crash consistency — quantified as: with one slot, a crash
    // mid-checkpoint leaves ZERO valid versions.
    for (label, job) in jobs {
        println!(
            "  {label}: +{:.1} GB PMem while training (reclaimable), in exchange for \
             a guaranteed valid version at any crash point",
            job.total_bytes as f64 / 1e9
        );
    }

    let path = portus_bench::write_experiment(
        "ablations",
        &serde_json::json!({
            "mechanisms": json,
            "bar_sweep": bar_rows,
            "rpc_contention_sweep": c_rows,
        }),
    );
    println!("\nwrote {}", path.display());
}
