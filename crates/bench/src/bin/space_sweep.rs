//! Space-management sweep (PR 4): how much PMem the online repacker
//! gives back as finished jobs accumulate, what a pass costs in
//! virtual time, and what the `OutOfSpace` repack-and-retry loop does
//! for a checkpoint that lands on a full device.
//!
//! Section 1 sweeps the number of completed ("garbage") jobs sharing a
//! device with one active job and reports, per explicit repack pass:
//! slots/bytes reclaimed, the allocator's free/largest-extent gauges
//! before and after, the derived fragmentation ratio, and the pass
//! latency off the `repack` stage histogram.
//!
//! Section 2 fills the heap and drives a checkpoint that needs a fresh
//! region: with reclaimable garbage present the daemon recovers
//! invisibly (one `oos_recovery`); with none it surfaces the typed
//! error carrying the allocator's view.
//!
//! Section 3 sweeps the dedup ratio: N fine-tunes of one base model
//! checkpoint onto a content-addressed daemon, and the table reports
//! physical (stored) versus logical (referenced) bytes, shared-extent
//! counts, and that every fine-tune still restores checksum-clean.
//!
//! `--smoke` shrinks every axis for CI.

use portus::{repack, DaemonConfig, DedupConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, Stage, TraceOp};

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world(device_bytes: u64) -> World {
    world_cfg(device_bytes, DaemonConfig::default())
}

fn world_cfg(device_bytes: u64, cfg: DaemonConfig) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, device_bytes);
    let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

/// Registers `name`, checkpoints it `versions` times, and returns the
/// instance (still attached to the client's session).
fn run_job(
    w: &World,
    client: &PortusClient,
    name: &str,
    layers: u32,
    layer_bytes: u64,
    versions: u32,
    seed: u64,
) -> ModelInstance {
    let spec = test_spec(name, layers as usize, layer_bytes);
    let mut m = ModelInstance::materialize(&spec, &w.gpu, seed, Materialization::Owned)
        .expect("materialize");
    client.register_model(&m).expect("register");
    for _ in 0..versions {
        m.train_step();
        client.checkpoint(name).expect("checkpoint");
    }
    m
}

fn repack_scaling_sweep(smoke: bool) -> serde_json::Value {
    println!("Repack scaling — one active job + N completed jobs on a 256 MiB device");
    println!(
        "{:<8} {:>9} {:>12} {:>13} {:>13} {:>12} {:>12} {:>10}",
        "garbage",
        "reclaimed",
        "bytes",
        "free before",
        "free after",
        "extent",
        "frag after",
        "pass us"
    );
    let mut rows = Vec::new();
    let garbage_axis: &[u64] = if smoke { &[0, 4] } else { &[0, 2, 4, 8, 16] };
    for &garbage_jobs in garbage_axis {
        let w = world(256 << 20);
        let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
        for g in 0..garbage_jobs {
            let name = format!("done-{g}");
            run_job(&w, &client, &name, 4, 256 * 1024, 2, g);
            client.mark_complete(&name).expect("mark complete");
        }
        run_job(&w, &client, "active", 4, 512 * 1024, 2, 99);

        let alloc = w.daemon.index().allocator();
        let free_before = alloc.free_bytes();
        let report = repack(&w.daemon, false).expect("repack");
        let free_after = alloc.free_bytes();
        let snapshot = w.ctx.metrics.snapshot();
        let pass_ns = snapshot
            .stage(TraceOp::Repack, Stage::Repack)
            .map_or(0, |h| h.total_ns);
        println!(
            "{:<8} {:>9} {:>12} {:>13} {:>13} {:>12} {:>11}‰ {:>10.1}",
            garbage_jobs,
            report.reclaimed_slots,
            report.freed_bytes,
            free_before,
            free_after,
            snapshot.pmem_largest_free_extent,
            snapshot.fragmentation_permille(),
            pass_ns as f64 / 1e3,
        );
        rows.push(serde_json::json!({
            "garbage_jobs": garbage_jobs,
            "reclaimed_slots": report.reclaimed_slots,
            "freed_bytes": report.freed_bytes,
            "free_before": free_before,
            "free_after": free_after,
            "largest_extent": snapshot.pmem_largest_free_extent,
            "fragmentation_permille": snapshot.fragmentation_permille(),
            "pass_ns": pass_ns,
        }));
        drop(client);
        w.daemon.shutdown();
    }
    println!("shape: reclaim scales with garbage (one non-latest slot per completed job);");
    println!("the pass cost is index metadata traffic, far below one checkpoint.");
    serde_json::json!(rows)
}

/// Leaves less than one page free so the next region allocation fails.
fn fill_heap(w: &World) {
    let alloc = w.daemon.index().allocator();
    for chunk in [1u64 << 20, 64 << 10, 4 << 10] {
        while alloc.alloc_aligned(chunk, 4096, 0xF1FF).is_ok() {}
    }
}

fn oos_recovery_cases() -> serde_json::Value {
    println!();
    println!("OutOfSpace recovery — checkpoint needs a region on a full 64 MiB device");
    let mut rows = Vec::new();
    for with_garbage in [true, false] {
        let w = world(64 << 20);
        let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
        // The probe job loses its idle slot to a repack pass, so its
        // next checkpoint must allocate.
        let mut probe = run_job(&w, &client, "probe", 2, 128 * 1024, 1, 1);
        client.mark_complete("probe").expect("complete probe");
        repack(&w.daemon, false).expect("reclaim probe's idle slot");
        if with_garbage {
            run_job(&w, &client, "garbage", 4, 512 * 1024, 2, 2);
            client.mark_complete("garbage").expect("complete garbage");
        }
        fill_heap(&w);

        let before = w.ctx.stats.snapshot();
        probe.train_step();
        let outcome = match client.checkpoint("probe") {
            Ok(r) => format!("recovered (v{})", r.version),
            Err(PortusError::OutOfSpace {
                needed,
                free,
                largest_extent,
            }) => {
                format!("typed OutOfSpace: need {needed}, free {free}, extent {largest_extent}")
            }
            Err(e) => panic!("unexpected error: {e}"),
        };
        let d = w.ctx.stats.snapshot().since(&before);
        println!(
            "  garbage={:<5} -> {:<55} oos_recoveries={} reclaimed={} ({} B)",
            with_garbage, outcome, d.oos_recoveries, d.reclaimed_slots, d.reclaimed_bytes
        );
        rows.push(serde_json::json!({
            "with_garbage": with_garbage,
            "outcome": outcome,
            "oos_recoveries": d.oos_recoveries,
            "reclaimed_slots": d.reclaimed_slots,
            "reclaimed_bytes": d.reclaimed_bytes,
        }));
        drop(client);
        w.daemon.shutdown();
    }
    println!("shape: reclaimable garbage turns OutOfSpace into one quiet repack-retry;");
    println!("a genuinely full device fails fast with the allocator's real numbers.");
    serde_json::json!(rows)
}

fn dedup_ratio_sweep(smoke: bool) -> serde_json::Value {
    println!();
    println!("Dedup ratio — base model + N fine-tunes on a content-addressed 256 MiB device");
    println!(
        "{:<10} {:>14} {:>14} {:>9} {:>8} {:>8} {:>9}",
        "fine-tunes", "logical", "stored", "ratio", "extents", "shared", "restored"
    );
    let mut rows = Vec::new();
    let axis: &[usize] = if smoke { &[8] } else { &[2, 4, 8, 16] };
    for &fine_tunes in axis {
        let w = world_cfg(
            256 << 20,
            DaemonConfig {
                dedup: Some(DedupConfig::default()),
                ..DaemonConfig::default()
            },
        );
        let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
        // All instances materialize from one seed (the shared base
        // weights); each fine-tune then diverges sparsely — one tensor
        // touched per step, the embedding-heavy fine-tune pattern.
        let layers = 4usize;
        let mut jobs = Vec::new();
        for i in 0..=fine_tunes {
            let name = if i == 0 {
                "base".to_string()
            } else {
                format!("ft-{i}")
            };
            let spec = test_spec(&name, layers, 256 * 1024);
            let mut m = ModelInstance::materialize(&spec, &w.gpu, 7, Materialization::Owned)
                .expect("materialize");
            client.register_model(&m).expect("register");
            for step in 0..2 {
                if i > 0 {
                    m.train_step_sparse(&[(i + step) % layers]);
                }
                client.checkpoint(&name).expect("checkpoint");
            }
            jobs.push((name, m));
        }

        // Every sharer must restore checksum-clean off the shared
        // extents before the ratio counts for anything.
        let mut restored = 0usize;
        for (name, m) in &mut jobs {
            let saved = m.model_checksum();
            m.train_step();
            client.restore(m).expect("restore");
            assert_eq!(m.model_checksum(), saved, "{name} restore diverged");
            restored += 1;
        }

        let store = w.daemon.index().extent_store().expect("dedup enabled");
        let stats = store.stats().expect("extent stats");
        let ratio_permille = if stats.referenced_logical == 0 {
            1000
        } else {
            (stats.stored_bytes as u128 * 1000 / stats.referenced_logical as u128) as u64
        };
        println!(
            "{:<10} {:>14} {:>14} {:>8}‰ {:>8} {:>8} {:>9}",
            fine_tunes,
            stats.referenced_logical,
            stats.stored_bytes,
            ratio_permille,
            stats.live,
            stats.shared,
            restored,
        );
        if fine_tunes >= 8 {
            assert!(
                ratio_permille <= 400,
                "{fine_tunes} fine-tunes sharing a base must store ≤ 40% \
                 of their logical bytes, got {ratio_permille}‰"
            );
        }
        rows.push(serde_json::json!({
            "fine_tunes": fine_tunes,
            "logical_bytes": stats.referenced_logical,
            "stored_bytes": stats.stored_bytes,
            "ratio_permille": ratio_permille,
            "live_extents": stats.live,
            "shared_extents": stats.shared,
            "restored_ok": restored,
        }));
        drop(client);
        w.daemon.shutdown();
    }
    println!("shape: the base weights are stored once; each fine-tune adds only its");
    println!("diverged chunks, so the physical/logical ratio falls as sharers join.");
    serde_json::json!(rows)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scaling = repack_scaling_sweep(smoke);
    let oos = oos_recovery_cases();
    let dedup = dedup_ratio_sweep(smoke);
    let path = portus_bench::write_experiment(
        "space_sweep",
        &serde_json::json!({
            "repack_scaling": scaling,
            "oos_recovery": oos,
            "dedup_ratio": dedup,
        }),
    );
    println!("wrote {}", path.display());
}
