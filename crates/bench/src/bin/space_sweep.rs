//! Space-management sweep (PR 4): how much PMem the online repacker
//! gives back as finished jobs accumulate, what a pass costs in
//! virtual time, and what the `OutOfSpace` repack-and-retry loop does
//! for a checkpoint that lands on a full device.
//!
//! Section 1 sweeps the number of completed ("garbage") jobs sharing a
//! device with one active job and reports, per explicit repack pass:
//! slots/bytes reclaimed, the allocator's free/largest-extent gauges
//! before and after, the derived fragmentation ratio, and the pass
//! latency off the `repack` stage histogram.
//!
//! Section 2 fills the heap and drives a checkpoint that needs a fresh
//! region: with reclaimable garbage present the daemon recovers
//! invisibly (one `oos_recovery`); with none it surfaces the typed
//! error carrying the allocator's view.

use portus::{repack, DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, Stage, TraceOp};

struct World {
    ctx: SimContext,
    fabric: Fabric,
    daemon: std::sync::Arc<PortusDaemon>,
    gpu: std::sync::Arc<GpuDevice>,
}

fn world(device_bytes: u64) -> World {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, device_bytes);
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 << 30);
    World {
        ctx,
        fabric,
        daemon,
        gpu,
    }
}

/// Registers `name`, checkpoints it `versions` times, and returns the
/// instance (still attached to the client's session).
fn run_job(
    w: &World,
    client: &PortusClient,
    name: &str,
    layers: u32,
    layer_bytes: u64,
    versions: u32,
    seed: u64,
) -> ModelInstance {
    let spec = test_spec(name, layers as usize, layer_bytes);
    let mut m = ModelInstance::materialize(&spec, &w.gpu, seed, Materialization::Owned)
        .expect("materialize");
    client.register_model(&m).expect("register");
    for _ in 0..versions {
        m.train_step();
        client.checkpoint(name).expect("checkpoint");
    }
    m
}

fn repack_scaling_sweep() -> serde_json::Value {
    println!("Repack scaling — one active job + N completed jobs on a 256 MiB device");
    println!(
        "{:<8} {:>9} {:>12} {:>13} {:>13} {:>12} {:>12} {:>10}",
        "garbage",
        "reclaimed",
        "bytes",
        "free before",
        "free after",
        "extent",
        "frag after",
        "pass us"
    );
    let mut rows = Vec::new();
    for garbage_jobs in [0u64, 2, 4, 8, 16] {
        let w = world(256 << 20);
        let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
        for g in 0..garbage_jobs {
            let name = format!("done-{g}");
            run_job(&w, &client, &name, 4, 256 * 1024, 2, g);
            client.mark_complete(&name).expect("mark complete");
        }
        run_job(&w, &client, "active", 4, 512 * 1024, 2, 99);

        let alloc = w.daemon.index().allocator();
        let free_before = alloc.free_bytes();
        let report = repack(&w.daemon, false).expect("repack");
        let free_after = alloc.free_bytes();
        let snapshot = w.ctx.metrics.snapshot();
        let pass_ns = snapshot
            .stage(TraceOp::Repack, Stage::Repack)
            .map_or(0, |h| h.total_ns);
        println!(
            "{:<8} {:>9} {:>12} {:>13} {:>13} {:>12} {:>11}‰ {:>10.1}",
            garbage_jobs,
            report.reclaimed_slots,
            report.freed_bytes,
            free_before,
            free_after,
            snapshot.pmem_largest_free_extent,
            snapshot.fragmentation_permille(),
            pass_ns as f64 / 1e3,
        );
        rows.push(serde_json::json!({
            "garbage_jobs": garbage_jobs,
            "reclaimed_slots": report.reclaimed_slots,
            "freed_bytes": report.freed_bytes,
            "free_before": free_before,
            "free_after": free_after,
            "largest_extent": snapshot.pmem_largest_free_extent,
            "fragmentation_permille": snapshot.fragmentation_permille(),
            "pass_ns": pass_ns,
        }));
        drop(client);
        w.daemon.shutdown();
    }
    println!("shape: reclaim scales with garbage (one non-latest slot per completed job);");
    println!("the pass cost is index metadata traffic, far below one checkpoint.");
    serde_json::json!(rows)
}

/// Leaves less than one page free so the next region allocation fails.
fn fill_heap(w: &World) {
    let alloc = w.daemon.index().allocator();
    for chunk in [1u64 << 20, 64 << 10, 4 << 10] {
        while alloc.alloc_aligned(chunk, 4096, 0xF1FF).is_ok() {}
    }
}

fn oos_recovery_cases() -> serde_json::Value {
    println!();
    println!("OutOfSpace recovery — checkpoint needs a region on a full 64 MiB device");
    let mut rows = Vec::new();
    for with_garbage in [true, false] {
        let w = world(64 << 20);
        let client = PortusClient::connect(&w.daemon, w.fabric.nic(NodeId(0)).unwrap());
        // The probe job loses its idle slot to a repack pass, so its
        // next checkpoint must allocate.
        let mut probe = run_job(&w, &client, "probe", 2, 128 * 1024, 1, 1);
        client.mark_complete("probe").expect("complete probe");
        repack(&w.daemon, false).expect("reclaim probe's idle slot");
        if with_garbage {
            run_job(&w, &client, "garbage", 4, 512 * 1024, 2, 2);
            client.mark_complete("garbage").expect("complete garbage");
        }
        fill_heap(&w);

        let before = w.ctx.stats.snapshot();
        probe.train_step();
        let outcome = match client.checkpoint("probe") {
            Ok(r) => format!("recovered (v{})", r.version),
            Err(PortusError::OutOfSpace {
                needed,
                free,
                largest_extent,
            }) => {
                format!("typed OutOfSpace: need {needed}, free {free}, extent {largest_extent}")
            }
            Err(e) => panic!("unexpected error: {e}"),
        };
        let d = w.ctx.stats.snapshot().since(&before);
        println!(
            "  garbage={:<5} -> {:<55} oos_recoveries={} reclaimed={} ({} B)",
            with_garbage, outcome, d.oos_recoveries, d.reclaimed_slots, d.reclaimed_bytes
        );
        rows.push(serde_json::json!({
            "with_garbage": with_garbage,
            "outcome": outcome,
            "oos_recoveries": d.oos_recoveries,
            "reclaimed_slots": d.reclaimed_slots,
            "reclaimed_bytes": d.reclaimed_bytes,
        }));
        drop(client);
        w.daemon.shutdown();
    }
    println!("shape: reclaimable garbage turns OutOfSpace into one quiet repack-retry;");
    println!("a genuinely full device fails fast with the allocator's real numbers.");
    serde_json::json!(rows)
}

fn main() {
    let scaling = repack_scaling_sweep();
    let oos = oos_recovery_cases();
    let path = portus_bench::write_experiment(
        "space_sweep",
        &serde_json::json!({ "repack_scaling": scaling, "oos_recovery": oos }),
    );
    println!("wrote {}", path.display());
}
