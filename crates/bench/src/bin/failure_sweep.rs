//! The motivation experiment (§I/§II-B): checkpoint frequency trades
//! per-checkpoint overhead against lost work on failure. Sweeps
//! checkpoint intervals under a fixed failure schedule (one failure
//! every ~10 minutes, the rate Oobleck/Bamboo report for large jobs)
//! and reports goodput per policy — showing why cheap checkpoints let
//! you pick fine intervals that drown `torch.save`.

use portus_cluster::{run_with_failures, Backend, JobShape, Policy, TrainingConfig};
use portus_dnn::{zoo, IterationProfile};
use portus_sim::{CostModel, SimDuration};

fn main() {
    let m = CostModel::icdcs24();
    let spec = zoo::gpt_22b();
    let job = JobShape {
        total_bytes: spec.total_bytes(),
        tensor_count: spec.layer_count() as u64,
        shards: 16,
        nodes: 2,
    };
    let profile = IterationProfile::from_total(zoo::gpt_iteration(&spec.name));
    let target = 2000u64;
    // A failure roughly every 10 minutes over the horizon.
    let failures: Vec<SimDuration> = (1..=12).map(|i| SimDuration::from_secs(i * 600)).collect();

    println!("Failure sweep — GPT-22.4B, {target} useful iterations, failures every ~10 min");
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>10} {:>12}",
        "Policy", "every", "total (s)", "lost it", "restores", "goodput it/h"
    );
    let mut rows = Vec::new();
    for every in [10u32, 26, 100, 500] {
        for policy in [
            Policy::TorchSave { every, backend: Backend::BeegfsPmem },
            Policy::CheckFreq { every, backend: Backend::BeegfsPmem },
            Policy::PortusAsync { every },
        ] {
            let cfg = TrainingConfig { job, profile, policy };
            let out = run_with_failures(&m, &cfg, target, &failures);
            println!(
                "{:<14} {:>8} {:>12.0} {:>10} {:>10} {:>12.0}",
                policy.label(),
                every,
                out.total_time.as_secs_f64(),
                out.lost_iterations,
                out.restores,
                out.goodput() * 3600.0,
            );
            rows.push(serde_json::json!({
                "policy": policy.label(),
                "every": every,
                "total_seconds": out.total_time.as_secs_f64(),
                "lost_iterations": out.lost_iterations,
                "restores": out.restores,
                "goodput_per_hour": out.goodput() * 3600.0,
            }));
        }
        println!();
    }
    println!("shape: torch.save wants coarse intervals (overhead) but then loses big on");
    println!("failure; Portus-async keeps its goodput flat down to fine intervals.");
    let path = portus_bench::write_experiment("failure_sweep", &serde_json::json!(rows));
    println!("wrote {}", path.display());
}
