//! The motivation experiment (§I/§II-B): checkpoint frequency trades
//! per-checkpoint overhead against lost work on failure. Sweeps
//! checkpoint intervals under a fixed failure schedule (one failure
//! every ~10 minutes, the rate Oobleck/Bamboo report for large jobs)
//! and reports goodput per policy — showing why cheap checkpoints let
//! you pick fine intervals that drown `torch.save`.
//!
//! A second section turns the failures inward: instead of whole-node
//! crashes it injects **datapath faults** (failed RDMA verbs) into the
//! real daemon and sweeps fault plans, reporting how many checkpoints
//! the per-WQE retry loop saves, how many end in a rolled-back slot,
//! and what the retries cost in virtual time.

use portus::{DaemonConfig, PortusClient, PortusDaemon, PortusError};
use portus_cluster::{
    daemon_loss_report, replica_set, run_fleet, run_with_failures, Backend, FleetConfig, JobShape,
    PlacementConfig, Policy, TrainingConfig,
};
use portus_dnn::{test_spec, zoo, IterationProfile, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, FaultSpec, NodeId};
use portus_sim::{CostModel, SimDuration, Stage, TraceOp};

/// Whole-job failure schedule sweep (goodput per checkpoint policy).
fn goodput_sweep() -> serde_json::Value {
    let m = CostModel::icdcs24();
    let spec = zoo::gpt_22b();
    let job = JobShape {
        total_bytes: spec.total_bytes(),
        tensor_count: spec.layer_count() as u64,
        shards: 16,
        nodes: 2,
    };
    let profile = IterationProfile::from_total(zoo::gpt_iteration(&spec.name));
    let target = 2000u64;
    // A failure roughly every 10 minutes over the horizon.
    let failures: Vec<SimDuration> = (1..=12).map(|i| SimDuration::from_secs(i * 600)).collect();

    println!("Failure sweep — GPT-22.4B, {target} useful iterations, failures every ~10 min");
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>10} {:>12}",
        "Policy", "every", "total (s)", "lost it", "restores", "goodput it/h"
    );
    let mut rows = Vec::new();
    for every in [10u32, 26, 100, 500] {
        for policy in [
            Policy::TorchSave {
                every,
                backend: Backend::BeegfsPmem,
            },
            Policy::CheckFreq {
                every,
                backend: Backend::BeegfsPmem,
            },
            Policy::PortusAsync { every },
        ] {
            let cfg = TrainingConfig {
                job,
                profile,
                policy,
            };
            let out = run_with_failures(&m, &cfg, target, &failures);
            println!(
                "{:<14} {:>8} {:>12.0} {:>10} {:>10} {:>12.0}",
                policy.label(),
                every,
                out.total_time.as_secs_f64(),
                out.lost_iterations,
                out.restores,
                out.goodput() * 3600.0,
            );
            rows.push(serde_json::json!({
                "policy": policy.label(),
                "every": every,
                "total_seconds": out.total_time.as_secs_f64(),
                "lost_iterations": out.lost_iterations,
                "restores": out.restores,
                "goodput_per_hour": out.goodput() * 3600.0,
            }));
        }
        println!();
    }
    println!("shape: torch.save wants coarse intervals (overhead) but then loses big on");
    println!("failure; Portus-async keeps its goodput flat down to fine intervals.");
    serde_json::json!(rows)
}

/// Datapath fault-injection sweep against the real daemon: arm a fault
/// plan on the daemon NIC, run a burst of checkpoints, and read the
/// recovery counters off `SimStats`.
fn datapath_fault_sweep() -> serde_json::Value {
    let seed = 0xC0FFEE;
    let cases: [(&str, Option<FaultSpec>); 6] = [
        ("none", None),
        ("nth-1", Some(FaultSpec::Nth(1))),
        ("ratio-5", Some(FaultSpec::Ratio { permille: 5, seed })),
        ("ratio-50", Some(FaultSpec::Ratio { permille: 50, seed })),
        (
            "ratio-200",
            Some(FaultSpec::Ratio {
                permille: 200,
                seed,
            }),
        ),
        ("all", Some(FaultSpec::All)),
    ];
    let rounds = 8u64;

    println!();
    println!(
        "Datapath fault injection — real daemon, 64 x 256 KiB tensors, \
         {rounds} checkpoints per plan, {} retry rounds",
        DaemonConfig::default().verb_retries
    );
    println!(
        "{:<10} {:>4} {:>7} {:>12} {:>9} {:>10} {:>9} {:>13} {:>11} {:>11}",
        "plan",
        "ok",
        "failed",
        "failed verbs",
        "retries",
        "rollbacks",
        "rb fails",
        "mean ckpt ms",
        "p50 ms",
        "p99 ms"
    );
    let mut rows = Vec::new();
    for (label, fault) in cases {
        let ctx = portus_sim::SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).expect("daemon");
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        let mspec = test_spec("fault-sweep", 64, 256 * 1024);
        let model = ModelInstance::materialize(&mspec, &gpu, 42, Materialization::Owned)
            .expect("materialize");
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).expect("register");
        if let Some(spec) = fault {
            fabric.arm_faults(NodeId(1), spec).expect("arm faults");
        }

        let before = ctx.stats.snapshot();
        let t0 = ctx.clock.now();
        let (mut ok, mut failed) = (0u64, 0u64);
        for _ in 0..rounds {
            match client.checkpoint("fault-sweep") {
                Ok(_) => ok += 1,
                Err(PortusError::DatapathFailed { .. }) => failed += 1,
                Err(e) => panic!("unexpected checkpoint error: {e}"),
            }
        }
        let elapsed = ctx.clock.now().saturating_since(t0);
        let d = ctx.stats.snapshot().since(&before);
        let mean_ms = elapsed.as_secs_f64() * 1e3 / rounds as f64;
        // Tail latency of the successful checkpoints, from the daemon's
        // per-stage histograms (virtual time; empty when every round
        // failed, e.g. under the `all` plan).
        let metrics = ctx.metrics.snapshot();
        let (p50_ms, p99_ms) = metrics
            .stage(TraceOp::Checkpoint, Stage::Total)
            .map_or((0.0, 0.0), |h| (h.p50() as f64 / 1e6, h.p99() as f64 / 1e6));
        println!(
            "{:<10} {:>4} {:>7} {:>12} {:>9} {:>10} {:>9} {:>13.3} {:>11.3} {:>11.3}",
            label,
            ok,
            failed,
            d.failed_verbs,
            d.retried_verbs,
            d.rolled_back_slots,
            metrics.rollback_failures,
            mean_ms,
            p50_ms,
            p99_ms
        );
        rows.push(serde_json::json!({
            "plan": label,
            "checkpoints_ok": ok,
            "checkpoints_failed": failed,
            "failed_verbs": d.failed_verbs,
            "retried_verbs": d.retried_verbs,
            "rolled_back_slots": d.rolled_back_slots,
            "rollback_failures": metrics.rollback_failures,
            "mean_checkpoint_ms": mean_ms,
            "p50_checkpoint_ms": p50_ms,
            "p99_checkpoint_ms": p99_ms,
        }));
        drop(client);
        daemon.shutdown();
    }
    println!("shape: sparse faults are absorbed by per-WQE retries at a small time cost;");
    println!("only a saturated fabric fails checkpoints, and every failure rolls back.");
    serde_json::json!(rows)
}

/// Fault injection against the **striped** datapath: the same ratio
/// plan swept over QP counts. Retries keep lane affinity and a failed
/// checkpoint still rolls its slot back exactly once, so the recovery
/// counters must stay flat while the checkpoint time falls.
fn striped_fault_sweep() -> serde_json::Value {
    let seed = 0xC0FFEE;
    let rounds = 8u64;
    println!();
    println!(
        "Striped datapath under Ratio(50‰) faults — 64 x 256 KiB tensors, \
         {rounds} checkpoints per QP count"
    );
    println!(
        "{:<5} {:>4} {:>7} {:>12} {:>9} {:>10} {:>13} {:>9}",
        "qps", "ok", "failed", "failed verbs", "retries", "rollbacks", "mean ckpt ms", "overlap"
    );
    let mut rows = Vec::new();
    for qps in [1usize, 2, 4, 8] {
        let ctx = portus_sim::SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic_with_engines(NodeId(0), qps);
        fabric.add_nic_with_engines(NodeId(1), qps);
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 256 << 20);
        let cfg = DaemonConfig {
            qps_per_connection: qps,
            ..DaemonConfig::default()
        };
        let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).expect("daemon");
        let gpu = GpuDevice::new(ctx.clone(), 0, 1 << 30);
        let mspec = test_spec("qp-sweep", 64, 256 * 1024);
        let model = ModelInstance::materialize(&mspec, &gpu, 42, Materialization::Owned)
            .expect("materialize");
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).expect("register");
        fabric
            .arm_faults(NodeId(1), FaultSpec::Ratio { permille: 50, seed })
            .expect("arm faults");

        let before = ctx.stats.snapshot();
        let t0 = ctx.clock.now();
        let (mut ok, mut failed) = (0u64, 0u64);
        for _ in 0..rounds {
            match client.checkpoint("qp-sweep") {
                Ok(_) => ok += 1,
                Err(PortusError::DatapathFailed { .. }) => failed += 1,
                Err(e) => panic!("unexpected checkpoint error: {e}"),
            }
        }
        let elapsed = ctx.clock.now().saturating_since(t0);
        let d = ctx.stats.snapshot().since(&before);
        let mean_ms = elapsed.as_secs_f64() * 1e3 / rounds as f64;
        let overlap = ctx.metrics.snapshot().pipeline_overlap_permille;
        println!(
            "{:<5} {:>4} {:>7} {:>12} {:>9} {:>10} {:>13.3} {:>8.1}%",
            qps,
            ok,
            failed,
            d.failed_verbs,
            d.retried_verbs,
            d.rolled_back_slots,
            mean_ms,
            overlap as f64 / 10.0
        );
        rows.push(serde_json::json!({
            "qps": qps,
            "checkpoints_ok": ok,
            "checkpoints_failed": failed,
            "failed_verbs": d.failed_verbs,
            "retried_verbs": d.retried_verbs,
            "rolled_back_slots": d.rolled_back_slots,
            "mean_checkpoint_ms": mean_ms,
            "pipeline_overlap_permille": overlap,
        }));
        drop(client);
        daemon.shutdown();
    }
    println!("shape: striping shortens the checkpoint without changing the fault story —");
    println!("every retry stays on its lane, every exhausted WQE still rolls back once.");
    serde_json::json!(rows)
}

/// Daemon-loss sweep on the fleet simulation: kill one daemon
/// mid-checkpoint and compare replication factors. At k=1 every
/// checkpoint whose only copy lived on the dead daemon is gone; at
/// k=2 the surviving replica keeps every client at zero validated
/// loss while the recovery epoch fences the dead daemon's in-flight
/// writes and re-replicates its stripes onto survivors.
fn daemon_kill_sweep() -> serde_json::Value {
    let m = CostModel::icdcs24();
    let fleet = |k: usize| {
        let mut cfg = FleetConfig::uniform(
            4,
            4,
            JobShape::single(1 << 30, 64),
            IterationProfile::from_total(SimDuration::from_millis(350)),
            Policy::PortusSync { every: 10 },
            60,
        );
        cfg.seed = 7;
        cfg.with_placement(PlacementConfig::mirrored(k))
    };
    // Aim the kill at the midpoint of client-0's second checkpoint
    // pull (located on a kill-free dry run) and point it at client-0's
    // rendezvous primary — a genuinely mid-checkpoint loss on a daemon
    // that holds checkpoints that matter.
    let dry = run_fleet(&m, &fleet(1));
    let span = dry
        .spans
        .iter()
        .filter(|s| s.model == "client-0" && s.op == TraceOp::Checkpoint && s.stage == Stage::Total)
        .nth(1)
        .expect("client-0 checkpoints at least twice");
    let at = (span.start + span.end.saturating_since(span.start) / 2)
        .saturating_since(portus_sim::SimTime::ZERO);
    let victim = replica_set("client-0", &[true; 4], 1)[0];

    println!();
    println!(
        "Daemon-loss sweep — 4 clients / 4 daemons, 1 GiB jobs, kill daemon {victim} at {:.1} s",
        at.as_secs_f64()
    );
    println!(
        "{:<9} {:>11} {:>7} {:>8} {:>13} {:>10} {:>9} {:>10}",
        "replicas",
        "lost ckpts",
        "fenced",
        "repairs",
        "repair bytes",
        "failovers",
        "lost it",
        "zero-loss"
    );
    let mut rows = Vec::new();
    for k in [1usize, 2] {
        let cfg = fleet(k).with_kill(victim, at);
        let out = run_fleet(&m, &cfg);
        let report = daemon_loss_report(&cfg, &out);
        println!(
            "{:<9} {:>11} {:>7} {:>8} {:>13} {:>10} {:>9} {:>10}",
            k,
            report.failed_checkpoints,
            report.fenced_active,
            report.repairs,
            report.repair_bytes,
            report.restore_failovers,
            report.lost_iterations,
            if report.zero_loss { "yes" } else { "no" },
        );
        rows.push(serde_json::json!({
            "replicas": k,
            "killed": report.killed,
            "failed_checkpoints": report.failed_checkpoints,
            "fenced_active": report.fenced_active,
            "repairs": report.repairs,
            "repair_bytes": report.repair_bytes,
            "restore_failovers": report.restore_failovers,
            "lost_iterations": report.lost_iterations,
            "zero_loss": report.zero_loss,
            "makespan_seconds": out.makespan.as_secs_f64(),
            "recovery_epoch": out.epoch,
        }));
    }
    println!("shape: one replica loses whatever only the dead daemon held; two replicas");
    println!("fence, repair onto survivors, and lose nothing validated.");
    serde_json::json!(rows)
}

fn main() {
    let goodput = goodput_sweep();
    let faults = datapath_fault_sweep();
    let striped = striped_fault_sweep();
    let kills = daemon_kill_sweep();
    let path = portus_bench::write_experiment(
        "failure_sweep",
        &serde_json::json!({
            "goodput": goodput,
            "datapath_faults": faults,
            "striped_datapath_faults": striped,
            "daemon_kills": kills,
        }),
    );
    println!("wrote {}", path.display());
}
