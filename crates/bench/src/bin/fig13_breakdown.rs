//! Fig. 13: breakdown of the BERT checkpoint time across the three
//! systems — real data plane for the baselines, measured phases for
//! Portus. Run with `--release`.
//!
//! Paper: serialization + cuMemcpy contribute 46.5 % of ext4-NVMe and
//! 57.2 % of BeeGFS-PMem; the local block path is 53.7 % of ext4-NVMe;
//! RDMA dominates Portus.

use portus_bench::realplane;
use portus_dnn::zoo;

fn main() {
    let spec = zoo::bert_large();

    eprintln!("running BERT on the three systems (real data plane)...");
    let beegfs = realplane::bert_beegfs_breakdown(&spec);
    let ext4 = realplane::bert_ext4_breakdown(&spec);
    // The traced variant derives the persist/checksum phases from the
    // recorded spans (cross-checked against the stats counters) and
    // hands back the run as Chrome trace-event JSON.
    let (portus, trace_json) = realplane::portus_breakdown_traced(&spec);

    println!("Fig. 13 — BERT checkpoint breakdown (virtual seconds)");
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "System", "cuMemcpy", "serialize", "transmit", "media", "metadata", "total"
    );
    for (label, bd) in [("BeeGFS-PMEM", &beegfs), ("ext4-NVMe", &ext4)] {
        println!(
            "{:<14} {:>9.3} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>9.3}",
            label,
            bd.gpu_copy.as_secs_f64(),
            bd.serialize.as_secs_f64(),
            bd.transmit.as_secs_f64(),
            bd.persist.as_secs_f64(),
            bd.metadata.as_secs_f64(),
            bd.total().as_secs_f64(),
        );
    }
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9.3}   (all RDMA)",
        "Portus", "-", "-", "-", "-", "-", portus.total
    );
    println!(
        "\nPortus phases: pull {:.3}s, persist {:.3}s, checksum {:.3}s \
         ({} WQEs in {} doorbell batches, {} coalesced WQEs / {} MiB)",
        portus.pull,
        portus.persist,
        portus.checksum,
        portus.posted_verbs,
        portus.doorbell_batches,
        portus.coalesced_verbs,
        portus.coalesced_bytes >> 20,
    );

    // QP-striping sweep: the same checkpoint with the doorbell batch
    // striped across 1..8 lane-pinned QPs, the persist+checksum seal
    // pipelining behind the fabric once qps > 1.
    eprintln!("sweeping QP striping (1..8 lanes)...");
    let (qp_points, qp4_trace) = realplane::portus_qp_sweep(&spec, &[1, 2, 4, 8]);
    println!("\nQP striping sweep — same BERT checkpoint, striped datapath");
    println!(
        "{:<5} {:>10} {:>10} {:>10} {:>9} {:>7} {:>10}",
        "qps", "total (s)", "persist", "checksum", "overlap", "WQEs", "doorbells"
    );
    for p in &qp_points {
        println!(
            "{:<5} {:>10.4} {:>10.4} {:>10.4} {:>8.1}% {:>7} {:>10}",
            p.qps,
            p.total,
            p.persist,
            p.checksum,
            p.overlap_permille as f64 / 10.0,
            p.posted_verbs,
            p.doorbell_batches,
        );
    }
    println!(
        "shape: with one QP the seal runs after the pulls (overlap 0%); striped lanes\n\
         drain while earlier runs persist and checksum, so the seal hides in the fabric."
    );

    let serial_memcpy_beegfs =
        (beegfs.gpu_copy + beegfs.serialize).as_secs_f64() / beegfs.total().as_secs_f64();
    let serial_memcpy_ext4 =
        (ext4.gpu_copy + ext4.serialize).as_secs_f64() / ext4.total().as_secs_f64();
    let block_share_ext4 = ext4.persist.as_secs_f64() / ext4.total().as_secs_f64();
    println!(
        "\nserialize+cuMemcpy share: BeeGFS {:.1}% (paper 57.2%), ext4 {:.1}% (paper 46.5%)",
        serial_memcpy_beegfs * 100.0,
        serial_memcpy_ext4 * 100.0
    );
    println!(
        "ext4 block-path share: {:.1}% (paper 53.7%)",
        block_share_ext4 * 100.0
    );

    let path = portus_bench::write_experiment(
        "fig13_breakdown",
        &serde_json::json!({
            "beegfs": {
                "cu_memcpy": beegfs.gpu_copy.as_secs_f64(),
                "serialize": beegfs.serialize.as_secs_f64(),
                "transmit": beegfs.transmit.as_secs_f64(),
                "media": beegfs.persist.as_secs_f64(),
                "metadata": beegfs.metadata.as_secs_f64(),
                "serial_plus_memcpy_share": serial_memcpy_beegfs,
            },
            "ext4": {
                "cu_memcpy": ext4.gpu_copy.as_secs_f64(),
                "serialize": ext4.serialize.as_secs_f64(),
                "media": ext4.persist.as_secs_f64(),
                "metadata": ext4.metadata.as_secs_f64(),
                "serial_plus_memcpy_share": serial_memcpy_ext4,
                "block_share": block_share_ext4,
            },
            "portus": {
                "total": portus.total,
                "pull": portus.pull,
                "persist": portus.persist,
                "checksum": portus.checksum,
                "posted_verbs": portus.posted_verbs,
                "doorbell_batches": portus.doorbell_batches,
                "coalesced_verbs": portus.coalesced_verbs,
                "coalesced_bytes": portus.coalesced_bytes,
            },
            "portus_total": portus.total,
            "qp_sweep": qp_points,
        }),
    );
    println!("wrote {}", path.display());
    let trace_path = portus_bench::write_artifact("fig13_trace.json", &trace_json);
    println!(
        "wrote {} (load in chrome://tracing or Perfetto)",
        trace_path.display()
    );
    if let Some(qp4) = qp4_trace {
        let p = portus_bench::write_artifact("fig13_trace_qp4.json", &qp4);
        println!(
            "wrote {} (striped datapath, lane-tagged spans)",
            p.display()
        );
    }
}
