//! Fig. 15: overall GPT-22.4B training time / throughput under
//! CheckFreq vs Portus at a fine-grained checkpoint interval.
//!
//! Paper: Portus improves throughput by 2.6x.

use portus_bench::analytic;
use portus_sim::CostModel;

fn main() {
    let m = CostModel::icdcs24();
    let iterations = 520;
    let runs = analytic::fig15_runs(&m, iterations);
    println!(
        "Fig. 15 — GPT-22.4B, {} iterations, checkpoint every {} iterations",
        iterations,
        analytic::FIG15_INTERVAL
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>10}",
        "Policy", "total (s)", "stall (s)", "iters/hour", "util"
    );
    let mut json = Vec::new();
    for (label, run) in &runs {
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>14.0} {:>9.1}%",
            label,
            run.elapsed.as_secs_f64(),
            run.checkpoint_stall.as_secs_f64(),
            run.throughput() * 3600.0,
            run.avg_utilization() * 100.0
        );
        json.push(serde_json::json!({
            "policy": label,
            "total_seconds": run.elapsed.as_secs_f64(),
            "stall_seconds": run.checkpoint_stall.as_secs_f64(),
            "throughput_iters_per_sec": run.throughput(),
            "utilization": run.avg_utilization(),
        }));
    }
    let cf = &runs[0].1;
    let pa = &runs[2].1;
    println!(
        "\nPortus-async vs CheckFreq throughput: {:.2}x   (paper: 2.6x)",
        pa.throughput() / cf.throughput()
    );
    let path = portus_bench::write_experiment("fig15_throughput", &serde_json::json!(json));
    println!("wrote {}", path.display());
}
