//! Fig. 11: checkpointing time of the seven Table II models on Portus,
//! BeeGFS-PMem, and ext4-NVMe — with the **real data plane** (every
//! byte of every model actually moves). Run with `--release`.
//!
//! Paper: Portus averages 8.49x over BeeGFS-PMem and 8.18x over
//! ext4-NVMe, peaking at 9.23x on ResNet50.

use portus_bench::realplane;
use portus_dnn::zoo;

fn main() {
    println!("Fig. 11 — checkpoint time (virtual seconds, real data plane)");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Model", "Portus", "BeeGFS", "ext4", "vs BGFS", "vs ext4"
    );
    let mut rows = Vec::new();
    let (mut sum_b, mut sum_e) = (0.0, 0.0);
    for card in zoo::table2_cards() {
        eprintln!(
            "  running {} ({} MiB)...",
            card.spec.name,
            card.spec.total_bytes() >> 20
        );
        let cmp = realplane::compare_systems(&card.spec);
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9.3} {:>8.2}x {:>8.2}x",
            cmp.model,
            cmp.portus_ckpt,
            cmp.beegfs_ckpt,
            cmp.ext4_ckpt,
            cmp.ckpt_speedup_beegfs(),
            cmp.ckpt_speedup_ext4(),
        );
        sum_b += cmp.ckpt_speedup_beegfs();
        sum_e += cmp.ckpt_speedup_ext4();
        rows.push(cmp);
    }
    let n = rows.len() as f64;
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>8.2}x {:>8.2}x   (paper: 8.49x / 8.18x)",
        "average",
        "",
        "",
        "",
        sum_b / n,
        sum_e / n
    );
    let path = portus_bench::write_experiment(
        "fig11_checkpoint",
        &serde_json::to_value(&rows).expect("serialize"),
    );
    println!("wrote {}", path.display());
}
