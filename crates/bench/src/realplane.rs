//! Real-data-plane experiment runners.
//!
//! These drive the actual system: a model's bytes live in simulated GPU
//! memory, Portus pulls them over the simulated fabric into simulated
//! PMem, and the baselines run their full copy/serialize/write
//! pipelines. Virtual time is read off the shared clock; the bytes are
//! verified end to end by the integration tests.

use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_dnn::{Materialization, ModelInstance, ModelSpec};
use portus_mem::{GpuDevice, HostMemory};
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::{SimContext, SimDuration, Stage, TraceOp};
use portus_storage::{
    Beegfs, CheckpointBreakdown, Ext4Nvme, FileBackend, RestoreBreakdown, TorchCheckpointer,
};
use serde::Serialize;

/// Measured checkpoint+restore times of one model on all three systems
/// (the per-model bars of Figs. 11 and 12).
#[derive(Debug, Clone, Serialize)]
pub struct SystemComparison {
    /// Model name.
    pub model: String,
    /// Checkpoint payload bytes.
    pub bytes: u64,
    /// Portus checkpoint (one-sided pull + persist), virtual seconds.
    pub portus_ckpt: f64,
    /// BeeGFS-PMem `torch.save`, virtual seconds.
    pub beegfs_ckpt: f64,
    /// ext4-NVMe `torch.save`, virtual seconds.
    pub ext4_ckpt: f64,
    /// Portus restore (one-sided push), virtual seconds.
    pub portus_restore: f64,
    /// BeeGFS-PMem `torch.load` with GDS, virtual seconds.
    pub beegfs_restore: f64,
    /// ext4-NVMe `torch.load` with GDS, virtual seconds.
    pub ext4_restore: f64,
}

impl SystemComparison {
    /// Checkpoint speedup of Portus over BeeGFS-PMem.
    pub fn ckpt_speedup_beegfs(&self) -> f64 {
        self.beegfs_ckpt / self.portus_ckpt
    }

    /// Checkpoint speedup of Portus over ext4-NVMe.
    pub fn ckpt_speedup_ext4(&self) -> f64 {
        self.ext4_ckpt / self.portus_ckpt
    }

    /// Restore speedup of Portus over BeeGFS-PMem.
    pub fn restore_speedup_beegfs(&self) -> f64 {
        self.beegfs_restore / self.portus_restore
    }

    /// Restore speedup of Portus over ext4-NVMe.
    pub fn restore_speedup_ext4(&self) -> f64 {
        self.ext4_restore / self.portus_restore
    }
}

/// Runs one model through Portus with real bytes; returns
/// (checkpoint, restore) virtual durations.
///
/// # Panics
///
/// Panics on any system error — harness code wants loud failures.
pub fn portus_times(spec: &ModelSpec) -> (SimDuration, SimDuration) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        2 * spec.total_bytes() + (64 << 20),
    );
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 * spec.total_bytes() + (1 << 30));
    let model =
        ModelInstance::materialize(spec, &gpu, 42, Materialization::Owned).expect("materialize");
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).expect("register");

    // Measure as clock deltas: the checkpoint covers DO_CHECKPOINT,
    // the pulls and the completion notification; the restore includes
    // the client-side re-registration of every tensor for remote write
    // (the paper's restore protocol, §III-F).
    let t0 = ctx.clock.now();
    client.checkpoint(&spec.name).expect("checkpoint");
    let t1 = ctx.clock.now();
    client.restore(&model).expect("restore");
    let t2 = ctx.clock.now();
    (t1.saturating_since(t0), t2.saturating_since(t1))
}

/// Measured phases of one Portus checkpoint on the posted-verb
/// datapath (the Portus row of Fig. 13), plus the doorbell/coalescing
/// counters that explain where the time went.
#[derive(Debug, Clone, Serialize)]
pub struct PortusBreakdown {
    /// Model name.
    pub model: String,
    /// Checkpoint payload bytes.
    pub bytes: u64,
    /// End-to-end checkpoint time (clock delta), virtual seconds.
    pub total: f64,
    /// One-sided RDMA pull phase (total minus persist/checksum),
    /// virtual seconds.
    pub pull: f64,
    /// Persist phase (cache-line flushes + fence), virtual seconds.
    pub persist: f64,
    /// Checksum/verify phase (PMem read-back), virtual seconds.
    pub checksum: f64,
    /// Gather WQEs posted to the daemon's queue pair.
    pub posted_verbs: u64,
    /// Doorbells rung (verb batches issued).
    pub doorbell_batches: u64,
    /// WQEs that coalesced more than one tensor.
    pub coalesced_verbs: u64,
    /// Bytes moved by multi-tensor (coalesced) WQEs.
    pub coalesced_bytes: u64,
}

/// Runs one checkpoint through Portus with real bytes and splits the
/// time into datapath phases using the daemon's `SimStats` counters.
///
/// # Panics
///
/// Panics on any system error — harness code wants loud failures.
pub fn portus_breakdown(spec: &ModelSpec) -> PortusBreakdown {
    portus_breakdown_traced(spec).0
}

/// As [`portus_breakdown`], but with span recording enabled: the
/// persist/checksum phase times are derived from the recorded spans
/// (cross-checked against the `persist_ns`/`checksum_ns` counters —
/// the two accountings must agree exactly on a deterministic run), and
/// the whole request comes back as Chrome trace-event JSON, renderable
/// in `chrome://tracing`/Perfetto.
///
/// # Panics
///
/// Panics on any system error, and if the span-derived phase totals
/// disagree with the stats counters.
pub fn portus_breakdown_traced(spec: &ModelSpec) -> (PortusBreakdown, String) {
    let ctx = SimContext::icdcs24();
    ctx.tracer.enable();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let pmem = PmemDevice::new(
        ctx.clone(),
        PmemMode::DevDax,
        2 * spec.total_bytes() + (64 << 20),
    );
    let daemon =
        PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).expect("daemon");
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 * spec.total_bytes() + (1 << 30));
    let model =
        ModelInstance::materialize(spec, &gpu, 42, Materialization::Owned).expect("materialize");
    let client = PortusClient::connect(&daemon, compute);
    client.register_model(&model).expect("register");

    let before = ctx.stats.snapshot();
    let t0 = ctx.clock.now();
    client.checkpoint(&spec.name).expect("checkpoint");
    let total = ctx.clock.now().saturating_since(t0);
    let d = ctx.stats.snapshot().since(&before);

    // Phase times from the recorded spans; the counter-based totals
    // must agree exactly — same virtual clock, same deterministic run.
    let stage_total = |stage: Stage| -> SimDuration {
        ctx.tracer
            .spans()
            .iter()
            .filter(|s| s.op == TraceOp::Checkpoint && s.stage == stage)
            .map(|s| s.duration())
            .sum()
    };
    let persist = stage_total(Stage::Persist);
    let checksum = stage_total(Stage::Checksum);
    assert_eq!(
        persist.as_nanos(),
        d.persist_ns,
        "span-derived persist time must match the persist_ns counter"
    );
    assert_eq!(
        checksum.as_nanos(),
        d.checksum_ns,
        "span-derived checksum time must match the checksum_ns counter"
    );

    let trace_json = ctx.tracer.to_chrome_trace();
    let pull = total.saturating_sub(persist).saturating_sub(checksum);
    let breakdown = PortusBreakdown {
        model: spec.name.clone(),
        bytes: spec.total_bytes(),
        total: total.as_secs_f64(),
        pull: pull.as_secs_f64(),
        persist: persist.as_secs_f64(),
        checksum: checksum.as_secs_f64(),
        posted_verbs: d.posted_verbs,
        doorbell_batches: d.doorbell_batches,
        coalesced_verbs: d.coalesced_verbs,
        coalesced_bytes: d.coalesced_bytes,
    };
    (breakdown, trace_json)
}

/// One point of the QP-striping sweep: the same checkpoint on a pool
/// of `qps` lane-pinned queue pairs over `qps`-engine NICs.
#[derive(Debug, Clone, Serialize)]
pub struct QpSweepPoint {
    /// Queue pairs per connection (= NIC DMA engines on both ends).
    pub qps: usize,
    /// End-to-end checkpoint time (clock delta), virtual seconds.
    pub total: f64,
    /// Persist stage service time (from the `persist_ns` counter),
    /// virtual seconds. Overlapped with the fabric when `qps > 1`.
    pub persist: f64,
    /// Checksum stage service time, virtual seconds.
    pub checksum: f64,
    /// Share of persist+checksum service granted while WQE completions
    /// were still draining, in permille (the pipeline-overlap gauge;
    /// 0 on the classic serial path).
    pub overlap_permille: u64,
    /// Gather WQEs posted.
    pub posted_verbs: u64,
    /// Doorbells rung — one per lane per round when striping.
    pub doorbell_batches: u64,
}

/// Runs one checkpoint per entry of `qps_list`, each in a fresh world
/// whose NICs have as many DMA engines as the connection has QPs, and
/// reports how the total shrinks as the doorbell batch stripes across
/// lanes and the persist+checksum seal pipelines behind the fabric.
/// The first checkpoint of each world is traced; the `qps = 4` trace
/// (if present) is returned alongside for Chrome-trace inspection.
///
/// # Panics
///
/// Panics on any system error — harness code wants loud failures.
pub fn portus_qp_sweep(
    spec: &ModelSpec,
    qps_list: &[usize],
) -> (Vec<QpSweepPoint>, Option<String>) {
    let mut points = Vec::new();
    let mut qp4_trace = None;
    for &qps in qps_list {
        let ctx = SimContext::icdcs24();
        ctx.tracer.enable();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic_with_engines(NodeId(0), qps);
        fabric.add_nic_with_engines(NodeId(1), qps);
        let pmem = PmemDevice::new(
            ctx.clone(),
            PmemMode::DevDax,
            2 * spec.total_bytes() + (64 << 20),
        );
        let cfg = DaemonConfig {
            qps_per_connection: qps,
            ..DaemonConfig::default()
        };
        let daemon = PortusDaemon::start(&fabric, NodeId(1), pmem, cfg).expect("daemon");
        let gpu = GpuDevice::new(ctx.clone(), 0, 2 * spec.total_bytes() + (1 << 30));
        let model = ModelInstance::materialize(spec, &gpu, 42, Materialization::Owned)
            .expect("materialize");
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).expect("register");

        let before = ctx.stats.snapshot();
        let t0 = ctx.clock.now();
        client.checkpoint(&spec.name).expect("checkpoint");
        let total = ctx.clock.now().saturating_since(t0);
        let d = ctx.stats.snapshot().since(&before);
        if qps == 4 {
            qp4_trace = Some(ctx.tracer.to_chrome_trace());
        }
        points.push(QpSweepPoint {
            qps,
            total: total.as_secs_f64(),
            persist: SimDuration::from_nanos(d.persist_ns).as_secs_f64(),
            checksum: SimDuration::from_nanos(d.checksum_ns).as_secs_f64(),
            overlap_permille: ctx.metrics.snapshot().pipeline_overlap_permille,
            posted_verbs: d.posted_verbs,
            doorbell_batches: d.doorbell_batches,
        });
        drop(client);
        daemon.shutdown();
    }
    (points, qp4_trace)
}

/// Runs one model through a `torch.save`/`torch.load(GDS)` baseline with
/// real bytes; returns the breakdowns.
///
/// # Panics
///
/// Panics on any system error.
pub fn baseline_times(
    spec: &ModelSpec,
    backend: &dyn FileBackend,
    ctx: &SimContext,
) -> (CheckpointBreakdown, RestoreBreakdown) {
    let gpu = GpuDevice::new(ctx.clone(), 0, 2 * spec.total_bytes() + (1 << 30));
    let host = HostMemory::new(ctx.clone(), 2 * spec.total_bytes() + (1 << 30));
    let model =
        ModelInstance::materialize(spec, &gpu, 42, Materialization::Owned).expect("materialize");
    let saver = TorchCheckpointer::new(ctx.clone(), backend, gpu, host);
    let path = format!("{}.ckpt", spec.name);
    let ckpt = saver.checkpoint(&model, &path).expect("checkpoint");
    let restore = saver.restore(&model, &path, true).expect("restore");
    backend.delete(&path);
    (ckpt, restore)
}

/// Full three-system comparison for one model (one row of Figs. 11/12).
///
/// # Panics
///
/// Panics on any system error.
pub fn compare_systems(spec: &ModelSpec) -> SystemComparison {
    let (p_ckpt, p_restore) = portus_times(spec);

    let (b_ckpt, b_restore) = {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let fs = Beegfs::mount(
            &fabric,
            NodeId(0),
            NodeId(1),
            4 * spec.total_bytes() + (1 << 26),
        );
        baseline_times(spec, &fs, &ctx)
    };

    let (e_ckpt, e_restore) = {
        let ctx = SimContext::icdcs24();
        let fs = Ext4Nvme::new(ctx.clone(), 4 * spec.total_bytes() + (1 << 26));
        baseline_times(spec, &fs, &ctx)
    };

    SystemComparison {
        model: spec.name.clone(),
        bytes: spec.total_bytes(),
        portus_ckpt: p_ckpt.as_secs_f64(),
        beegfs_ckpt: b_ckpt.total().as_secs_f64(),
        ext4_ckpt: e_ckpt.total().as_secs_f64(),
        portus_restore: p_restore.as_secs_f64(),
        beegfs_restore: b_restore.total().as_secs_f64(),
        ext4_restore: e_restore.total().as_secs_f64(),
    }
}

/// Table I / Fig. 13 with real bytes: the BERT checkpoint breakdown on
/// the BeeGFS-PMem baseline.
///
/// # Panics
///
/// Panics on any system error.
pub fn bert_beegfs_breakdown(spec: &ModelSpec) -> CheckpointBreakdown {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    fabric.add_nic(NodeId(0));
    fabric.add_nic(NodeId(1));
    let fs = Beegfs::mount(
        &fabric,
        NodeId(0),
        NodeId(1),
        4 * spec.total_bytes() + (1 << 26),
    );
    let (ckpt, _) = baseline_times(spec, &fs, &ctx);
    ckpt
}

/// Fig. 13's ext4-NVMe column with real bytes.
///
/// # Panics
///
/// Panics on any system error.
pub fn bert_ext4_breakdown(spec: &ModelSpec) -> CheckpointBreakdown {
    let ctx = SimContext::icdcs24();
    let fs = Ext4Nvme::new(ctx.clone(), 4 * spec.total_bytes() + (1 << 26));
    let (ckpt, _) = baseline_times(spec, &fs, &ctx);
    ckpt
}
