//! Criterion benchmark for the index structures: the in-DRAM red-black
//! ModelMap and the persistent allocator + MIndex operations.

use criterion::{criterion_group, criterion_main, Criterion};
use portus::{Index, ModelMap};
use portus_dnn::{DType, TensorMeta};
use portus_pmem::{PmemDevice, PmemMode};
use portus_sim::SimContext;

fn bench_model_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_map");

    group.bench_function("insert_1000", |b| {
        b.iter(|| {
            let mut map = ModelMap::new();
            for i in 0..1000u64 {
                map.insert(format!("model-{i:04}"), i);
            }
            map
        });
    });

    let mut map = ModelMap::new();
    for i in 0..1000u64 {
        map.insert(format!("model-{i:04}"), i);
    }
    group.bench_function("lookup_hit", |b| {
        b.iter(|| map.get("model-0777"));
    });
    group.bench_function("ordered_walk", |b| {
        b.iter(|| map.iter().count());
    });
    group.finish();
}

fn bench_persistent_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistent_index");
    group.sample_size(20);

    let metas: Vec<TensorMeta> = (0..64)
        .map(|i| TensorMeta::new(format!("layer{i}.weight"), DType::F32, vec![1024]))
        .collect();

    // Steady-state create+remove cycle: criterion's warm-up runs tens of
    // thousands of iterations, which would exhaust any fixed ModelTable.
    group.bench_function("create_and_remove_model_64_layers", |b| {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 30);
        let index = Index::format(dev, 64, 256).unwrap();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let mi = index.create_model(&format!("m{n}"), &metas).unwrap();
            index.remove_model(&mi).unwrap();
        });
    });

    group.bench_function("load_mindex_64_layers", |b| {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 26);
        let index = Index::format(dev, 64, 256).unwrap();
        let mi = index.create_model("m", &metas).unwrap();
        b.iter(|| index.load_mindex(mi.offset).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_model_map, bench_persistent_index);
criterion_main!(benches);
