//! Criterion microbenchmark for the Fig. 10 datapath: one-sided RDMA
//! reads/writes between the four device pairs at several message sizes.
//! (Wall-clock numbers benchmark the simulator itself; the *virtual*
//! Fig. 10 series is produced by `cargo run --bin fig10_datapath`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use portus_mem::{Buffer, MemorySegment};
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Access, Fabric, NodeId, QueuePair, RegionTarget};
use portus_sim::{MemoryKind, SimContext};

fn bench_datapath(c: &mut Criterion) {
    let ctx = SimContext::icdcs24();
    let fabric = Fabric::new(ctx.clone());
    let compute = fabric.add_nic(NodeId(0));
    let storage = fabric.add_nic(NodeId(1));

    let max = 4usize << 20;
    let gpu = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(max as u64, 7));
    // A separate writable GPU region for the restore direction (the
    // synthetic read-path buffer is read-only).
    let gpu_writable = Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(max as u64));
    let dram = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(max as u64));
    let mr_gpu = compute.register(RegionTarget::Buffer(gpu), Access::READ);
    let mr_gpu_w = compute.register(RegionTarget::Buffer(gpu_writable), Access::WRITE);
    let mr_dram = compute.register(RegionTarget::Buffer(dram), Access::READ_WRITE);
    let pmem = PmemDevice::new(ctx, PmemMode::DevDax, (max as u64) * 2);
    let dst = RegionTarget::Pmem {
        dev: pmem,
        base: 0,
        len: max as u64,
    };

    let (_qc, qs) = QueuePair::connect(compute, storage);

    let mut group = c.benchmark_group("fig10_datapath");
    for size in [64usize << 10, 1 << 20, 4 << 20] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("read_gpu_to_pmem", size),
            &size,
            |b, &s| {
                b.iter(|| qs.read(mr_gpu.rkey(), 0, &dst, 0, s as u64).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read_dram_to_pmem", size),
            &size,
            |b, &s| {
                b.iter(|| qs.read(mr_dram.rkey(), 0, &dst, 0, s as u64).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("write_pmem_to_gpu", size),
            &size,
            |b, &s| {
                b.iter(|| qs.write(mr_gpu_w.rkey(), 0, &dst, 0, s as u64).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
