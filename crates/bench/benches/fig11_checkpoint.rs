//! Criterion benchmark for the Fig. 11 checkpoint operation: Portus vs
//! the two baselines on a scaled-down model with the full real data
//! plane. (The full-size virtual-time Fig. 11 table comes from
//! `cargo run --release --bin fig11_checkpoint`.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use portus::{DaemonConfig, PortusClient, PortusDaemon};
use portus_bench::realplane;
use portus_dnn::{test_spec, Materialization, ModelInstance};
use portus_mem::GpuDevice;
use portus_pmem::{PmemDevice, PmemMode};
use portus_rdma::{Fabric, NodeId};
use portus_sim::SimContext;

fn bench_checkpoint(c: &mut Criterion) {
    // 16 MiB model: large enough to exercise bulk paths, small enough
    // to iterate.
    let spec = test_spec("bench-model", 32, 512 * 1024);
    let bytes = spec.total_bytes();

    let mut group = c.benchmark_group("fig11_checkpoint");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("portus_checkpoint", |b| {
        let ctx = SimContext::icdcs24();
        let fabric = Fabric::new(ctx.clone());
        let compute = fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(1));
        let pmem = PmemDevice::new(ctx.clone(), PmemMode::DevDax, 4 * bytes + (64 << 20));
        let daemon =
            PortusDaemon::start(&fabric, NodeId(1), pmem, DaemonConfig::default()).unwrap();
        let gpu = GpuDevice::new(ctx, 0, 2 * bytes + (1 << 28));
        let model = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let client = PortusClient::connect(&daemon, compute);
        client.register_model(&model).unwrap();
        b.iter(|| client.checkpoint(&spec.name).unwrap());
    });

    group.bench_function("beegfs_torch_save", |b| {
        b.iter(|| {
            let ctx = SimContext::icdcs24();
            let fabric = portus_rdma::Fabric::new(ctx.clone());
            fabric.add_nic(NodeId(0));
            fabric.add_nic(NodeId(1));
            let fs = portus_storage::Beegfs::mount(&fabric, NodeId(0), NodeId(1), 4 * bytes);
            realplane::baseline_times(&spec, &fs, &ctx)
        });
    });

    group.bench_function("ext4_torch_save", |b| {
        b.iter(|| {
            let ctx = SimContext::icdcs24();
            let fs = portus_storage::Ext4Nvme::new(ctx.clone(), 4 * bytes);
            realplane::baseline_times(&spec, &fs, &ctx)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
