//! Criterion benchmark for the torch.save-style container codec — the
//! serializer the baselines pay per checkpoint (and the one Portus
//! only pays offline, in `portusctl dump`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use portus_dnn::{DType, TensorMeta};
use portus_format::{read_checkpoint, write_checkpoint, CheckpointEntry, PayloadSource};

fn entries(n: usize, bytes_each: usize) -> Vec<CheckpointEntry> {
    (0..n)
        .map(|i| CheckpointEntry {
            meta: TensorMeta::new(
                format!("layer{i}.weight"),
                DType::F32,
                vec![bytes_each as u64 / 4],
            ),
            data: PayloadSource::Bytes(vec![(i % 251) as u8; bytes_each]),
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_codec");
    let es = entries(64, 256 * 1024); // 16 MiB payload
    let payload: u64 = es.iter().map(|e| e.data.len()).sum();
    group.throughput(Throughput::Bytes(payload));

    group.bench_function("encode_16mib", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(payload as usize + 8192);
            write_checkpoint(&mut out, "bench", &es).unwrap();
            out
        });
    });

    let mut encoded = Vec::new();
    write_checkpoint(&mut encoded, "bench", &es).unwrap();
    group.bench_function("decode_16mib", |b| {
        b.iter(|| read_checkpoint(&encoded[..]).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
