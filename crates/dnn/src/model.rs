//! Model specifications and GPU-resident model instances.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use portus_mem::{GpuDevice, MemResult};

use crate::{DType, GpuTensor, TensorMeta};

/// The static description of a model: an ordered list of named tensors.
/// Fixed for the lifetime of a training job — the property Portus
/// exploits to pre-build the checkpoint structure on PMem (§III-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (the ModelTable key).
    pub name: String,
    /// Ordered tensors ("layers" in the paper's terminology).
    pub tensors: Vec<TensorMeta>,
}

impl ModelSpec {
    /// Creates a spec from a name and tensor list.
    pub fn new(name: impl Into<String>, tensors: Vec<TensorMeta>) -> ModelSpec {
        ModelSpec {
            name: name.into(),
            tensors,
        }
    }

    /// Number of tensors.
    pub fn layer_count(&self) -> usize {
        self.tensors.len()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> u64 {
        self.tensors.iter().map(TensorMeta::numel).sum()
    }

    /// Total checkpoint payload in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tensors.iter().map(TensorMeta::size_bytes).sum()
    }

    /// A copy of this spec under a new name (used when sharding).
    pub fn renamed(&self, name: impl Into<String>) -> ModelSpec {
        ModelSpec {
            name: name.into(),
            tensors: self.tensors.clone(),
        }
    }
}

/// How an instance's tensor bytes are backed on the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialization {
    /// Real, writable bytes — required by correctness tests and by
    /// [`ModelInstance::train_step`].
    Owned,
    /// Deterministic synthetic content, O(1) host memory — used to stand
    /// in for models too large to hold (read-only).
    Synthetic,
}

/// A model whose tensors live in (simulated) GPU memory.
///
/// # Examples
///
/// ```
/// use portus_dnn::{zoo, Materialization, ModelInstance};
/// use portus_mem::GpuDevice;
/// use portus_sim::SimContext;
///
/// let gpu = GpuDevice::new(SimContext::icdcs24(), 0, 8 << 30);
/// let spec = zoo::resnet50();
/// let model = ModelInstance::materialize(&spec, &gpu, 42, Materialization::Synthetic)?;
/// assert_eq!(model.tensors().len(), spec.layer_count());
/// # Ok::<(), portus_mem::MemError>(())
/// ```
#[derive(Debug)]
pub struct ModelInstance {
    spec: ModelSpec,
    tensors: Vec<GpuTensor>,
    materialization: Materialization,
    step: u64,
    dirty: Vec<bool>,
}

impl ModelInstance {
    /// Allocates every tensor of `spec` on `gpu`. With
    /// [`Materialization::Synthetic`], tensor `i` gets deterministic
    /// content derived from `seed` and `i`; with
    /// [`Materialization::Owned`], tensors are zero-initialized and then
    /// deterministically filled.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (GPU out of memory).
    pub fn materialize(
        spec: &ModelSpec,
        gpu: &Arc<GpuDevice>,
        seed: u64,
        materialization: Materialization,
    ) -> MemResult<ModelInstance> {
        let mut tensors = Vec::with_capacity(spec.tensors.len());
        for (i, meta) in spec.tensors.iter().enumerate() {
            let tensor_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
            let buffer = match materialization {
                Materialization::Synthetic => {
                    gpu.alloc_synthetic(meta.size_bytes(), tensor_seed)?
                }
                Materialization::Owned => {
                    let buf = gpu.alloc(meta.size_bytes())?;
                    // Deterministic fill so checkpoints are verifiable.
                    fill_deterministic(&buf, tensor_seed);
                    buf
                }
            };
            tensors.push(GpuTensor::new(meta.clone(), buffer));
        }
        let dirty = vec![true; spec.tensors.len()];
        Ok(ModelInstance {
            spec: spec.clone(),
            tensors,
            materialization,
            step: 0,
            dirty,
        })
    }

    /// The static spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The GPU tensors, in spec order.
    pub fn tensors(&self) -> &[GpuTensor] {
        &self.tensors
    }

    /// How the bytes are backed.
    pub fn materialization(&self) -> Materialization {
        self.materialization
    }

    /// Training steps applied so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Simulates one parameter update (phase **U** of Fig. 8): mutates a
    /// deterministic slice of every tensor so successive checkpoints
    /// differ verifiably.
    ///
    /// # Panics
    ///
    /// Panics on synthetic instances (their content is read-only).
    pub fn train_step(&mut self) {
        let all: Vec<usize> = (0..self.tensors.len()).collect();
        self.train_step_sparse(&all);
    }

    /// Simulates a *sparse* parameter update touching only the listed
    /// tensors — the access pattern of embedding-heavy recommendation
    /// models, and what makes incremental (delta) checkpointing pay
    /// off. Out-of-range indices are ignored.
    ///
    /// # Panics
    ///
    /// Panics on synthetic instances (their content is read-only).
    pub fn train_step_sparse(&mut self, touched: &[usize]) {
        assert_eq!(
            self.materialization,
            Materialization::Owned,
            "cannot update a synthetic (read-only) model instance"
        );
        self.step += 1;
        for &i in touched.iter().filter(|&&i| i < self.tensors.len()) {
            self.dirty[i] = true;
            let t = &self.tensors[i];
            // Touch up to 64 bytes at a step-dependent offset.
            let len = t.buffer.len();
            if len == 0 {
                continue;
            }
            let window = 64.min(len);
            let offset =
                (self.step.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ (i as u64)) % (len - window + 1);
            let mut patch = [0u8; 64];
            for (j, b) in patch[..window as usize].iter_mut().enumerate() {
                *b = (self.step as u8)
                    .wrapping_add(i as u8)
                    .wrapping_add(j as u8);
            }
            t.buffer
                .write_at(offset, &patch[..window as usize])
                .expect("owned tensor is writable");
        }
    }

    /// Which tensors have been updated since the last
    /// [`ModelInstance::take_dirty`] (all `true` after materialization).
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }

    /// Returns the dirty mask and clears it — call when a checkpoint of
    /// the current state has been taken.
    pub fn take_dirty(&mut self) -> Vec<bool> {
        std::mem::replace(&mut self.dirty, vec![false; self.tensors.len()])
    }

    /// Checksums of every tensor, in spec order.
    pub fn tensor_checksums(&self) -> Vec<u64> {
        self.tensors.iter().map(GpuTensor::checksum).collect()
    }

    /// A combined checksum over all tensors.
    pub fn model_checksum(&self) -> u64 {
        self.tensor_checksums()
            .into_iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |acc, c| acc.rotate_left(13) ^ c)
    }

    /// Releases the GPU memory accounting for this instance's tensors.
    pub fn release(&self, gpu: &GpuDevice) {
        for t in &self.tensors {
            gpu.free(&t.buffer);
        }
    }
}

fn fill_deterministic(buf: &portus_mem::Buffer, seed: u64) {
    let mut chunk = [0u8; 4096];
    let mut pos = 0u64;
    let len = buf.len();
    while pos < len {
        let n = ((len - pos) as usize).min(chunk.len());
        for (j, b) in chunk[..n].iter_mut().enumerate() {
            let abs = pos + j as u64;
            *b = ((seed.wrapping_add(abs).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as u8;
        }
        buf.write_at(pos, &chunk[..n]).expect("in bounds");
        pos += n as u64;
    }
}

/// Creates a small synthetic spec for tests: `layers` tensors of
/// `bytes_per_layer` bytes each (F32, 1-D).
pub fn test_spec(name: &str, layers: usize, bytes_per_layer: u64) -> ModelSpec {
    assert_eq!(bytes_per_layer % 4, 0, "layer bytes must be f32-aligned");
    let tensors = (0..layers)
        .map(|i| {
            TensorMeta::new(
                format!("{name}.layer{i}.weight"),
                DType::F32,
                vec![bytes_per_layer / 4],
            )
        })
        .collect();
    ModelSpec::new(name, tensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_sim::SimContext;

    fn gpu() -> Arc<GpuDevice> {
        GpuDevice::new(SimContext::icdcs24(), 0, 4 << 30)
    }

    #[test]
    fn spec_accounting() {
        let spec = test_spec("m", 10, 4096);
        assert_eq!(spec.layer_count(), 10);
        assert_eq!(spec.total_bytes(), 40960);
        assert_eq!(spec.param_count(), 10240);
    }

    #[test]
    fn owned_instance_is_deterministic() {
        let gpu = gpu();
        let spec = test_spec("m", 4, 1024);
        let a = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned).unwrap();
        let b = ModelInstance::materialize(&spec, &gpu, 7, Materialization::Owned).unwrap();
        assert_eq!(a.model_checksum(), b.model_checksum());
        let c = ModelInstance::materialize(&spec, &gpu, 8, Materialization::Owned).unwrap();
        assert_ne!(a.model_checksum(), c.model_checksum());
    }

    #[test]
    fn train_step_changes_content() {
        let gpu = gpu();
        let spec = test_spec("m", 3, 512);
        let mut m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        let before = m.model_checksum();
        m.train_step();
        assert_ne!(m.model_checksum(), before);
        assert_eq!(m.step(), 1);
    }

    #[test]
    #[should_panic(expected = "synthetic")]
    fn train_step_on_synthetic_panics() {
        let gpu = gpu();
        let spec = test_spec("m", 1, 64);
        let mut m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Synthetic).unwrap();
        m.train_step();
    }

    #[test]
    fn release_returns_memory() {
        let gpu = gpu();
        let spec = test_spec("m", 2, 2048);
        let m = ModelInstance::materialize(&spec, &gpu, 1, Materialization::Owned).unwrap();
        assert_eq!(gpu.allocated(), 4096);
        m.release(&gpu);
        assert_eq!(gpu.allocated(), 0);
    }
}
