//! Megatron-style tensor/pipeline parallel partitioning.
//!
//! Figure 1 of the paper: pipeline parallelism splits a model's layers
//! into contiguous stages; tensor parallelism splits each weight matrix
//! across ranks within a stage. Every (pipeline stage × tensor rank)
//! pair produces an independent *model shard* on its own GPU, and each
//! shard writes its own checkpoint — the workload that makes distributed
//! checkpointing hard (§II-A, Motivation 1).

use serde::{Deserialize, Serialize};

use crate::{ModelSpec, TensorMeta};

/// Degrees of parallelism of a training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Tensor-parallel width (splits weight matrices).
    pub tensor: u32,
    /// Pipeline-parallel depth (splits layers into stages).
    pub pipeline: u32,
    /// Data-parallel replicas. Replicas hold identical state, so only
    /// replica 0 checkpoints (as Megatron does).
    pub data: u32,
}

impl ParallelConfig {
    /// Single-GPU training.
    pub const SINGLE: ParallelConfig = ParallelConfig {
        tensor: 1,
        pipeline: 1,
        data: 1,
    };

    /// A tensor×pipeline grid with no data parallelism.
    pub fn grid(tensor: u32, pipeline: u32) -> ParallelConfig {
        ParallelConfig {
            tensor,
            pipeline,
            data: 1,
        }
    }

    /// GPUs used by the job.
    pub fn gpu_count(&self) -> u32 {
        self.tensor * self.pipeline * self.data
    }

    /// Shards that actually checkpoint (tensor × pipeline; data-parallel
    /// replicas share state).
    pub fn checkpointing_shards(&self) -> u32 {
        self.tensor * self.pipeline
    }
}

/// One model shard: the tensors owned by a specific (pp, tp) rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelShard {
    /// Pipeline stage index.
    pub pp_rank: u32,
    /// Tensor-parallel rank within the stage.
    pub tp_rank: u32,
    /// The shard's own spec; its name encodes the rank (the key this
    /// shard registers in the daemon's ModelTable).
    pub spec: ModelSpec,
}

/// Splits `spec` into `cfg.checkpointing_shards()` shards.
///
/// Pipeline stages take contiguous runs of tensors; within a stage,
/// tensor parallelism splits each tensor's leading dimension across TP
/// ranks (with remainder to the low ranks); tensors whose leading
/// dimension is smaller than the TP width are replicated onto rank 0
/// only, so the union of shards is exactly the model.
///
/// # Panics
///
/// Panics if any parallel degree is zero.
pub fn shard_model(spec: &ModelSpec, cfg: ParallelConfig) -> Vec<ModelShard> {
    assert!(
        cfg.tensor >= 1 && cfg.pipeline >= 1 && cfg.data >= 1,
        "parallel degrees must be >= 1"
    );
    let n = spec.tensors.len();
    let pp = cfg.pipeline as usize;
    let mut shards = Vec::with_capacity(cfg.checkpointing_shards() as usize);
    for pp_rank in 0..pp {
        // Contiguous, near-equal stage split.
        let start = n * pp_rank / pp;
        let end = n * (pp_rank + 1) / pp;
        let stage = &spec.tensors[start..end];
        for tp_rank in 0..cfg.tensor {
            let mut tensors = Vec::new();
            for t in stage {
                if let Some(part) = split_tensor(t, tp_rank, cfg.tensor) {
                    tensors.push(part);
                }
            }
            shards.push(ModelShard {
                pp_rank: pp_rank as u32,
                tp_rank,
                spec: ModelSpec::new(format!("{}/pp{}tp{}", spec.name, pp_rank, tp_rank), tensors),
            });
        }
    }
    shards
}

/// The slice of `t` owned by `tp_rank` out of `tp` ranks, or `None` if
/// this rank holds nothing of it.
fn split_tensor(t: &TensorMeta, tp_rank: u32, tp: u32) -> Option<TensorMeta> {
    if tp == 1 {
        return Some(t.clone());
    }
    let lead = *t.shape.first().unwrap_or(&1);
    if lead < tp as u64 {
        // Too small to split: replicate on rank 0 only.
        return (tp_rank == 0).then(|| t.clone());
    }
    let base = lead / tp as u64;
    let rem = lead % tp as u64;
    let mine = base + if (tp_rank as u64) < rem { 1 } else { 0 };
    if mine == 0 {
        return None;
    }
    let mut shape = t.shape.clone();
    shape[0] = mine;
    Some(TensorMeta::new(
        format!("{}.tp{tp_rank}", t.name),
        t.dtype,
        shape,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_spec;
    use crate::zoo;

    #[test]
    fn single_config_is_identity_shard() {
        let spec = test_spec("m", 10, 256);
        let shards = shard_model(&spec, ParallelConfig::SINGLE);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].spec.total_bytes(), spec.total_bytes());
    }

    #[test]
    fn shards_partition_all_bytes() {
        let spec = zoo::gpt_1_5b();
        for cfg in [
            ParallelConfig::grid(2, 2),
            ParallelConfig::grid(4, 2),
            ParallelConfig::grid(8, 2),
            ParallelConfig::grid(1, 4),
        ] {
            let shards = shard_model(&spec, cfg);
            assert_eq!(shards.len(), cfg.checkpointing_shards() as usize);
            let total: u64 = shards.iter().map(|s| s.spec.total_bytes()).sum();
            assert_eq!(total, spec.total_bytes(), "cfg {cfg:?} loses bytes");
        }
    }

    #[test]
    fn pipeline_stages_are_contiguous_and_cover() {
        let spec = test_spec("m", 7, 64);
        let shards = shard_model(&spec, ParallelConfig::grid(1, 3));
        let counts: Vec<usize> = shards.iter().map(|s| s.spec.layer_count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert!(counts.iter().all(|&c| c >= 2)); // 7 over 3 stages: 2/2/3-ish
    }

    #[test]
    fn tensor_split_balances_leading_dim() {
        let t = TensorMeta::new("w", crate::DType::F32, vec![10, 4]);
        let parts: Vec<_> = (0..4).filter_map(|r| split_tensor(&t, r, 4)).collect();
        let leads: Vec<u64> = parts.iter().map(|p| p.shape[0]).collect();
        assert_eq!(leads.iter().sum::<u64>(), 10);
        assert_eq!(leads, vec![3, 3, 2, 2]);
    }

    #[test]
    fn tiny_tensors_go_to_rank_zero() {
        let t = TensorMeta::new("bias", crate::DType::F32, vec![2]);
        assert!(split_tensor(&t, 0, 4).is_some());
        assert!(split_tensor(&t, 1, 4).is_none());
    }

    #[test]
    fn shard_names_encode_rank() {
        let spec = test_spec("gpt", 4, 64);
        let shards = shard_model(&spec, ParallelConfig::grid(2, 2));
        assert_eq!(shards[0].spec.name, "gpt/pp0tp0");
        assert_eq!(shards[3].spec.name, "gpt/pp1tp1");
    }

    #[test]
    fn gpu_count_accounting() {
        let cfg = ParallelConfig {
            tensor: 8,
            pipeline: 2,
            data: 1,
        };
        assert_eq!(cfg.gpu_count(), 16); // the paper's 16×A40 setup
        assert_eq!(cfg.checkpointing_shards(), 16);
    }
}
