//! Tensor element types.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Element type of a tensor, as stored in checkpoint metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit IEEE float.
    F16,
    /// bfloat16.
    BF16,
    /// 32-bit IEEE float (the checkpoint format of every model in the
    /// paper's evaluation).
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Unsigned byte.
    U8,
}

impl DType {
    /// Bytes per element.
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::U8 => 1,
        }
    }

    /// Stable numeric code used in on-media and on-wire encodings.
    pub fn code(self) -> u8 {
        match self {
            DType::F16 => 0,
            DType::BF16 => 1,
            DType::F32 => 2,
            DType::F64 => 3,
            DType::I32 => 4,
            DType::I64 => 5,
            DType::U8 => 6,
        }
    }

    /// Decodes a numeric code.
    pub fn from_code(code: u8) -> Option<DType> {
        Some(match code {
            0 => DType::F16,
            1 => DType::BF16,
            2 => DType::F32,
            3 => DType::F64,
            4 => DType::I32,
            5 => DType::I64,
            6 => DType::U8,
            _ => return None,
        })
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "float16",
            DType::BF16 => "bfloat16",
            DType::F32 => "float32",
            DType::F64 => "float64",
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::U8 => "uint8",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`DType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDTypeError(String);

impl fmt::Display for ParseDTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown dtype {:?}", self.0)
    }
}

impl std::error::Error for ParseDTypeError {}

impl FromStr for DType {
    type Err = ParseDTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "float16" | "f16" => DType::F16,
            "bfloat16" | "bf16" => DType::BF16,
            "float32" | "f32" => DType::F32,
            "float64" | "f64" => DType::F64,
            "int32" | "i32" => DType::I32,
            "int64" | "i64" => DType::I64,
            "uint8" | "u8" => DType::U8,
            other => return Err(ParseDTypeError(other.to_string())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DType; 7] = [
        DType::F16,
        DType::BF16,
        DType::F32,
        DType::F64,
        DType::I32,
        DType::I64,
        DType::U8,
    ];

    #[test]
    fn codes_round_trip() {
        for dt in ALL {
            assert_eq!(DType::from_code(dt.code()), Some(dt));
        }
        assert_eq!(DType::from_code(200), None);
    }

    #[test]
    fn names_round_trip() {
        for dt in ALL {
            assert_eq!(dt.to_string().parse::<DType>().unwrap(), dt);
        }
        assert!("floop".parse::<DType>().is_err());
    }

    #[test]
    fn sizes_are_right() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::U8.size_bytes(), 1);
    }
}
