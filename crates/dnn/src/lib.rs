//! # portus-dnn
//!
//! The DNN substrate: tensor/model descriptions ([`TensorMeta`],
//! [`ModelSpec`]), GPU-resident instances ([`ModelInstance`]), the
//! paper's model zoo ([`zoo`]: Table II plus the GPT family of §V-E),
//! optimizer-state expansion, Megatron-style tensor/pipeline sharding
//! ([`shard_model`]), and calibrated training-iteration profiles
//! ([`IterationProfile`]).
//!
//! # Examples
//!
//! ```
//! use portus_dnn::{shard_model, zoo, ParallelConfig};
//!
//! // The paper's 16-GPU Megatron grid for GPT-22.4B.
//! let spec = zoo::gpt_22b();
//! let shards = shard_model(&spec, ParallelConfig::grid(8, 2));
//! assert_eq!(shards.len(), 16);
//! let total: u64 = shards.iter().map(|s| s.spec.total_bytes()).sum();
//! assert_eq!(total, spec.total_bytes()); // nothing lost, nothing duplicated
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod model;
mod optimizer;
mod parallel;
mod tensor;
mod train;
pub mod zoo;

pub use dtype::{DType, ParseDTypeError};
pub use model::{test_spec, Materialization, ModelInstance, ModelSpec};
pub use optimizer::{CheckpointContent, OptimizerKind};
pub use parallel::{shard_model, ModelShard, ParallelConfig};
pub use tensor::{GpuTensor, TensorMeta};
pub use train::{IterationProfile, DEFAULT_GPU_BUSY_BP};
