//! The paper's model zoo.
//!
//! Table II of the paper fixes the seven representative models (layer
//! counts, parameter counts); §V-E fixes the GPT family (1.5 B – 22.4 B
//! parameters, checkpoint sizes 6 GB – 89.6 GB, fp32). The specs
//! generated here match those numbers exactly in parameter count and
//! layer count; per-layer sizes follow a deterministic skewed
//! distribution so that the average layer lands near the ~2.5 MiB the
//! paper reports, with a realistic mix of small bias-like and large
//! embedding-like tensors.

use portus_sim::SimDuration;

use crate::{DType, ModelSpec, TensorMeta};

/// A zoo entry: the spec plus the published Table II numbers it must
/// match, and the calibrated training-iteration time used by the
/// end-to-end experiments.
#[derive(Debug, Clone)]
pub struct ModelCard {
    /// The generated spec.
    pub spec: ModelSpec,
    /// Published parameter count (for verification).
    pub published_params: u64,
    /// Published checkpoint size in MiB (for verification).
    pub published_mib: u64,
    /// Calibrated wall time of one training iteration on the paper's
    /// hardware (single GPU for the Table II models, 16×A40 for GPT).
    pub iteration: SimDuration,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates `layers` F32 tensors whose element counts sum exactly to
/// `total_params`, with a deterministic skewed size distribution.
fn synthetic_spec(name: &str, layers: usize, total_params: u64) -> ModelSpec {
    assert!(layers > 0 && total_params >= layers as u64);
    // Skewed weights: squaring a uniform variate gives a long-ish tail
    // (a few embedding-sized tensors, many small ones).
    let weights: Vec<f64> = (0..layers)
        .map(|i| {
            let r = (splitmix(i as u64 ^ 0xD44_5EED) % 10_000) as f64 / 10_000.0;
            0.05 + r * r * 4.0
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut remaining = total_params;
    let mut tensors = Vec::with_capacity(layers);
    for (i, w) in weights.iter().enumerate() {
        let numel = if i + 1 == layers {
            remaining
        } else {
            let share = ((total_params as f64) * w / wsum).round() as u64;
            share.clamp(1, remaining.saturating_sub((layers - 1 - i) as u64))
        };
        remaining -= numel;
        // Factor into a 2-D shape when cleanly divisible, else 1-D.
        let shape = if numel % 64 == 0 {
            vec![numel / 64, 64]
        } else {
            vec![numel]
        };
        tensors.push(TensorMeta::new(
            format!("{name}.layer{i}.weight"),
            DType::F32,
            shape,
        ));
    }
    ModelSpec::new(name, tensors)
}

#[cfg(test)]
const MIB: u64 = 1 << 20;

macro_rules! zoo_model {
    ($fn_name:ident, $card_fn:ident, $name:literal, $layers:literal,
     $params:literal, $mib:literal, $iter_ms:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> ModelSpec {
            synthetic_spec($name, $layers, $params)
        }

        #[doc = concat!("The zoo card for ", $name, " (spec + published numbers).")]
        pub fn $card_fn() -> ModelCard {
            ModelCard {
                spec: $fn_name(),
                published_params: $params,
                published_mib: $mib,
                iteration: SimDuration::from_millis($iter_ms),
            }
        }
    };
}

zoo_model!(
    alexnet,
    alexnet_card,
    "alexnet",
    16,
    61_100_000,
    233,
    90,
    "AlexNet: 16 layers, 61.1 M params, 233 MiB (Table II)."
);
zoo_model!(
    convnext_base,
    convnext_base_card,
    "convnext_base",
    344,
    88_600_000,
    338,
    210,
    "ConvNeXt-Base: 344 layers, 88.6 M params, 338 MiB (Table II)."
);
zoo_model!(
    resnet50,
    resnet50_card,
    "resnet50",
    161,
    25_600_000,
    97,
    180,
    "ResNet-50: 161 layers, 25.6 M params, 97 MiB (Table II)."
);
zoo_model!(
    swin_b,
    swin_b_card,
    "swin_b",
    329,
    87_800_000,
    335,
    230,
    "Swin-B: 329 layers, 87.8 M params, 335 MiB (Table II)."
);
zoo_model!(
    vgg19_bn,
    vgg19_bn_card,
    "vgg19_bn",
    70,
    143_700_000,
    548,
    240,
    "VGG19-BN: 70 layers, 143.7 M params, 548 MiB (Table II)."
);
zoo_model!(
    vit_l_32,
    vit_l_32_card,
    "vit_l_32",
    296,
    306_500_000,
    1169,
    69,
    "ViT-L/32: 296 layers, 306.5 M params, 1169 MiB (Table II)."
);
zoo_model!(
    bert_large,
    bert_large_card,
    "bert_large",
    396,
    336_200_000,
    1282,
    350,
    "BERT-Large-Uncased: 396 layers, 336.2 M params, 1282 MiB (Table II)."
);

/// All seven Table II models, in the paper's order.
pub fn table2_cards() -> Vec<ModelCard> {
    vec![
        alexnet_card(),
        convnext_base_card(),
        resnet50_card(),
        swin_b_card(),
        vgg19_bn_card(),
        vit_l_32_card(),
        bert_large_card(),
    ]
}

/// Looks a Table II model up by name.
pub fn by_name(name: &str) -> Option<ModelCard> {
    table2_cards().into_iter().find(|c| c.spec.name == name)
}

// ---------------------------------------------------------------------
// The GPT family (§V-E): Megatron-style transformer layouts.
// ---------------------------------------------------------------------

/// Builds a GPT spec with the given transformer geometry. Tensors follow
/// the Megatron layout: token embedding, then per layer QKV / attention
/// output / two MLP projections plus layer norms and biases.
pub fn gpt_with(name: &str, hidden: u64, layers: u64, vocab: u64) -> ModelSpec {
    let h = hidden;
    let mut tensors = Vec::new();
    tensors.push(TensorMeta::new(
        format!("{name}.embedding.word_embeddings"),
        DType::F32,
        vec![vocab, h],
    ));
    tensors.push(TensorMeta::new(
        format!("{name}.embedding.position_embeddings"),
        DType::F32,
        vec![2048, h],
    ));
    for l in 0..layers {
        let p = format!("{name}.transformer.layer{l}");
        tensors.push(TensorMeta::new(
            format!("{p}.ln1.weight"),
            DType::F32,
            vec![h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.ln1.bias"),
            DType::F32,
            vec![h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.attn.qkv.weight"),
            DType::F32,
            vec![3 * h, h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.attn.qkv.bias"),
            DType::F32,
            vec![3 * h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.attn.out.weight"),
            DType::F32,
            vec![h, h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.attn.out.bias"),
            DType::F32,
            vec![h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.ln2.weight"),
            DType::F32,
            vec![h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.ln2.bias"),
            DType::F32,
            vec![h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.mlp.fc1.weight"),
            DType::F32,
            vec![4 * h, h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.mlp.fc1.bias"),
            DType::F32,
            vec![4 * h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.mlp.fc2.weight"),
            DType::F32,
            vec![h, 4 * h],
        ));
        tensors.push(TensorMeta::new(
            format!("{p}.mlp.fc2.bias"),
            DType::F32,
            vec![h],
        ));
    }
    tensors.push(TensorMeta::new(
        format!("{name}.final_ln.weight"),
        DType::F32,
        vec![h],
    ));
    tensors.push(TensorMeta::new(
        format!("{name}.final_ln.bias"),
        DType::F32,
        vec![h],
    ));
    ModelSpec::new(name, tensors)
}

/// GPT-1.5B (GPT-2 XL geometry): ~6 GB fp32 checkpoint.
pub fn gpt_1_5b() -> ModelSpec {
    gpt_with("gpt-1.5b", 1600, 48, 50_257)
}

/// GPT-4.7B: the family's second point, ~19 GB fp32 checkpoint.
pub fn gpt_4_7b() -> ModelSpec {
    gpt_with("gpt-4.7b", 2880, 46, 50_257)
}

/// GPT-10B: ~40 GB fp32 checkpoint.
pub fn gpt_10b() -> ModelSpec {
    gpt_with("gpt-10b", 4096, 49, 50_257)
}

/// GPT-22.4B: the paper's largest model, 89.6 GB fp32 checkpoint.
pub fn gpt_22b() -> ModelSpec {
    gpt_with("gpt-22.4b", 6144, 49, 50_257)
}

/// Calibrated per-iteration wall time for the GPT family on the paper's
/// 16×A40 Megatron setup (fixed so Fig. 2's overhead shares and
/// Fig. 15's throughput ratio come out).
pub fn gpt_iteration(spec_name: &str) -> SimDuration {
    match spec_name {
        "gpt-1.5b" => SimDuration::from_millis(320),
        "gpt-4.7b" => SimDuration::from_millis(560),
        "gpt-10b" => SimDuration::from_millis(900),
        "gpt-22.4b" => SimDuration::from_millis(1730),
        other => panic!("unknown GPT config {other}"),
    }
}

/// The four GPT scale points of Fig. 14, smallest first.
pub fn gpt_family() -> Vec<ModelSpec> {
    vec![gpt_1_5b(), gpt_4_7b(), gpt_10b(), gpt_22b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_published_numbers() {
        for card in table2_cards() {
            assert_eq!(
                card.spec.param_count(),
                card.published_params,
                "{} param count",
                card.spec.name
            );
            // fp32 bytes must land on the published MiB (rounded).
            let mib = (card.spec.param_count() * 4 + MIB / 2) / MIB;
            assert!(
                mib.abs_diff(card.published_mib) <= 1,
                "{}: generated {mib} MiB vs published {} MiB",
                card.spec.name,
                card.published_mib
            );
        }
    }

    #[test]
    fn table2_layer_counts_match() {
        let expect = [
            ("alexnet", 16),
            ("convnext_base", 344),
            ("resnet50", 161),
            ("swin_b", 329),
            ("vgg19_bn", 70),
            ("vit_l_32", 296),
            ("bert_large", 396),
        ];
        for (name, layers) in expect {
            assert_eq!(by_name(name).unwrap().spec.layer_count(), layers, "{name}");
        }
    }

    #[test]
    fn specs_are_deterministic() {
        assert_eq!(bert_large(), bert_large());
        assert_eq!(resnet50().total_bytes(), resnet50().total_bytes());
    }

    #[test]
    fn average_layer_is_megabyte_scale() {
        // §V-B: "the average size of a model layer is around 2.5 MiB".
        let cards = table2_cards();
        let (sum, n) = cards.iter().fold((0u64, 0usize), |(s, n), c| {
            (s + c.spec.total_bytes(), n + c.spec.layer_count())
        });
        let avg = sum as f64 / n as f64 / MIB as f64;
        assert!((1.0..5.0).contains(&avg), "avg layer {avg:.2} MiB");
    }

    #[test]
    fn gpt_sizes_hit_the_published_range() {
        let gb = |spec: &ModelSpec| spec.total_bytes() as f64 / 1e9;
        assert!((5.5..7.0).contains(&gb(&gpt_1_5b())), "{}", gb(&gpt_1_5b()));
        assert!((38.0..42.0).contains(&gb(&gpt_10b())), "{}", gb(&gpt_10b()));
        // The paper's headline: 89.6 GB for GPT-22.4B.
        let big = gb(&gpt_22b());
        assert!((87.0..92.0).contains(&big), "GPT-22.4B is {big} GB");
        let params = gpt_22b().param_count() as f64 / 1e9;
        assert!((22.0..23.0).contains(&params), "{params}B params");
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(by_name("gpt-j").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown GPT config")]
    fn unknown_gpt_iteration_panics() {
        gpt_iteration("gpt-j");
    }
}
