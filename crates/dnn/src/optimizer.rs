//! Optimizer state expansion.
//!
//! A checkpoint holds "parameters and optimizer states" (§I). The
//! paper's measured sizes correspond to fp32 parameters alone, so the
//! default checkpoint content is [`CheckpointContent::WeightsOnly`]; the
//! Adam/SGD-momentum expansions are provided for the multi-tenant and
//! extension experiments.

use serde::{Deserialize, Serialize};

use crate::{ModelSpec, TensorMeta};

/// Which optimizer a training job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain SGD: no extra state.
    Sgd,
    /// SGD with momentum: one extra tensor per parameter.
    SgdMomentum,
    /// Adam: two extra tensors per parameter (first/second moments).
    Adam,
}

impl OptimizerKind {
    /// Extra state tensors per parameter tensor.
    pub fn state_tensors_per_param(self) -> usize {
        match self {
            OptimizerKind::Sgd => 0,
            OptimizerKind::SgdMomentum => 1,
            OptimizerKind::Adam => 2,
        }
    }

    /// Suffixes of the extra state tensors.
    pub fn state_suffixes(self) -> &'static [&'static str] {
        match self {
            OptimizerKind::Sgd => &[],
            OptimizerKind::SgdMomentum => &["momentum"],
            OptimizerKind::Adam => &["exp_avg", "exp_avg_sq"],
        }
    }
}

/// What a checkpoint contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckpointContent {
    /// fp32 weights only — matches every size the paper reports.
    WeightsOnly,
    /// Weights plus optimizer state for the given optimizer.
    WithOptimizer(OptimizerKind),
}

impl CheckpointContent {
    /// Expands `spec` into the tensor list actually checkpointed.
    pub fn expand(self, spec: &ModelSpec) -> ModelSpec {
        match self {
            CheckpointContent::WeightsOnly => spec.clone(),
            CheckpointContent::WithOptimizer(opt) => {
                let mut tensors =
                    Vec::with_capacity(spec.tensors.len() * (1 + opt.state_tensors_per_param()));
                for t in &spec.tensors {
                    tensors.push(t.clone());
                    for suffix in opt.state_suffixes() {
                        tensors.push(TensorMeta::new(
                            format!("{}.{suffix}", t.name),
                            t.dtype,
                            t.shape.clone(),
                        ));
                    }
                }
                ModelSpec::new(spec.name.clone(), tensors)
            }
        }
    }

    /// Size multiplier over weights-only content.
    pub fn size_multiplier(self) -> u64 {
        match self {
            CheckpointContent::WeightsOnly => 1,
            CheckpointContent::WithOptimizer(opt) => 1 + opt.state_tensors_per_param() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_spec;

    #[test]
    fn weights_only_is_identity() {
        let spec = test_spec("m", 3, 256);
        let out = CheckpointContent::WeightsOnly.expand(&spec);
        assert_eq!(out, spec);
    }

    #[test]
    fn adam_triples_the_payload() {
        let spec = test_spec("m", 3, 256);
        let content = CheckpointContent::WithOptimizer(OptimizerKind::Adam);
        let out = content.expand(&spec);
        assert_eq!(out.layer_count(), 9);
        assert_eq!(out.total_bytes(), spec.total_bytes() * 3);
        assert_eq!(content.size_multiplier(), 3);
        assert!(out.tensors[1].name.ends_with("exp_avg"));
        assert!(out.tensors[2].name.ends_with("exp_avg_sq"));
    }

    #[test]
    fn momentum_doubles_the_payload() {
        let spec = test_spec("m", 2, 128);
        let out = CheckpointContent::WithOptimizer(OptimizerKind::SgdMomentum).expand(&spec);
        assert_eq!(out.total_bytes(), spec.total_bytes() * 2);
    }
}
