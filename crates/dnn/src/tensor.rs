//! Tensor metadata and GPU-resident tensors.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use portus_mem::Buffer;

use crate::DType;

/// Metadata of one tensor: what the paper's MIndex stores per layer
/// ("the name of each layer, data type, tensor shape, size of each
/// tensor", §III-D1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Qualified parameter name, e.g. `bert.embedding.weight`.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Dimension sizes.
    pub shape: Vec<u64>,
}

impl TensorMeta {
    /// Creates metadata for `name` with the given dtype and shape.
    pub fn new(name: impl Into<String>, dtype: DType, shape: Vec<u64>) -> TensorMeta {
        TensorMeta {
            name: name.into(),
            dtype,
            shape,
        }
    }

    /// Number of elements (product of dimensions; empty shape = scalar).
    /// Saturates on overflow so hostile metadata (e.g. a corrupted
    /// checkpoint header) degrades to a size mismatch instead of a
    /// panic.
    pub fn numel(&self) -> u64 {
        self.shape
            .iter()
            .fold(1u64, |acc, &d| acc.saturating_mul(d))
    }

    /// Payload size in bytes (saturating, see [`TensorMeta::numel`]).
    pub fn size_bytes(&self) -> u64 {
        self.numel().saturating_mul(self.dtype.size_bytes())
    }
}

impl fmt::Display for TensorMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}{:?} ({} B)",
            self.name,
            self.dtype,
            self.shape,
            self.size_bytes()
        )
    }
}

/// A tensor resident in (simulated) GPU memory.
#[derive(Debug, Clone)]
pub struct GpuTensor {
    /// The tensor's metadata.
    pub meta: TensorMeta,
    /// Its device buffer. `buffer.len() == meta.size_bytes()`.
    pub buffer: Arc<Buffer>,
}

impl GpuTensor {
    /// Creates a GPU tensor, checking that the buffer matches the
    /// metadata.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length disagrees with the metadata size.
    pub fn new(meta: TensorMeta, buffer: Arc<Buffer>) -> GpuTensor {
        assert_eq!(
            buffer.len(),
            meta.size_bytes(),
            "buffer size must match tensor {}",
            meta.name
        );
        GpuTensor { meta, buffer }
    }

    /// Content checksum (reads through the buffer).
    pub fn checksum(&self) -> u64 {
        self.buffer.checksum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_mem::MemorySegment;
    use portus_sim::MemoryKind;

    #[test]
    fn numel_and_size() {
        let t = TensorMeta::new("bert.embedding", DType::F32, vec![512, 1024]);
        assert_eq!(t.numel(), 512 * 1024);
        assert_eq!(t.size_bytes(), 512 * 1024 * 4); // the paper's own example
        let scalar = TensorMeta::new("step", DType::I64, vec![]);
        assert_eq!(scalar.numel(), 1);
        assert_eq!(scalar.size_bytes(), 8);
    }

    #[test]
    fn display_mentions_everything() {
        let t = TensorMeta::new("w", DType::F16, vec![3]);
        let s = t.to_string();
        assert!(s.contains('w') && s.contains("float16") && s.contains("6 B"));
    }

    #[test]
    #[should_panic(expected = "buffer size must match")]
    fn mismatched_buffer_panics() {
        let meta = TensorMeta::new("w", DType::F32, vec![4]);
        let buf = Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(3));
        GpuTensor::new(meta, buf);
    }
}
