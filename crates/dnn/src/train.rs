//! Training-iteration profiles.
//!
//! Figure 8 of the paper divides one iteration into forward (**F**),
//! backward (**B**), and update (**U**) phases; the key observation is
//! that parameters only change during **U**, so a checkpoint pull that
//! finishes before the next **U** never conflicts with training. The
//! profiles here carry the calibrated phase durations the end-to-end
//! experiments replay.

use portus_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Durations of one training iteration's phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationProfile {
    /// Forward pass.
    pub forward: SimDuration,
    /// Backward pass.
    pub backward: SimDuration,
    /// Parameter update (the only phase that mutates tensors).
    pub update: SimDuration,
    /// Fraction of the iteration the GPU is actually busy (the rest is
    /// data loading / communication gaps); drives the Fig. 16
    /// utilization traces.
    pub gpu_busy_fraction_bp: u32,
}

/// Phase split used when only a total iteration time is known: the
/// backward pass dominates, update is short.
const FORWARD_SHARE: f64 = 0.30;
const BACKWARD_SHARE: f64 = 0.50;

/// Default GPU-busy fraction in basis points (84 %): calibrated so the
/// Portus utilization trace of Fig. 16 averages ~76 % once checkpoint
/// stalls are added.
pub const DEFAULT_GPU_BUSY_BP: u32 = 8_400;

impl IterationProfile {
    /// Builds a profile from a total iteration time using the standard
    /// F/B/U split.
    pub fn from_total(total: SimDuration) -> IterationProfile {
        let forward = total * FORWARD_SHARE;
        let backward = total * BACKWARD_SHARE;
        let update = total - forward - backward;
        IterationProfile {
            forward,
            backward,
            update,
            gpu_busy_fraction_bp: DEFAULT_GPU_BUSY_BP,
        }
    }

    /// Total iteration duration.
    pub fn total(&self) -> SimDuration {
        self.forward + self.backward + self.update
    }

    /// GPU-busy time within one iteration.
    pub fn gpu_busy(&self) -> SimDuration {
        self.total() * (self.gpu_busy_fraction_bp as f64 / 10_000.0)
    }

    /// Time from the start of the iteration to the start of the update
    /// phase — the window in which an asynchronous checkpoint pull can
    /// proceed without conflicting with parameter writes.
    pub fn pre_update_window(&self) -> SimDuration {
        self.forward + self.backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conserves_total() {
        let p = IterationProfile::from_total(SimDuration::from_millis(1730));
        assert_eq!(p.total(), SimDuration::from_millis(1730));
        assert!(p.backward > p.forward);
        assert!(p.update < p.forward);
    }

    #[test]
    fn busy_time_is_a_fraction() {
        let p = IterationProfile::from_total(SimDuration::from_secs(1));
        let busy = p.gpu_busy().as_secs_f64();
        assert!((0.83..0.85).contains(&busy), "{busy}");
    }

    #[test]
    fn pre_update_window_is_f_plus_b() {
        let p = IterationProfile::from_total(SimDuration::from_millis(100));
        assert_eq!(p.pre_update_window(), p.forward + p.backward);
        assert!(p.pre_update_window() < p.total());
    }
}
