//! Memory regions: the unit of RDMA registration.
//!
//! A region wraps either a device-tagged [`Buffer`] (host DRAM or GPU
//! HBM — the latter is what NVIDIA PeerMem enables on real hardware) or a
//! window of a [`PmemDevice`]. The paper's client "registers the GPU
//! address space for each tensor as an RDMA memory region"; the daemon
//! registers each `TensorData` region of PMem the same way.

use std::sync::Arc;

use portus_pmem::PmemDevice;
use portus_sim::MemoryKind;

use portus_mem::Buffer;

use crate::{NodeId, RdmaError, RdmaResult};

/// Access rights granted to remote peers on a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// Remote peers may issue one-sided READs from this region.
    pub remote_read: bool,
    /// Remote peers may issue one-sided WRITEs into this region.
    pub remote_write: bool,
}

impl Access {
    /// Read-only remote access (how Portus registers tensors for
    /// checkpointing: the daemon pulls, nobody writes).
    pub const READ: Access = Access {
        remote_read: true,
        remote_write: false,
    };
    /// Write-only remote access (how tensors are registered for
    /// restore: the daemon pushes).
    pub const WRITE: Access = Access {
        remote_read: false,
        remote_write: true,
    };
    /// Full remote access.
    pub const READ_WRITE: Access = Access {
        remote_read: true,
        remote_write: true,
    };
}

/// What a region's bytes live in.
#[derive(Debug, Clone)]
pub enum RegionTarget {
    /// A host-DRAM or GPU buffer.
    Buffer(Arc<Buffer>),
    /// A window `[base, base+len)` of a persistent-memory namespace.
    Pmem {
        /// The namespace.
        dev: Arc<PmemDevice>,
        /// Window start on the device.
        base: u64,
        /// Window length.
        len: u64,
    },
}

impl RegionTarget {
    /// Window length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            RegionTarget::Buffer(b) => b.len(),
            RegionTarget::Pmem { len, .. } => *len,
        }
    }

    /// `true` for zero-length targets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memory kind, which drives the cost model (GPU reads are
    /// BAR-capped).
    pub fn kind(&self) -> MemoryKind {
        match self {
            RegionTarget::Buffer(b) => b.kind(),
            RegionTarget::Pmem { .. } => MemoryKind::Pmem,
        }
    }

    /// Reads `out.len()` bytes at `offset` within the window.
    ///
    /// # Errors
    ///
    /// Bounds errors from the backing memory.
    pub fn read_at(&self, offset: u64, out: &mut [u8]) -> RdmaResult<()> {
        match self {
            RegionTarget::Buffer(b) => b.read_at(offset, out).map_err(Into::into),
            RegionTarget::Pmem { dev, base, len } => {
                check_window(offset, out.len() as u64, *len)?;
                dev.read(base + offset, out).map_err(Into::into)
            }
        }
    }

    /// Writes `data` at `offset` within the window. PMem writes are
    /// volatile until the owner persists them (RDMA lands in the DDIO
    /// cache; the Portus daemon flushes after the transfer, following
    /// Wei et al.'s guidance).
    ///
    /// # Errors
    ///
    /// Bounds/writability errors from the backing memory.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> RdmaResult<()> {
        match self {
            RegionTarget::Buffer(b) => b.write_at(offset, data).map_err(Into::into),
            RegionTarget::Pmem { dev, base, len } => {
                check_window(offset, data.len() as u64, *len)?;
                dev.write(base + offset, data).map_err(Into::into)
            }
        }
    }

    /// Checksum of the full window (for end-to-end verification).
    pub fn checksum(&self) -> RdmaResult<u64> {
        match self {
            RegionTarget::Buffer(b) => Ok(b.checksum()),
            RegionTarget::Pmem { dev, base, len } => {
                let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                let mut buf = [0u8; 4096];
                let mut pos = 0u64;
                while pos < *len {
                    let chunk = ((*len - pos) as usize).min(buf.len());
                    dev.read(base + pos, &mut buf[..chunk])?;
                    for &b in &buf[..chunk] {
                        hash ^= b as u64;
                        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    pos += chunk as u64;
                }
                Ok(hash)
            }
        }
    }
}

fn check_window(offset: u64, len: u64, window: u64) -> RdmaResult<()> {
    let end = offset.checked_add(len).ok_or(RdmaError::OutOfBounds {
        offset,
        len,
        region_len: window,
    })?;
    if end > window {
        return Err(RdmaError::OutOfBounds {
            offset,
            len,
            region_len: window,
        });
    }
    Ok(())
}

/// A registered memory region with its remote key.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    pub(crate) rkey: u64,
    pub(crate) node: NodeId,
    pub(crate) access: Access,
    pub(crate) target: RegionTarget,
}

impl MemoryRegion {
    /// The remote key peers use to address this region.
    pub fn rkey(&self) -> u64 {
        self.rkey
    }

    /// The node whose NIC registered the region.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Granted remote access.
    pub fn access(&self) -> Access {
        self.access
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.target.len()
    }

    /// `true` for zero-length regions.
    pub fn is_empty(&self) -> bool {
        self.target.is_empty()
    }

    /// The memory kind of the backing bytes.
    pub fn kind(&self) -> MemoryKind {
        self.target.kind()
    }

    /// The backing target (local access).
    pub fn target(&self) -> &RegionTarget {
        &self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_mem::MemorySegment;
    use portus_pmem::PmemMode;
    use portus_sim::SimContext;

    #[test]
    fn pmem_window_is_bounded() {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 16);
        let t = RegionTarget::Pmem {
            dev,
            base: 1024,
            len: 256,
        };
        assert_eq!(t.len(), 256);
        assert_eq!(t.kind(), MemoryKind::Pmem);
        let mut out = [0u8; 16];
        t.read_at(240, &mut out).unwrap();
        assert!(matches!(
            t.read_at(250, &mut out),
            Err(RdmaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn pmem_window_offsets_are_relative() {
        let dev = PmemDevice::new(SimContext::icdcs24(), PmemMode::DevDax, 1 << 16);
        let t = RegionTarget::Pmem {
            dev: dev.clone(),
            base: 4096,
            len: 64,
        };
        t.write_at(0, b"hello").unwrap();
        let mut out = [0u8; 5];
        dev.read(4096, &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn buffer_target_checksum_matches_buffer() {
        let buf = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(1000, 3));
        let t = RegionTarget::Buffer(buf.clone());
        assert_eq!(t.checksum().unwrap(), buf.checksum());
    }
}
