//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is armed on a [`crate::Nic`] and consulted by every
//! one-sided verb that NIC initiates. Faults are decided purely from
//! the verb sequence number and the plan's own seed — never from wall
//! clock or global randomness — so a failing run replays bit-for-bit:
//! tests and benches can exercise every datapath error edge the happy
//! path never hits, and a sweep with the same seed always fails the
//! same verbs.
//!
//! The three shapes match how real fabrics misbehave:
//!
//! * [`FaultSpec::Nth`] — a single transient failure (one WQE flushed
//!   with an error, e.g. a retry-exceeded NAK), the case the daemon's
//!   per-WQE retry must absorb;
//! * [`FaultSpec::Ratio`] — a lossy window where a deterministic
//!   fraction of verbs fail (link flapping, congestion drops);
//! * [`FaultSpec::Window`] / [`FaultSpec::All`] — a hard outage for a
//!   span of verbs, the case that must exhaust retries and roll the
//!   checkpoint slot back instead of stranding it `Active`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which one-sided verbs a [`FaultPlan`] fails. Sequence numbers are
/// 1-based and count the verbs initiated by the armed NIC since the
/// plan was armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail exactly the `n`-th verb (1-based).
    Nth(u64),
    /// Fail each verb with probability `permille`/1000, decided by a
    /// deterministic hash of `seed` and the verb sequence number.
    Ratio {
        /// Failure probability in thousandths (0–1000).
        permille: u16,
        /// Seed mixed into the per-verb hash.
        seed: u64,
    },
    /// Fail every verb whose sequence number lies in `from..to`.
    Window {
        /// First failing sequence number (inclusive, 1-based).
        from: u64,
        /// First passing sequence number after the window (exclusive).
        to: u64,
    },
    /// Fail every verb.
    All,
}

/// splitmix64 — the standard 64-bit finalizer; plenty for deciding
/// per-verb coin flips deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An armed fault plan: a [`FaultSpec`] plus the verb sequence counter
/// it is evaluated against.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    seq: AtomicU64,
    injected: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan with its sequence counter at zero.
    pub fn new(spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            spec,
            seq: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The spec this plan was armed with.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Accounts for one verb: returns `Some(seq)` when that verb must
    /// fail, `None` when it passes.
    pub fn note_verb(&self) -> Option<u64> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.spec {
            FaultSpec::Nth(n) => seq == n,
            FaultSpec::Ratio { permille, seed } => {
                splitmix64(seed ^ seq) % 1000 < permille.min(1000) as u64
            }
            FaultSpec::Window { from, to } => seq >= from && seq < to,
            FaultSpec::All => true,
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Some(seq)
        } else {
            None
        }
    }

    /// Verbs seen since the plan was armed.
    pub fn seen(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Faults injected since the plan was armed.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_fails_exactly_once() {
        let p = FaultPlan::new(FaultSpec::Nth(3));
        let outcomes: Vec<bool> = (0..5).map(|_| p.note_verb().is_some()).collect();
        assert_eq!(outcomes, [false, false, true, false, false]);
        assert_eq!(p.injected(), 1);
        assert_eq!(p.seen(), 5);
    }

    #[test]
    fn window_fails_its_span() {
        let p = FaultPlan::new(FaultSpec::Window { from: 2, to: 4 });
        let outcomes: Vec<bool> = (0..5).map(|_| p.note_verb().is_some()).collect();
        assert_eq!(outcomes, [false, true, true, false, false]);
    }

    #[test]
    fn all_fails_everything() {
        let p = FaultPlan::new(FaultSpec::All);
        assert!((0..10).all(|_| p.note_verb().is_some()));
    }

    #[test]
    fn ratio_is_deterministic_per_seed() {
        let run = |seed| -> Vec<bool> {
            let p = FaultPlan::new(FaultSpec::Ratio {
                permille: 300,
                seed,
            });
            (0..100).map(|_| p.note_verb().is_some()).collect()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds should diverge");
        let fails = run(7).iter().filter(|&&f| f).count();
        assert!((15..=45).contains(&fails), "~30% of 100, got {fails}");
    }

    #[test]
    fn ratio_extremes() {
        let never = FaultPlan::new(FaultSpec::Ratio {
            permille: 0,
            seed: 1,
        });
        assert!((0..50).all(|_| never.note_verb().is_none()));
        let always = FaultPlan::new(FaultSpec::Ratio {
            permille: 1000,
            seed: 1,
        });
        assert!((0..50).all(|_| always.note_verb().is_some()));
    }
}
