//! The fabric: nodes, NICs, and region registration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use portus_sim::{Resource, SimContext};

use crate::{Access, FaultPlan, FaultSpec, MemoryRegion, RdmaError, RdmaResult, RegionTarget};

/// Identifies a node (machine) on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

static NEXT_RKEY: AtomicU64 = AtomicU64::new(0x1000);

/// One RNIC. Registration hands out process-unique remote keys; the NIC
/// is also the FIFO bandwidth resource all its transfers serialize on
/// (one 100 Gb/s port per node, as in the paper's testbed).
///
/// A NIC added with [`Fabric::add_nic_with_engines`] exposes several
/// independent DMA engines: transfers on different engines proceed in
/// parallel (the striped multi-QP datapath maps each queue pair to one
/// engine), while transfers sharing an engine still serialize FIFO.
/// [`Fabric::add_nic`] keeps the single-engine model.
#[derive(Debug)]
pub struct Nic {
    ctx: SimContext,
    node: NodeId,
    engines: Vec<Resource>,
    regions: RwLock<HashMap<u64, Arc<MemoryRegion>>>,
    faults: RwLock<Option<Arc<FaultPlan>>>,
}

impl Nic {
    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The simulation context shared by the fabric.
    pub fn ctx(&self) -> &SimContext {
        &self.ctx
    }

    /// The NIC's FIFO link resource (the first DMA engine).
    pub fn resource(&self) -> &Resource {
        &self.engines[0]
    }

    /// The DMA engine serving `lane`. Lanes beyond the engine count
    /// wrap around, so any lane number maps to a valid engine and a
    /// single-engine NIC serializes every lane on its one port.
    pub fn engine(&self, lane: usize) -> &Resource {
        &self.engines[lane % self.engines.len()]
    }

    /// Number of independent DMA engines this NIC models.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Registers `target` as a memory region with the given remote
    /// `access`, charging registration (pinning) time. Returns the
    /// region; its [`MemoryRegion::rkey`] addresses it remotely.
    pub fn register(&self, target: RegionTarget, access: Access) -> Arc<MemoryRegion> {
        let rkey = NEXT_RKEY.fetch_add(1, Ordering::Relaxed);
        let d = self.ctx.model.mr_register(target.len());
        self.ctx.charge(d);
        let mr = Arc::new(MemoryRegion {
            rkey,
            node: self.node,
            access,
            target,
        });
        self.regions.write().insert(rkey, Arc::clone(&mr));
        mr
    }

    /// Deregisters a region by remote key. Returns whether it existed.
    pub fn deregister(&self, rkey: u64) -> bool {
        self.regions.write().remove(&rkey).is_some()
    }

    /// Looks up a region by remote key.
    ///
    /// # Errors
    ///
    /// [`RdmaError::InvalidRkey`] if no such region is registered.
    pub fn lookup(&self, rkey: u64) -> RdmaResult<Arc<MemoryRegion>> {
        self.regions
            .read()
            .get(&rkey)
            .cloned()
            .ok_or(RdmaError::InvalidRkey(rkey))
    }

    /// Number of live registrations (diagnostic).
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Arms a fault plan: every one-sided verb this NIC initiates from
    /// now on is evaluated against `spec` and may complete with
    /// [`RdmaError::Injected`]. Replaces any previously armed plan
    /// (the verb sequence counter restarts at zero).
    pub fn arm_faults(&self, spec: FaultSpec) -> Arc<FaultPlan> {
        let plan = Arc::new(FaultPlan::new(spec));
        *self.faults.write() = Some(Arc::clone(&plan));
        plan
    }

    /// Disarms fault injection. Returns the retired plan, if any (its
    /// counters stay readable for assertions).
    pub fn clear_faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.write().take()
    }

    /// The currently armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.read().clone()
    }
}

/// The switch connecting all NICs (the paper's Mellanox MSB7800).
#[derive(Debug, Clone)]
pub struct Fabric {
    ctx: SimContext,
    nics: Arc<RwLock<HashMap<NodeId, Arc<Nic>>>>,
}

impl Fabric {
    /// Creates an empty fabric sharing `ctx`.
    pub fn new(ctx: SimContext) -> Fabric {
        Fabric {
            ctx,
            nics: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// The shared simulation context.
    pub fn ctx(&self) -> &SimContext {
        &self.ctx
    }

    /// Adds a single-engine NIC for `node` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the node already has a NIC.
    pub fn add_nic(&self, node: NodeId) -> Arc<Nic> {
        self.add_nic_with_engines(node, 1)
    }

    /// Adds a NIC for `node` with `engines` independent DMA engines
    /// (clamped to at least one). Engine 0 keeps the classic
    /// `rnic-{node}` name so single-engine behaviour and diagnostics
    /// are unchanged; extra engines are `rnic-{node}-e{i}`.
    ///
    /// # Panics
    ///
    /// Panics if the node already has a NIC.
    pub fn add_nic_with_engines(&self, node: NodeId, engines: usize) -> Arc<Nic> {
        let engines = (0..engines.max(1))
            .map(|i| {
                if i == 0 {
                    Resource::new(&format!("rnic-{node}"))
                } else {
                    Resource::new(&format!("rnic-{node}-e{i}"))
                }
            })
            .collect();
        let nic = Arc::new(Nic {
            ctx: self.ctx.clone(),
            node,
            engines,
            regions: RwLock::new(HashMap::new()),
            faults: RwLock::new(None),
        });
        let prev = self.nics.write().insert(node, Arc::clone(&nic));
        assert!(prev.is_none(), "node {node} already has a NIC");
        nic
    }

    /// Looks up the NIC of `node`.
    ///
    /// # Errors
    ///
    /// [`RdmaError::UnknownNode`] if the node has no NIC.
    pub fn nic(&self, node: NodeId) -> RdmaResult<Arc<Nic>> {
        self.nics
            .read()
            .get(&node)
            .cloned()
            .ok_or(RdmaError::UnknownNode(node.0))
    }

    /// Arms a fault plan on `node`'s NIC (see [`Nic::arm_faults`]).
    ///
    /// # Errors
    ///
    /// [`RdmaError::UnknownNode`] if the node has no NIC.
    pub fn arm_faults(&self, node: NodeId, spec: FaultSpec) -> RdmaResult<Arc<FaultPlan>> {
        Ok(self.nic(node)?.arm_faults(spec))
    }

    /// Disarms fault injection on `node`'s NIC.
    ///
    /// # Errors
    ///
    /// [`RdmaError::UnknownNode`] if the node has no NIC.
    pub fn clear_faults(&self, node: NodeId) -> RdmaResult<Option<Arc<FaultPlan>>> {
        Ok(self.nic(node)?.clear_faults())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portus_mem::{Buffer, MemorySegment};
    use portus_sim::MemoryKind;

    #[test]
    fn register_lookup_deregister() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let nic = fabric.add_nic(NodeId(0));
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(64));
        let mr = nic.register(RegionTarget::Buffer(buf), Access::READ);
        assert_eq!(nic.lookup(mr.rkey()).unwrap().rkey(), mr.rkey());
        assert!(nic.deregister(mr.rkey()));
        assert!(matches!(
            nic.lookup(mr.rkey()),
            Err(RdmaError::InvalidRkey(_))
        ));
    }

    #[test]
    fn rkeys_are_unique_across_nics() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let a = fabric.add_nic(NodeId(0));
        let b = fabric.add_nic(NodeId(1));
        let buf = || Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(1));
        let m1 = a.register(RegionTarget::Buffer(buf()), Access::READ);
        let m2 = b.register(RegionTarget::Buffer(buf()), Access::READ);
        assert_ne!(m1.rkey(), m2.rkey());
    }

    #[test]
    fn registration_charges_time() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let nic = fabric.add_nic(NodeId(0));
        let before = fabric.ctx().clock.now();
        let buf = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(1 << 20, 0));
        nic.register(RegionTarget::Buffer(buf), Access::READ);
        assert!(fabric.ctx().clock.now() > before);
    }

    #[test]
    fn engines_are_independent_resources() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let nic = fabric.add_nic_with_engines(NodeId(0), 4);
        assert_eq!(nic.engine_count(), 4);
        assert_eq!(nic.engine(0).name(), "rnic-node0");
        assert_eq!(nic.engine(2).name(), "rnic-node0-e2");
        // Lanes wrap around the engine pool.
        assert_eq!(nic.engine(6).name(), nic.engine(2).name());
        // engine(0) is the classic single resource.
        assert_eq!(nic.resource().name(), nic.engine(0).name());
        let single = fabric.add_nic(NodeId(1));
        assert_eq!(single.engine_count(), 1);
        assert_eq!(single.engine(3).name(), "rnic-node1");
    }

    #[test]
    fn zero_engine_request_clamps_to_one() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let nic = fabric.add_nic_with_engines(NodeId(0), 0);
        assert_eq!(nic.engine_count(), 1);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let fabric = Fabric::new(SimContext::icdcs24());
        assert!(matches!(
            fabric.nic(NodeId(9)),
            Err(RdmaError::UnknownNode(9))
        ));
    }

    #[test]
    #[should_panic(expected = "already has a NIC")]
    fn duplicate_nic_panics() {
        let fabric = Fabric::new(SimContext::icdcs24());
        fabric.add_nic(NodeId(0));
        fabric.add_nic(NodeId(0));
    }
}
