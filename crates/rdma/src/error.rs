//! Error types for the simulated RDMA fabric.

use std::error::Error;
use std::fmt;

use portus_mem::MemError;
use portus_pmem::PmemError;

/// Result alias for RDMA operations.
pub type RdmaResult<T> = Result<T, RdmaError>;

/// Errors raised by the simulated fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// No memory region with the given remote key exists on the target
    /// NIC.
    InvalidRkey(u64),
    /// The region exists but does not permit the requested access.
    AccessDenied {
        /// The remote key of the region.
        rkey: u64,
        /// What was attempted.
        op: &'static str,
    },
    /// The access falls outside the registered region.
    OutOfBounds {
        /// Offset within the region.
        offset: u64,
        /// Access length.
        len: u64,
        /// Region length.
        region_len: u64,
    },
    /// A gather/scatter verb was posted with an empty segment list.
    EmptySgList,
    /// The verb was failed by an armed [`crate::FaultPlan`]; carries the
    /// plan's verb sequence number for deterministic replay.
    Injected(u64),
    /// The peer endpoint is gone.
    Disconnected,
    /// No NIC is registered for the node.
    UnknownNode(u32),
    /// An underlying memory error (local or remote side).
    Mem(MemError),
    /// An underlying persistent-memory error.
    Pmem(PmemError),
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::InvalidRkey(rkey) => write!(f, "invalid remote key {rkey:#x}"),
            RdmaError::AccessDenied { rkey, op } => {
                write!(f, "region {rkey:#x} does not permit {op}")
            }
            RdmaError::OutOfBounds { offset, len, region_len } => write!(
                f,
                "access of {len} bytes at region offset {offset} exceeds region of {region_len} bytes"
            ),
            RdmaError::EmptySgList => write!(f, "gather/scatter verb posted with no segments"),
            RdmaError::Injected(seq) => write!(f, "injected fault on verb #{seq}"),
            RdmaError::Disconnected => write!(f, "peer disconnected"),
            RdmaError::UnknownNode(node) => write!(f, "no NIC registered for node {node}"),
            RdmaError::Mem(e) => write!(f, "memory error: {e}"),
            RdmaError::Pmem(e) => write!(f, "persistent memory error: {e}"),
        }
    }
}

impl Error for RdmaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RdmaError::Mem(e) => Some(e),
            RdmaError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for RdmaError {
    fn from(e: MemError) -> Self {
        RdmaError::Mem(e)
    }
}

impl From<PmemError> for RdmaError {
    fn from(e: PmemError) -> Self {
        RdmaError::Pmem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RdmaError::Mem(MemError::NotWritable);
        assert!(e.to_string().contains("read-only"));
        assert!(Error::source(&e).is_some());
        assert!(RdmaError::InvalidRkey(0xAB).to_string().contains("0xab"));
    }
}
