//! # portus-rdma
//!
//! A simulated 100 Gb/s InfiniBand fabric with the pieces the Portus
//! datapath needs: per-node NICs ([`Nic`]) that register memory regions
//! ([`MemoryRegion`]) over GPU/host/PMem bytes, reliable-connected
//! [`QueuePair`]s with one-sided READ/WRITE and two-sided SEND/RECV
//! verbs, and the TCP-over-IPoIB [`ControlChannel`].
//!
//! Data really moves: a one-sided READ copies the remote region's bytes
//! into the local target, byte for byte, while charging the calibrated
//! transfer time on the shared virtual clock and serializing on both
//! NICs' FIFO link resources. Reads whose source is GPU memory are
//! BAR-capped exactly as the paper measures (§V-B).
//!
//! # Examples
//!
//! The core Portus move — a storage node pulling a GPU tensor straight
//! into persistent memory:
//!
//! ```
//! use portus_mem::{Buffer, MemorySegment};
//! use portus_pmem::{PmemDevice, PmemMode};
//! use portus_rdma::{Access, Fabric, NodeId, QueuePair, RegionTarget};
//! use portus_sim::{MemoryKind, SimContext};
//!
//! let ctx = SimContext::icdcs24();
//! let fabric = Fabric::new(ctx.clone());
//! let compute = fabric.add_nic(NodeId(0));
//! let storage = fabric.add_nic(NodeId(1));
//!
//! // A tensor in GPU memory, registered for remote read (PeerMem).
//! let tensor = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(4096, 7));
//! let mr = compute.register(RegionTarget::Buffer(tensor.clone()), Access::READ);
//!
//! // TensorData region on the storage node's PMem.
//! let pmem = PmemDevice::new(ctx, PmemMode::DevDax, 1 << 20);
//! let dst = RegionTarget::Pmem { dev: pmem, base: 0, len: 4096 };
//!
//! let (_client_qp, server_qp) = QueuePair::connect(compute, storage);
//! server_qp.read(mr.rkey(), 0, &dst, 0, 4096)?; // the zero-copy pull
//! assert_eq!(dst.checksum()?, tensor.checksum());
//! # Ok::<(), portus_rdma::RdmaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod cq;
mod error;
mod fabric;
mod fault;
mod mr;
mod qp;

pub use control::ControlChannel;
pub use cq::{CompletionQueue, PostedQueuePair, WorkCompletion, WrId};
pub use error::{RdmaError, RdmaResult};
pub use fabric::{Fabric, Nic, NodeId};
pub use fault::{FaultPlan, FaultSpec};
pub use mr::{Access, MemoryRegion, RegionTarget};
pub use qp::{Completion, QueuePair, SgEntry, MAX_SGE};
