//! Queue pairs and verbs.
//!
//! [`QueuePair::read`] / [`QueuePair::write`] are the one-sided verbs at
//! the heart of the Portus datapath: the initiator names a remote region
//! by rkey and the fabric moves the bytes with **no involvement of the
//! remote CPU** — which is why the simulated remote side charges no
//! compute time and crosses no kernel boundary. [`QueuePair::send`] /
//! [`QueuePair::recv`] are the two-sided channel the BeeGFS baseline's
//! RPC protocol runs over.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use portus_sim::{MemoryKind, SimDuration, SimTime};

use crate::{Nic, RdmaError, RdmaResult, RegionTarget};

/// Maximum scatter/gather segments one work-queue entry may carry —
/// the `max_sge` a ConnectX-class RNIC advertises for its WQE format.
pub const MAX_SGE: usize = 16;

/// One scatter/gather segment of a multi-segment work-queue entry:
/// `len` bytes at `offset` within the remote region `rkey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgEntry {
    /// Remote key of the region this segment touches.
    pub rkey: u64,
    /// Byte offset within that region.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
}

/// The result of a completed verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Bytes transferred.
    pub bytes: u64,
    /// When the transfer started on the fabric (after queueing).
    pub start: SimTime,
    /// When the transfer completed.
    pub end: SimTime,
    /// Queueing + service latency experienced by the initiator.
    pub latency: SimDuration,
}

/// A reliable-connected queue pair between two NICs.
///
/// # Examples
///
/// See the crate-level docs for the full checkpoint-pull example.
#[derive(Debug)]
pub struct QueuePair {
    local: Arc<Nic>,
    remote: Arc<Nic>,
    lane: usize,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl QueuePair {
    /// Connects a pair of QPs between `a` and `b`; returns the endpoint
    /// at `a` and the endpoint at `b`. The connection rides lane 0 —
    /// the classic single-QP datapath.
    pub fn connect(a: Arc<Nic>, b: Arc<Nic>) -> (QueuePair, QueuePair) {
        QueuePair::connect_lane(a, b, 0)
    }

    /// Connects a pair of QPs pinned to DMA-engine `lane` on both NICs
    /// (lanes wrap around each NIC's engine count, see
    /// [`Nic::engine`]). Striped connections open one QP per lane so
    /// their doorbell batches ride independent engines.
    pub fn connect_lane(a: Arc<Nic>, b: Arc<Nic>, lane: usize) -> (QueuePair, QueuePair) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        (
            QueuePair {
                local: Arc::clone(&a),
                remote: Arc::clone(&b),
                lane,
                tx: tx_ab,
                rx: rx_ba,
            },
            QueuePair {
                local: b,
                remote: a,
                lane,
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }

    /// The NIC this endpoint posts from.
    pub fn local_nic(&self) -> &Arc<Nic> {
        &self.local
    }

    /// The NIC at the other end.
    pub fn remote_nic(&self) -> &Arc<Nic> {
        &self.remote
    }

    /// The DMA-engine lane this QP is pinned to (0 for unstriped QPs).
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Consults the initiating NIC's armed fault plan, if any. On an
    /// injected fault the verb transfers nothing but still charges the
    /// per-verb base latency (the DMA engine flushes the WQE with an
    /// error completion, it does not vanish for free).
    fn fault_check(&self) -> RdmaResult<()> {
        if let Some(plan) = self.local.fault_plan() {
            if let Some(seq) = plan.note_verb() {
                let ctx = self.local.ctx();
                ctx.charge(SimDuration::from_nanos(ctx.model.rdma_op_latency_ns));
                return Err(RdmaError::Injected(seq));
            }
        }
        Ok(())
    }

    /// Charges a transfer of `service` on both NICs' engines for this
    /// QP's lane and advances the shared clock to the completion
    /// instant.
    fn charge_transfer(&self, service: SimDuration) -> (SimTime, SimTime) {
        let ctx = self.local.ctx();
        let now = ctx.clock.now();
        let g_local = self.local.engine(self.lane).schedule(now, service);
        let g_remote = self.remote.engine(self.lane).schedule(now, service);
        let start = g_local.start.max(g_remote.start);
        let end = g_local.end.max(g_remote.end);
        ctx.clock.advance_to(end);
        (start, end)
    }

    /// Schedules a transfer of `service` on both NICs' engines for this
    /// QP's lane **without advancing the shared clock** — the striped
    /// datapath posts WQEs on several lanes from one instant and only
    /// advances the clock when it drains the completions, which is what
    /// lets transfers on different engines overlap in virtual time.
    ///
    /// A verb landing on an engine that is already busy (more QPs than
    /// engines, or several in-flight WQEs on one lane) pays the
    /// [`portus_sim::CostModel::nic_engine_contention`] arbitration
    /// penalty on top of the FIFO queueing delay itself.
    fn charge_transfer_deferred(&self, service: SimDuration) -> (SimTime, SimTime) {
        let ctx = self.local.ctx();
        let now = ctx.clock.now();
        let local = self.local.engine(self.lane);
        let remote = self.remote.engine(self.lane);
        let contended = local.busy_until() > now || remote.busy_until() > now;
        let service = if contended {
            service + ctx.model.nic_engine_contention()
        } else {
            service
        };
        let g_local = local.schedule(now, service);
        let g_remote = remote.schedule(now, service);
        let start = g_local.start.max(g_remote.start);
        let end = g_local.end.max(g_remote.end);
        (start, end)
    }

    /// One-sided RDMA READ: pulls `len` bytes from the remote region
    /// `rkey` at `remote_off` into the local `dst` at `dst_off`.
    ///
    /// The effective bandwidth depends on what the remote bytes live in:
    /// reads out of GPU memory are BAR-capped at 5.8 GB/s (paper §V-B).
    ///
    /// # Errors
    ///
    /// [`RdmaError::InvalidRkey`] for unknown keys,
    /// [`RdmaError::AccessDenied`] if the region lacks remote-read
    /// permission, and bounds errors from either side.
    pub fn read(
        &self,
        rkey: u64,
        remote_off: u64,
        dst: &RegionTarget,
        dst_off: u64,
        len: u64,
    ) -> RdmaResult<Completion> {
        self.fault_check()?;
        let mr = self.remote.lookup(rkey)?;
        if !mr.access().remote_read {
            return Err(RdmaError::AccessDenied {
                rkey,
                op: "remote read",
            });
        }
        copy_between_targets(mr.target(), remote_off, dst, dst_off, len)?;

        let ctx = self.local.ctx();
        let submitted = ctx.clock.now();
        let service = ctx.model.rdma_read(len, mr.target().kind());
        let (start, end) = self.charge_transfer(service);
        ctx.stats.record_one_sided(len);
        ctx.stats.record_copy(len);
        Ok(Completion {
            bytes: len,
            start,
            end,
            latency: end.saturating_since(submitted),
        })
    }

    /// One-sided RDMA WRITE: pushes `len` bytes from the local `src` at
    /// `src_off` into the remote region `rkey` at `remote_off`.
    ///
    /// Writes into GPU memory are *not* BAR-capped (Fig. 10d). Writes
    /// into PMem land in the DDIO cache — volatile until the owner
    /// persists them.
    ///
    /// # Errors
    ///
    /// As [`QueuePair::read`], requiring remote-write permission.
    pub fn write(
        &self,
        rkey: u64,
        remote_off: u64,
        src: &RegionTarget,
        src_off: u64,
        len: u64,
    ) -> RdmaResult<Completion> {
        self.fault_check()?;
        let mr = self.remote.lookup(rkey)?;
        if !mr.access().remote_write {
            return Err(RdmaError::AccessDenied {
                rkey,
                op: "remote write",
            });
        }
        copy_between_targets(src, src_off, mr.target(), remote_off, len)?;

        let ctx = self.local.ctx();
        let submitted = ctx.clock.now();
        let service = ctx.model.rdma_write(len, mr.target().kind());
        let (start, end) = self.charge_transfer(service);
        ctx.stats.record_one_sided(len);
        ctx.stats.record_copy(len);
        Ok(Completion {
            bytes: len,
            start,
            end,
            latency: end.saturating_since(submitted),
        })
    }

    /// One-sided gather READ: one work-queue entry that pulls every
    /// segment in `segs` (each naming a remote region) into the local
    /// `dst`, packed back to back starting at `dst_off`.
    ///
    /// This is the coalesced form of [`QueuePair::read`]: the verb is
    /// charged **once** for the summed byte count, so `n` small tensors
    /// that are contiguous in the destination ride one WQE at the large-
    /// message effective bandwidth instead of paying `n` per-verb
    /// latencies and `n` short-message ramps. With
    /// `first_in_batch == false` the verb additionally rides an earlier
    /// doorbell (see [`portus_sim::CostModel::rdma_read_posted`]).
    ///
    /// The source is treated as BAR-capped GPU memory if *any* segment
    /// reads GPU memory — the slowest source gates the DMA engine.
    ///
    /// # Errors
    ///
    /// [`RdmaError::EmptySgList`] for an empty segment list, otherwise
    /// as [`QueuePair::read`]; every segment is validated before any
    /// byte moves, so a failed WQE transfers nothing.
    pub fn read_gather(
        &self,
        segs: &[SgEntry],
        dst: &RegionTarget,
        dst_off: u64,
        first_in_batch: bool,
    ) -> RdmaResult<Completion> {
        self.read_gather_inner(segs, dst, dst_off, first_in_batch, false)
    }

    /// [`QueuePair::read_gather`] for striped posting: the WQE is
    /// scheduled on this QP's lane engines but the shared clock is
    /// **not** advanced — the returned [`Completion`] carries the
    /// `(start, end)` window and the caller advances the clock once
    /// when it drains the whole posting round (see
    /// [`QueuePair::charge_transfer_deferred`]).
    ///
    /// # Errors
    ///
    /// As [`QueuePair::read_gather`].
    pub fn read_gather_deferred(
        &self,
        segs: &[SgEntry],
        dst: &RegionTarget,
        dst_off: u64,
        first_in_batch: bool,
    ) -> RdmaResult<Completion> {
        self.read_gather_inner(segs, dst, dst_off, first_in_batch, true)
    }

    fn read_gather_inner(
        &self,
        segs: &[SgEntry],
        dst: &RegionTarget,
        dst_off: u64,
        first_in_batch: bool,
        deferred: bool,
    ) -> RdmaResult<Completion> {
        if segs.is_empty() {
            return Err(RdmaError::EmptySgList);
        }
        self.fault_check()?;
        let mut mrs = Vec::with_capacity(segs.len());
        for seg in segs {
            let mr = self.remote.lookup(seg.rkey)?;
            if !mr.access().remote_read {
                return Err(RdmaError::AccessDenied {
                    rkey: seg.rkey,
                    op: "remote read",
                });
            }
            mrs.push(mr);
        }
        let mut off = dst_off;
        for (seg, mr) in segs.iter().zip(&mrs) {
            copy_between_targets(mr.target(), seg.offset, dst, off, seg.len)?;
            off += seg.len;
        }
        let total: u64 = segs.iter().map(|s| s.len).sum();
        let src_kind = if mrs.iter().any(|m| m.target().kind() == MemoryKind::GpuHbm) {
            MemoryKind::GpuHbm
        } else {
            mrs[0].target().kind()
        };

        let ctx = self.local.ctx();
        let submitted = ctx.clock.now();
        let service = ctx.model.rdma_read_posted(total, src_kind, first_in_batch);
        let (start, end) = if deferred {
            self.charge_transfer_deferred(service)
        } else {
            self.charge_transfer(service)
        };
        // One *logical* data movement per tensor segment: the structural
        // zero-copy counters see through the WQE packing.
        for seg in segs {
            ctx.stats.record_one_sided(seg.len);
            ctx.stats.record_copy(seg.len);
        }
        if segs.len() > 1 {
            ctx.stats.record_coalesced(total);
        }
        Ok(Completion {
            bytes: total,
            start,
            end,
            latency: end.saturating_since(submitted),
        })
    }

    /// One-sided scatter WRITE: one work-queue entry that pushes bytes
    /// packed back to back in the local `src` (starting at `src_off`)
    /// out to every remote segment in `segs`.
    ///
    /// The coalesced form of [`QueuePair::write`]; charging mirrors
    /// [`QueuePair::read_gather`] (writes are never BAR-capped).
    ///
    /// # Errors
    ///
    /// [`RdmaError::EmptySgList`] for an empty segment list, otherwise
    /// as [`QueuePair::write`]; every segment is validated before any
    /// byte moves.
    pub fn write_scatter(
        &self,
        segs: &[SgEntry],
        src: &RegionTarget,
        src_off: u64,
        first_in_batch: bool,
    ) -> RdmaResult<Completion> {
        self.write_scatter_inner(segs, src, src_off, first_in_batch, false)
    }

    /// [`QueuePair::write_scatter`] for striped posting; deferred
    /// charging as in [`QueuePair::read_gather_deferred`].
    ///
    /// # Errors
    ///
    /// As [`QueuePair::write_scatter`].
    pub fn write_scatter_deferred(
        &self,
        segs: &[SgEntry],
        src: &RegionTarget,
        src_off: u64,
        first_in_batch: bool,
    ) -> RdmaResult<Completion> {
        self.write_scatter_inner(segs, src, src_off, first_in_batch, true)
    }

    fn write_scatter_inner(
        &self,
        segs: &[SgEntry],
        src: &RegionTarget,
        src_off: u64,
        first_in_batch: bool,
        deferred: bool,
    ) -> RdmaResult<Completion> {
        if segs.is_empty() {
            return Err(RdmaError::EmptySgList);
        }
        self.fault_check()?;
        let mut mrs = Vec::with_capacity(segs.len());
        for seg in segs {
            let mr = self.remote.lookup(seg.rkey)?;
            if !mr.access().remote_write {
                return Err(RdmaError::AccessDenied {
                    rkey: seg.rkey,
                    op: "remote write",
                });
            }
            mrs.push(mr);
        }
        let mut off = src_off;
        for (seg, mr) in segs.iter().zip(&mrs) {
            copy_between_targets(src, off, mr.target(), seg.offset, seg.len)?;
            off += seg.len;
        }
        let total: u64 = segs.iter().map(|s| s.len).sum();

        let ctx = self.local.ctx();
        let submitted = ctx.clock.now();
        let service = ctx
            .model
            .rdma_write_posted(total, mrs[0].target().kind(), first_in_batch);
        let (start, end) = if deferred {
            self.charge_transfer_deferred(service)
        } else {
            self.charge_transfer(service)
        };
        for seg in segs {
            ctx.stats.record_one_sided(seg.len);
            ctx.stats.record_copy(seg.len);
        }
        if segs.len() > 1 {
            ctx.stats.record_coalesced(total);
        }
        Ok(Completion {
            bytes: total,
            start,
            end,
            latency: end.saturating_since(submitted),
        })
    }

    /// Two-sided SEND: delivers `payload` to the peer's receive queue
    /// using the RPC-over-RDMA protocol (rendezvous + remote CPU copy —
    /// the slower path the BeeGFS baseline uses).
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn send(&self, payload: Vec<u8>) -> RdmaResult<Completion> {
        let ctx = self.local.ctx();
        let submitted = ctx.clock.now();
        let len = payload.len() as u64;
        let service = ctx.model.rpc_rdma_transfer(len);
        let (start, end) = self.charge_transfer(service);
        ctx.stats.record_two_sided(len);
        ctx.stats.record_copy(len);
        self.tx.send(payload).map_err(|_| RdmaError::Disconnected)?;
        Ok(Completion {
            bytes: len,
            start,
            end,
            latency: end.saturating_since(submitted),
        })
    }

    /// Blocking receive of the next two-sided message.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn recv(&self) -> RdmaResult<Vec<u8>> {
        self.rx.recv().map_err(|_| RdmaError::Disconnected)
    }

    /// Non-blocking receive; `Ok(None)` when no message is waiting.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn try_recv(&self) -> RdmaResult<Option<Vec<u8>>> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(RdmaError::Disconnected),
        }
    }
}

/// Chunked copy between two region targets.
fn copy_between_targets(
    src: &RegionTarget,
    src_off: u64,
    dst: &RegionTarget,
    dst_off: u64,
    len: u64,
) -> RdmaResult<()> {
    let mut buf = [0u8; 64 * 1024];
    let mut done = 0u64;
    while done < len {
        let chunk = ((len - done) as usize).min(buf.len());
        src.read_at(src_off + done, &mut buf[..chunk])?;
        dst.write_at(dst_off + done, &buf[..chunk])?;
        done += chunk as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, Fabric, NodeId};
    use portus_mem::{Buffer, MemorySegment};
    use portus_pmem::{PmemDevice, PmemMode};
    use portus_sim::{MemoryKind, SimContext};

    fn two_nodes() -> (Fabric, Arc<Nic>, Arc<Nic>) {
        let fabric = Fabric::new(SimContext::icdcs24());
        let a = fabric.add_nic(NodeId(0));
        let b = fabric.add_nic(NodeId(1));
        (fabric, a, b)
    }

    #[test]
    fn one_sided_read_pulls_gpu_bytes_into_pmem() {
        let (fabric, compute, storage) = two_nodes();
        // "GPU" tensor on the compute node.
        let tensor = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(1 << 20, 77));
        let mr = compute.register(RegionTarget::Buffer(tensor.clone()), Access::READ);
        // PMem window on the storage node.
        let pm = PmemDevice::new(fabric.ctx().clone(), PmemMode::DevDax, 1 << 21);
        let dst = RegionTarget::Pmem {
            dev: pm.clone(),
            base: 0,
            len: 1 << 20,
        };

        let (_at_compute, at_storage) = QueuePair::connect(compute, storage);
        let c = at_storage.read(mr.rkey(), 0, &dst, 0, 1 << 20).unwrap();
        assert_eq!(c.bytes, 1 << 20);
        assert_eq!(dst.checksum().unwrap(), tensor.checksum());
    }

    #[test]
    fn gpu_reads_are_slower_than_dram_reads() {
        let (fabric, a, b) = two_nodes();
        let len = 64 << 20;
        let gpu = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(len, 1));
        let dram = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(len));
        let mr_gpu = a.register(RegionTarget::Buffer(gpu), Access::READ);
        let mr_dram = a.register(RegionTarget::Buffer(dram), Access::READ);
        let sink = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(len),
        ));
        let (_qa, qb) = QueuePair::connect(a, b);
        let _ = fabric; // keep fabric alive
        let c_gpu = qb.read(mr_gpu.rkey(), 0, &sink, 0, len).unwrap();
        let c_dram = qb.read(mr_dram.rkey(), 0, &sink, 0, len).unwrap();
        let t_gpu = (c_gpu.end - c_gpu.start).as_secs_f64();
        let t_dram = (c_dram.end - c_dram.start).as_secs_f64();
        let ratio = t_gpu / t_dram;
        assert!(
            (ratio - 8.3 / 5.8).abs() < 0.1,
            "BAR cap ratio off: {ratio}"
        );
    }

    #[test]
    fn access_flags_are_enforced() {
        let (_f, a, b) = two_nodes();
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(64));
        let mr = a.register(RegionTarget::Buffer(buf), Access::READ);
        let scratch =
            RegionTarget::Buffer(Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(64)));
        let (_qa, qb) = QueuePair::connect(a, b);
        assert!(qb.read(mr.rkey(), 0, &scratch, 0, 64).is_ok());
        assert!(matches!(
            qb.write(mr.rkey(), 0, &scratch, 0, 64),
            Err(RdmaError::AccessDenied { .. })
        ));
    }

    #[test]
    fn invalid_rkey_is_rejected() {
        let (_f, a, b) = two_nodes();
        let scratch =
            RegionTarget::Buffer(Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(64)));
        let (_qa, qb) = QueuePair::connect(a, b);
        assert!(matches!(
            qb.read(0xBAD, 0, &scratch, 0, 1),
            Err(RdmaError::InvalidRkey(0xBAD))
        ));
    }

    #[test]
    fn concurrent_transfers_serialize_on_the_nic() {
        let (f, a, b) = two_nodes();
        let len = 8 << 20;
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(len));
        let mr = a.register(RegionTarget::Buffer(buf), Access::READ);
        let sink = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(len),
        ));
        let (_qa, qb) = QueuePair::connect(a, b);
        let c1 = qb.read(mr.rkey(), 0, &sink, 0, len).unwrap();
        let c2 = qb.read(mr.rkey(), 0, &sink, 0, len).unwrap();
        assert!(
            c2.start >= c1.end,
            "second transfer must queue behind first"
        );
        assert_eq!(f.ctx().stats.snapshot().rdma_one_sided_ops, 2);
    }

    #[test]
    fn deferred_posts_overlap_across_lanes_without_moving_the_clock() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let a = fabric.add_nic_with_engines(NodeId(0), 2);
        let b = fabric.add_nic_with_engines(NodeId(1), 2);
        let len = 4 << 20;
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(len));
        let mr = a.register(RegionTarget::Buffer(buf), Access::READ);
        let sink = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(len),
        ));
        let (_qa0, q0) = QueuePair::connect_lane(Arc::clone(&a), Arc::clone(&b), 0);
        let (_qa1, q1) = QueuePair::connect_lane(a, b, 1);
        assert_eq!(q1.lane(), 1);
        let before = fabric.ctx().clock.now();
        let seg = [SgEntry {
            rkey: mr.rkey(),
            offset: 0,
            len,
        }];
        let c0 = q0.read_gather_deferred(&seg, &sink, 0, true).unwrap();
        let c1 = q1.read_gather_deferred(&seg, &sink, 0, true).unwrap();
        assert_eq!(
            fabric.ctx().clock.now(),
            before,
            "deferred posts must not advance the shared clock"
        );
        assert_eq!(c0.start, c1.start, "independent engines start together");
        assert_eq!(
            c0.end, c1.end,
            "equal transfers on idle engines overlap fully"
        );
    }

    #[test]
    fn oversubscribed_engines_queue_and_pay_contention() {
        let fabric = Fabric::new(SimContext::icdcs24());
        let a = fabric.add_nic(NodeId(0));
        let b = fabric.add_nic(NodeId(1));
        let len = 1 << 20;
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(len));
        let mr = a.register(RegionTarget::Buffer(buf), Access::READ);
        let sink = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(len),
        ));
        // Two lanes, one engine: lane 1 wraps onto the same port.
        let (_qa0, q0) = QueuePair::connect_lane(Arc::clone(&a), Arc::clone(&b), 0);
        let (_qa1, q1) = QueuePair::connect_lane(a, b, 1);
        let seg = [SgEntry {
            rkey: mr.rkey(),
            offset: 0,
            len,
        }];
        let c0 = q0.read_gather_deferred(&seg, &sink, 0, true).unwrap();
        let c1 = q1.read_gather_deferred(&seg, &sink, 0, true).unwrap();
        assert_eq!(c1.start, c0.end, "second WQE queues behind the first");
        let base = c0.end - c0.start;
        let contended = c1.end - c1.start;
        assert_eq!(
            contended,
            base + fabric.ctx().model.nic_engine_contention(),
            "busy-engine post pays the arbitration penalty"
        );
    }

    #[test]
    fn gather_read_packs_segments_and_coalesces_the_charge() {
        let (fabric, a, b) = two_nodes();
        let seg_len = 64 * 1024u64;
        let t0 = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(seg_len, 10));
        let t1 = Buffer::new(MemoryKind::GpuHbm, MemorySegment::synthetic(seg_len, 11));
        let mr0 = a.register(RegionTarget::Buffer(t0.clone()), Access::READ);
        let mr1 = a.register(RegionTarget::Buffer(t1.clone()), Access::READ);
        let dst = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::zeroed(2 * seg_len),
        ));
        let (_qa, qb) = QueuePair::connect(a, b);

        let before = fabric.ctx().stats.snapshot();
        let segs = [
            SgEntry {
                rkey: mr0.rkey(),
                offset: 0,
                len: seg_len,
            },
            SgEntry {
                rkey: mr1.rkey(),
                offset: 0,
                len: seg_len,
            },
        ];
        let c = qb.read_gather(&segs, &dst, 0, true).unwrap();
        let d = fabric.ctx().stats.snapshot().since(&before);

        assert_eq!(c.bytes, 2 * seg_len);
        assert_eq!(d.rdma_one_sided_ops, 2, "structural view: one per tensor");
        assert_eq!(d.coalesced_verbs, 1, "WQE view: one gather verb");
        assert_eq!(d.coalesced_bytes, 2 * seg_len);

        // Bytes landed back to back.
        let mut got = vec![0u8; seg_len as usize];
        dst.read_at(0, &mut got).unwrap();
        let mut want = vec![0u8; seg_len as usize];
        RegionTarget::Buffer(t0).read_at(0, &mut want).unwrap();
        assert_eq!(got, want);
        dst.read_at(seg_len, &mut got).unwrap();
        RegionTarget::Buffer(t1).read_at(0, &mut want).unwrap();
        assert_eq!(got, want);

        // One large verb beats two short ones: longer message amortizes
        // the ramp, and only one base latency is paid.
        let single = fabric.ctx().model.rdma_read(seg_len, MemoryKind::GpuHbm);
        let coalesced = c.end - c.start;
        assert!(
            coalesced < single + single,
            "coalesced {:?} must beat 2x single {:?}",
            coalesced,
            single
        );
    }

    #[test]
    fn scatter_write_fans_bytes_back_out() {
        let (_f, a, b) = two_nodes();
        let seg_len = 4096u64;
        let d0 = Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(seg_len));
        let d1 = Buffer::new(MemoryKind::GpuHbm, MemorySegment::zeroed(seg_len));
        let mr0 = a.register(RegionTarget::Buffer(d0.clone()), Access::WRITE);
        let mr1 = a.register(RegionTarget::Buffer(d1.clone()), Access::WRITE);
        let src = RegionTarget::Buffer(Buffer::new(
            MemoryKind::HostDram,
            MemorySegment::synthetic(2 * seg_len, 21),
        ));
        let (_qa, qb) = QueuePair::connect(a, b);
        let segs = [
            SgEntry {
                rkey: mr0.rkey(),
                offset: 0,
                len: seg_len,
            },
            SgEntry {
                rkey: mr1.rkey(),
                offset: 0,
                len: seg_len,
            },
        ];
        let c = qb.write_scatter(&segs, &src, 0, true).unwrap();
        assert_eq!(c.bytes, 2 * seg_len);
        let mut got = vec![0u8; seg_len as usize];
        let mut want = vec![0u8; seg_len as usize];
        RegionTarget::Buffer(d1).read_at(0, &mut got).unwrap();
        src.read_at(seg_len, &mut want).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn gather_read_validates_before_moving_bytes() {
        let (_f, a, b) = two_nodes();
        let buf = Buffer::new(MemoryKind::HostDram, MemorySegment::synthetic(4096, 5));
        let mr = a.register(RegionTarget::Buffer(buf), Access::READ);
        let dst_buf = Buffer::new(MemoryKind::HostDram, MemorySegment::zeroed(8192));
        let dst = RegionTarget::Buffer(dst_buf.clone());
        let (_qa, qb) = QueuePair::connect(a, b);
        let segs = [
            SgEntry {
                rkey: mr.rkey(),
                offset: 0,
                len: 4096,
            },
            SgEntry {
                rkey: 0xBAD,
                offset: 0,
                len: 4096,
            },
        ];
        assert!(matches!(
            qb.read_gather(&segs, &dst, 0, true),
            Err(RdmaError::InvalidRkey(0xBAD))
        ));
        // The whole WQE failed: nothing may have landed.
        let mut got = vec![0u8; 4096];
        dst.read_at(0, &mut got).unwrap();
        assert!(got.iter().all(|&x| x == 0));
        assert!(matches!(
            qb.read_gather(&[], &dst, 0, true),
            Err(RdmaError::EmptySgList)
        ));
    }

    #[test]
    fn two_sided_send_recv_delivers_payload() {
        let (f, a, b) = two_nodes();
        let (qa, qb) = QueuePair::connect(a, b);
        qa.send(b"DO_CHECKPOINT".to_vec()).unwrap();
        assert_eq!(qb.recv().unwrap(), b"DO_CHECKPOINT");
        assert_eq!(qb.try_recv().unwrap(), None);
        assert_eq!(f.ctx().stats.snapshot().rdma_two_sided_ops, 1);
    }

    #[test]
    fn disconnected_peer_errors() {
        let (_f, a, b) = two_nodes();
        let (qa, qb) = QueuePair::connect(a, b);
        drop(qb);
        assert!(matches!(qa.send(vec![1]), Err(RdmaError::Disconnected)));
        assert!(matches!(qa.recv(), Err(RdmaError::Disconnected)));
    }
}
