//! The TCP-over-IPoIB control channel.
//!
//! Portus Client and Portus Daemon exchange small control messages
//! ("here is my model layout", `DO_CHECKPOINT`, "pull complete") over a
//! plain TCP socket riding IPoIB on the same InfiniBand fabric (paper
//! §III-B). Only its latency matters to the protocol; the simulated
//! channel is an in-process duplex queue that charges the calibrated
//! one-way latency per message.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use portus_sim::SimContext;

use crate::{RdmaError, RdmaResult};

/// One endpoint of a duplex control connection carrying `T` messages.
///
/// # Examples
///
/// ```
/// use portus_rdma::ControlChannel;
/// use portus_sim::SimContext;
///
/// let ctx = SimContext::icdcs24();
/// let (client, server) = ControlChannel::<String>::pair(ctx);
/// client.send("DO_CHECKPOINT".to_string())?;
/// assert_eq!(server.recv()?, "DO_CHECKPOINT");
/// # Ok::<(), portus_rdma::RdmaError>(())
/// ```
#[derive(Debug)]
pub struct ControlChannel<T> {
    ctx: SimContext,
    tx: Sender<T>,
    rx: Receiver<T>,
}

impl<T: Send> ControlChannel<T> {
    /// Creates a connected pair of endpoints sharing `ctx`.
    pub fn pair(ctx: SimContext) -> (ControlChannel<T>, ControlChannel<T>) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        (
            ControlChannel {
                ctx: ctx.clone(),
                tx: tx_ab,
                rx: rx_ba,
            },
            ControlChannel {
                ctx,
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }

    /// Sends a message, charging one control-message latency.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn send(&self, msg: T) -> RdmaResult<()> {
        let d = self.ctx.model.control_message(64);
        self.ctx.charge(d);
        self.ctx.stats.record_control_message();
        self.tx.send(msg).map_err(|_| RdmaError::Disconnected)
    }

    /// Blocking receive.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn recv(&self) -> RdmaResult<T> {
        self.rx.recv().map_err(|_| RdmaError::Disconnected)
    }

    /// Receive with a wall-clock timeout (for daemon shutdown loops).
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] on a gone peer; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> RdmaResult<Option<T>> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(RdmaError::Disconnected),
        }
    }

    /// Non-blocking receive; `Ok(None)` when empty.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Disconnected`] if the peer endpoint is gone.
    pub fn try_recv(&self) -> RdmaResult<Option<T>> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(RdmaError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_messaging_works() {
        let ctx = SimContext::icdcs24();
        let (a, b) = ControlChannel::<u32>::pair(ctx.clone());
        a.send(1).unwrap();
        b.send(2).unwrap();
        assert_eq!(b.recv().unwrap(), 1);
        assert_eq!(a.recv().unwrap(), 2);
        assert_eq!(ctx.stats.snapshot().control_messages, 2);
    }

    #[test]
    fn send_charges_latency() {
        let ctx = SimContext::icdcs24();
        let (a, _b) = ControlChannel::<u8>::pair(ctx.clone());
        let before = ctx.clock.now();
        a.send(0).unwrap();
        assert!(
            ctx.clock.now().saturating_since(before).as_micros() >= 15,
            "one-way control latency must be charged"
        );
    }

    #[test]
    fn disconnect_is_detected() {
        let ctx = SimContext::icdcs24();
        let (a, b) = ControlChannel::<u8>::pair(ctx);
        drop(b);
        assert!(matches!(a.send(1), Err(RdmaError::Disconnected)));
        assert!(matches!(a.try_recv(), Err(RdmaError::Disconnected)));
    }

    #[test]
    fn recv_timeout_returns_none_when_quiet() {
        let ctx = SimContext::icdcs24();
        let (a, _b) = ControlChannel::<u8>::pair(ctx);
        let got = a.recv_timeout(std::time::Duration::from_millis(5)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn works_across_threads() {
        let ctx = SimContext::icdcs24();
        let (a, b) = ControlChannel::<u64>::pair(ctx);
        let handle = std::thread::spawn(move || {
            let v = b.recv().unwrap();
            b.send(v * 2).unwrap();
        });
        a.send(21).unwrap();
        assert_eq!(a.recv().unwrap(), 42);
        handle.join().unwrap();
    }
}
